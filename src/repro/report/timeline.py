"""Text Gantt charts of simulated processor activity.

Renders one line per processor from a run's recorded activity segments:
``#`` for computation, ``~`` for busy-waiting, ``.`` for everything else
(memory stalls, scheduling, idle).  Useful for eyeballing where a
synchronization scheme loses time -- e.g. the staircase of a pipeline
fill, or a barrier's idle triangles.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, List, Sequence, Tuple

from ..sim.metrics import RunResult

#: rendering characters per activity kind; later entries win conflicts
_GLYPHS = {"busy": "#", "spin": "~"}


def render_timeline(result: RunResult, width: int = 72,
                    tasks: Sequence[str] = ()) -> str:
    """ASCII timeline of a run, one row per task (processor).

    ``width`` is the number of character cells the makespan is scaled
    into; ``tasks`` restricts/orders the rows (default: every task that
    recorded activity, sorted).
    """
    activity: List[Tuple[str, str, int, int]] = \
        result.extra.get("activity", [])
    if not activity:
        return "(no activity recorded: run with record_trace=True)"
    makespan = max(result.makespan, 1)
    rows: Dict[str, List[str]] = defaultdict(lambda: ["."] * width)

    for task, kind, start, end in activity:
        glyph = _GLYPHS.get(kind)
        if glyph is None:
            continue
        first = min(width - 1, start * width // makespan)
        last = min(width - 1, max(first, (end - 1) * width // makespan))
        row = rows[task]
        for cell in range(first, last + 1):
            # busy-wait never overwrites computation in a shared cell
            if not (glyph == "~" and row[cell] == "#"):
                row[cell] = glyph

    names = list(tasks) if tasks else sorted(rows)
    label_width = max((len(name) for name in names), default=0)
    lines = [f"0{' ' * (label_width + width - len(str(makespan)))}"
             f"{makespan}"]
    for name in names:
        row = "".join(rows.get(name, ["."] * width))
        lines.append(f"{name.ljust(label_width)} {row}")
    lines.append(f"{' ' * label_width} #=compute  ~=busy-wait  "
                 f".=stall/idle")
    return "\n".join(lines)


def utilization_profile(result: RunResult,
                        buckets: int = 10) -> List[float]:
    """Fraction of processor-cells computing, per makespan bucket.

    A pipeline shows a ramp (fill), a plateau, and a drain; a barrier
    workload shows a sawtooth.  Used by tests to characterize shapes
    without eyeballing.
    """
    activity = result.extra.get("activity", [])
    makespan = max(result.makespan, 1)
    n_tasks = max(len(result.processors), 1)
    cells = [0.0] * buckets
    for _task, kind, start, end in activity:
        if kind != "busy":
            continue
        for bucket in range(buckets):
            bucket_start = makespan * bucket / buckets
            bucket_end = makespan * (bucket + 1) / buckets
            overlap = min(end, bucket_end) - max(start, bucket_start)
            if overlap > 0:
                cells[bucket] += overlap
    bucket_capacity = makespan / buckets * n_tasks
    return [round(cell / bucket_capacity, 4) for cell in cells]
