"""Persist run summaries as JSON for regression tracking.

The bench harness prints paper-shaped tables; downstream users tracking
their own changes want machine-readable history.  ``save_results``
writes the headline metrics of a set of runs (never the traces -- those
are huge and ephemeral) together with free-form metadata;
``load_results`` reads them back; ``compare_results`` diffs two result
sets metric by metric.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Mapping, Optional, Union

from ..sim.metrics import RunResult

#: file-format version, bumped on incompatible changes
FORMAT_VERSION = 1


def save_results(path: Union[str, pathlib.Path],
                 runs: Mapping[str, RunResult],
                 metadata: Optional[Dict[str, Any]] = None) -> None:
    """Write the runs' summaries (plus ``metadata``) to ``path``."""
    payload = {
        "format_version": FORMAT_VERSION,
        "metadata": dict(metadata or {}),
        "runs": {label: result.summary() for label, result in runs.items()},
    }
    pathlib.Path(path).write_text(json.dumps(payload, indent=2,
                                             sort_keys=True))


def load_results(path: Union[str, pathlib.Path]) -> Dict[str, Any]:
    """Read a results file; raises on unknown format versions."""
    payload = json.loads(pathlib.Path(path).read_text())
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported results format {version!r} "
                         f"(expected {FORMAT_VERSION})")
    return payload


def compare_results(baseline: Dict[str, Any],
                    current: Dict[str, Any],
                    metric: str = "makespan") -> Dict[str, float]:
    """Per-run ratio ``current/baseline`` of one metric.

    Runs present in only one set are skipped; a ratio above 1.0 means
    the current run got slower/bigger on that metric.
    """
    ratios: Dict[str, float] = {}
    for label, summary in current["runs"].items():
        base = baseline["runs"].get(label)
        if base is None:
            continue
        base_value = base.get(metric)
        value = summary.get(metric)
        if not base_value:
            continue
        ratios[label] = value / base_value
    return ratios
