"""Plain-text tables for the benchmark harness.

The paper reports its comparisons in prose and small figures; the
benches print paper-shaped rows with these helpers so every experiment's
output is self-describing in the pytest log.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                 title: Optional[str] = None) -> str:
    """Render an aligned monospace table."""
    columns = [[str(h)] + [str(row[i]) for row in rows]
               for i, h in enumerate(headers)]
    widths = [max(len(cell) for cell in column) for column in columns]

    def line(cells: Sequence[Any]) -> str:
        return "  ".join(str(cell).ljust(width)
                         for cell, width in zip(cells, widths)).rstrip()

    parts: List[str] = []
    if title:
        parts.append(title)
    parts.append(line(headers))
    parts.append(line(["-" * width for width in widths]))
    parts.extend(line(row) for row in rows)
    return "\n".join(parts)


def summarize_runs(runs: Dict[str, Any],
                   fields: Sequence[str] = ("makespan", "utilization",
                                            "sync_vars", "init_cycles",
                                            "sync_transactions",
                                            "spin_fraction"),
                   title: Optional[str] = None) -> str:
    """Tabulate :class:`~repro.sim.metrics.RunResult` objects by label."""
    headers = ["run"] + list(fields)
    rows = []
    for label, result in runs.items():
        summary = result.summary()
        rows.append([label] + [summary[field] for field in fields])
    return format_table(headers, rows, title=title)


def print_table(headers: Sequence[str], rows: Sequence[Sequence[Any]],
                title: Optional[str] = None) -> None:
    """Print an aligned table (bench convenience)."""
    print("\n" + format_table(headers, rows, title=title))
