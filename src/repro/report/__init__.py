"""Reporting helpers for the benchmark harness."""

from .export import (FORMAT_VERSION, compare_results, load_results,
                     save_results)
from .tables import format_table, print_table, summarize_runs
from .timeline import render_timeline, utilization_profile

__all__ = ["FORMAT_VERSION", "compare_results", "format_table",
           "load_results", "print_table", "render_timeline",
           "save_results", "summarize_runs", "utilization_profile"]
