"""Analytic per-scheme cost estimation.

Estimates, without simulating, the resources each synchronization scheme
would spend on a loop: synchronization variables, storage words,
initialization writes, and synchronization operations per iteration.
These are the quantities the paper uses to compare the schemes in
sections 3 and 6; the estimator lets the compile pipeline
(:mod:`repro.compiler.pipeline`) choose a scheme before any simulation,
and the tests check the estimates against simulated runs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.folding import choose_counters
from ..depend.graph import DependenceGraph
from ..depend.model import Loop
from ..schemes.instance_based import rename
from ..schemes.reference_based import plan_accesses


@dataclass(frozen=True)
class CostEstimate:
    """Predicted static costs of one scheme on one loop."""

    scheme: str
    sync_vars: int
    storage_words: int
    init_writes: int
    #: synchronization operations over the whole loop (waits + updates)
    sync_ops: int
    #: True when busy-waiting is free local spinning (register fabric)
    free_spinning: bool
    #: True when one iteration's delay stalls all later iterations
    serializes_statements: bool

    def ops_per_iteration(self, n_iterations: int) -> float:
        return self.sync_ops / n_iterations if n_iterations else 0.0


def _enforced_arcs(graph: DependenceGraph, mode: str):
    return graph.pruned_sync_arcs(mode=mode)


def estimate_reference_based(loop: Loop,
                             graph: DependenceGraph) -> CostEstimate:
    """A key per touched element; every access waits and increments."""
    plan = plan_accesses(loop)
    elements = {access.addr for accesses in plan.values()
                for access in accesses}
    total_accesses = sum(len(accesses) for accesses in plan.values())
    return CostEstimate(
        scheme="reference-based",
        sync_vars=len(elements),
        storage_words=len(elements),
        init_writes=len(elements),
        sync_ops=2 * total_accesses,   # wait + increment per access
        free_spinning=False,
        serializes_statements=False)


def estimate_instance_based(loop: Loop,
                            graph: DependenceGraph) -> CostEstimate:
    """A full/empty bit (and a storage word) per instance copy."""
    instances, reads_of, writes_of = rename(loop)
    copies = sum(max(1, len(instance.readers)) for instance in instances)
    initial = sum(max(1, len(instance.readers)) for instance in instances
                  if instance.writer is None)
    n_reads = sum(len(bindings) for bindings in reads_of.values())
    n_write_copies = sum(
        len(instances[iid].copies) or max(1, len(instances[iid].readers))
        for ids in writes_of.values() for iid in ids)
    return CostEstimate(
        scheme="instance-based",
        sync_vars=copies,
        storage_words=copies,
        init_writes=initial,
        sync_ops=2 * n_reads + n_write_copies,  # wait+consume, bit sets
        free_spinning=False,
        serializes_statements=False)


def estimate_statement_oriented(loop: Loop,
                                graph: DependenceGraph,
                                arcs=None) -> CostEstimate:
    """One SC per source; Advance (wait+write) and Await per instance.

    An explicit ``arcs`` list (from the redundant-sync eliminator)
    overrides the scheme's own pruning.
    """
    if arcs is None:
        arcs = _enforced_arcs(graph, "monotonic")
    sources = {arc.src for arc in arcs}
    n = loop.n_iterations
    advances = 2 * len(sources) * n           # wait-for-turn + write
    awaits = sum(max(0, n - arc.distance) for arc in arcs)
    return CostEstimate(
        scheme="statement-oriented",
        sync_vars=len(sources),
        storage_words=len(sources),
        init_writes=len(sources),
        sync_ops=advances + awaits,
        free_spinning=True,
        serializes_statements=True)


def estimate_process_oriented(loop: Loop, graph: DependenceGraph,
                              processors: int = 8,
                              n_counters: Optional[int] = None,
                              arcs=None) -> CostEstimate:
    """X counters; per iteration: marks, one transfer, and the waits.

    An explicit ``arcs`` list (from the redundant-sync eliminator)
    overrides the scheme's own pruning.
    """
    if arcs is None:
        arcs = _enforced_arcs(graph, "exact")
    sources = {arc.src for arc in arcs}
    x = n_counters or choose_counters(processors)
    n = loop.n_iterations
    marks = max(0, len(sources) - 1) * n      # non-final sources
    transfers = n if sources else 0
    waits = sum(max(0, n - arc.distance) for arc in arcs)
    return CostEstimate(
        scheme="process-oriented",
        sync_vars=x,
        storage_words=x,
        init_writes=x,
        sync_ops=marks + transfers + waits,
        free_spinning=True,
        serializes_statements=False)


def estimate_all(loop: Loop, graph: Optional[DependenceGraph] = None,
                 processors: int = 8) -> Dict[str, CostEstimate]:
    """Estimates for every scheme, keyed by registry name."""
    graph = graph or DependenceGraph(loop)
    return {
        "reference-based": estimate_reference_based(loop, graph),
        "instance-based": estimate_instance_based(loop, graph),
        "statement-oriented": estimate_statement_oriented(loop, graph),
        "process-oriented": estimate_process_oriented(
            loop, graph, processors=processors),
    }
