"""The concurrentizing-compiler layer: analysis, costing, selection.

Ties the dependence front-end, the doacross-delay model (the paper's
[8]), and the scheme cost models into the pipeline a parallelizing
compiler would run (the paper's section-5 remark that the scheme "can be
incorporated into a concurrentizing compiler").
"""

from .cost_model import (CostEstimate, estimate_all, estimate_instance_based,
                         estimate_process_oriented,
                         estimate_reference_based,
                         estimate_statement_oriented)
from .delay import (DelayReport, doacross_delay, statement_offsets,
                    worth_doacross)
from .pipeline import CompileError, CompileResult, compile_loop
from .program import (LoopRun, ProgramResult, SerialLoopWorkload,
                      run_program)

__all__ = [
    "CompileError", "CompileResult", "CostEstimate", "DelayReport",
    "LoopRun", "ProgramResult", "SerialLoopWorkload",
    "compile_loop", "doacross_delay", "estimate_all", "run_program",
    "estimate_instance_based", "estimate_process_oriented",
    "estimate_reference_based", "estimate_statement_oriented",
    "statement_offsets", "worth_doacross",
]
