"""Multi-loop programs: compile and run a sequence of loop nests.

Scientific programs are sequences of loops over shared arrays; the paper
treats each loop independently but the values obviously flow between
them.  :func:`run_program` chains the per-loop pipeline: each loop is
compiled (classification, delay analysis, scheme selection), simulated
with the memory state the previous loops left behind, validated against
the chained sequential semantics, and its final array contents are
carried forward.

Loops classified *serial* are executed on one processor (an explicit
sequential workload), so a program mixing DOALL, DOACROSS and serial
loops still runs end to end with honest cycle counts.  The
instance-based scheme's renamed storage is copied back to the program
arrays between loops -- the storage-reclamation cost of single
assignment the paper's [16] studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Sequence

from ..depend.model import Loop
from ..schemes.base import execute_statement, precompile_statements
from ..sim.machine import Machine, MachineConfig
from ..sim.memory import SharedMemory
from ..sim.metrics import RunResult
from ..sim.ops import Address
from ..sim.sync_bus import BroadcastSyncFabric, SyncFabric
from ..sim.validate import ValidationError, check_reads_match_sequential
from .pipeline import CompileResult, compile_loop


class SerialLoopWorkload:
    """A loop executed in sequential order by a single process."""

    def __init__(self, loop: Loop,
                 seed_memory: Optional[Dict[Address, Any]] = None) -> None:
        self.loop = loop
        self.seed_memory = dict(seed_memory or {})
        self.iterations = [0]
        precompile_statements(loop)

    def build_fabric(self, memory: SharedMemory) -> SyncFabric:
        return BroadcastSyncFabric()

    def make_process(self, _iteration: int) -> Generator:
        for index in self.loop.iteration_space():
            lpid = self.loop.lpid(index)
            for stmt in self.loop.body:
                if stmt.executes_at(index):
                    yield from execute_statement(self.loop, stmt, index,
                                                 lpid)

    def prologue(self) -> List[Generator]:
        return []

    def initial_memory(self) -> Dict[Address, Any]:
        return dict(self.seed_memory)

    @property
    def sync_vars(self) -> int:
        return 0


@dataclass
class LoopRun:
    """One loop's compilation decision and simulation outcome."""

    loop: Loop
    decision: Optional[CompileResult]   # None for serial loops
    result: RunResult
    scheme: str


@dataclass
class ProgramResult:
    """Outcome of a whole program run."""

    runs: List[LoopRun]
    final_state: Dict[Address, Any]

    @property
    def total_cycles(self) -> int:
        return sum(run.result.makespan for run in self.runs)

    @property
    def schemes_used(self) -> List[str]:
        return [run.scheme for run in self.runs]

    def summary(self) -> List[Dict[str, Any]]:
        """Per-loop headline rows for reporting."""
        return [{"loop": run.loop.name, "scheme": run.scheme,
                 "makespan": run.result.makespan,
                 "sync_vars": run.result.sync_vars}
                for run in self.runs]


def _expected_program_state(loops: Sequence[Loop]) -> Dict[Address, Any]:
    """Sequential reference: run every loop in order, chaining memory."""
    state: Dict[Address, Any] = {}
    for loop in loops:
        final, _reads = loop.execute_sequential(state)
        state = final
    return state


def run_program(loops: Sequence[Loop], processors: int = 8,
                objective: str = "time",
                force_scheme: Optional[str] = None,
                schedule: str = "self",
                validate: bool = True) -> ProgramResult:
    """Compile and simulate ``loops`` in order, carrying memory forward."""
    if not loops:
        raise ValueError("a program needs at least one loop")
    state: Dict[Address, Any] = {}
    runs: List[LoopRun] = []
    for loop in loops:
        decision = compile_loop(loop, processors=processors,
                                objective=objective,
                                force_scheme=force_scheme)
        if decision.instrumented is None:
            workload = SerialLoopWorkload(loop, seed_memory=state)
            machine = Machine(MachineConfig(processors=1,
                                            schedule="block"))
            result = machine.run(workload)
            if validate:
                _final, expected_reads = loop.execute_sequential(state)
                check_reads_match_sequential(result.trace, expected_reads)
            arrays = {ref.array for stmt in loop.body
                      for _kind, ref in stmt.refs()}
            update = {addr: value
                      for addr, value in result.final_memory.items()
                      if addr[0] in arrays}
            scheme_name = "serial"
            runs.append(LoopRun(loop=loop, decision=None, result=result,
                                scheme=scheme_name))
        else:
            instrumented = decision.instrumented
            instrumented.seed_memory = dict(state)
            machine = Machine(MachineConfig(processors=processors,
                                            schedule=schedule))
            result = machine.run(instrumented)
            if validate:
                instrumented.validate(result)
            update = instrumented.extract_final_state(result)
            runs.append(LoopRun(loop=loop, decision=decision,
                                result=result,
                                scheme=decision.chosen_scheme))
        state = dict(state)
        state.update(update)

    if validate:
        expected = _expected_program_state(loops)
        for addr, value in expected.items():
            if state.get(addr) != value:
                raise ValidationError(
                    f"program state mismatch at {addr}: got "
                    f"{state.get(addr)}, sequential chain leaves {value}")
    return ProgramResult(runs=runs, final_state=state)
