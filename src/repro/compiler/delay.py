"""Analytic DOACROSS delay model (Cytron, ICPP 1986 -- the paper's [8]).

"Depending on the amount of time a processor has to wait for another
processor to satisfy the data dependence, it may not be desirable to run
a loop concurrently.  A compiler is required to perform thorough data
dependence analysis on the loop to determine which loop should be a
Doacross loop."

This module is that analysis: it computes the *doacross delay* -- the
minimum stagger ``Delta`` between the starts of consecutive iterations
that satisfies every synchronization arc -- and from it a predicted
parallel execution time, which the tests cross-check against the
simulator.

Model: statements execute sequentially inside an iteration; statement
``s`` starts at offset ``t_start(s)`` and finishes at ``t_end(s)``
(prefix sums of costs).  An arc ``a -> b`` with linear distance ``d``
requires ``i*Delta + t_start(b) >= (i-d)*Delta + t_end(a)``, i.e.::

    Delta >= (t_end(a) - t_start(b)) / d

The loop's delay is the maximum over all enforced arcs (at least 0).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..depend.graph import DependenceGraph, SyncArc
from ..depend.model import Loop


@dataclass(frozen=True)
class DelayReport:
    """Result of the doacross-delay analysis for one loop."""

    #: minimum start-to-start stagger between consecutive iterations
    delay: float
    #: cycles of one full iteration (sum of statement costs)
    iteration_time: int
    #: the arc that determines the delay (None for a DOALL)
    critical_arc: Optional[str]
    #: number of enforced arcs considered
    n_arcs: int

    @property
    def parallelism_bound(self) -> float:
        """Max useful processors: iterations in flight at saturation."""
        if self.delay == 0:
            return math.inf
        return self.iteration_time / self.delay

    def predicted_makespan(self, n_iterations: int,
                           processors: int) -> float:
        """Predicted parallel time on ``processors`` CPUs.

        The loop is limited either by the dependence pipeline
        (``(n-1) * delay + iteration_time``) or by throughput
        (``ceil(n / P) * iteration_time``), whichever is larger.
        """
        pipeline = (n_iterations - 1) * self.delay + self.iteration_time
        throughput = math.ceil(n_iterations / processors) * \
            self.iteration_time
        return max(pipeline, throughput)

    def predicted_speedup(self, n_iterations: int,
                          processors: int) -> float:
        serial = n_iterations * self.iteration_time
        return serial / self.predicted_makespan(n_iterations, processors)


def statement_offsets(loop: Loop) -> Dict[str, Tuple[int, int]]:
    """(start, end) offsets of each statement inside one iteration.

    Uses the statement's cost at the loop's first iteration; guarded and
    data-dependent costs make the analysis approximate, as it is in a
    real compiler.
    """
    first = loop.iteration_space()[0]
    offsets: Dict[str, Tuple[int, int]] = {}
    clock = 0
    for stmt in loop.body:
        cost = stmt.cost_at(first)
        offsets[stmt.sid] = (clock, clock + cost)
        clock += cost
    return offsets


def doacross_delay(loop: Loop,
                   graph: Optional[DependenceGraph] = None,
                   arcs: Optional[Sequence[SyncArc]] = None) -> DelayReport:
    """Compute the loop's doacross delay and the critical arc."""
    graph = graph or DependenceGraph(loop)
    if arcs is None:
        arcs = graph.pruned_sync_arcs()
    offsets = statement_offsets(loop)
    iteration_time = max((end for _start, end in offsets.values()),
                         default=0)

    delay = 0.0
    critical = None
    for arc in arcs:
        _src_start, src_end = offsets[arc.src]
        dst_start, _dst_end = offsets[arc.dst]
        required = (src_end - dst_start) / arc.distance
        if required > delay:
            delay = required
            critical = str(arc)
    return DelayReport(delay=delay, iteration_time=iteration_time,
                       critical_arc=critical, n_arcs=len(arcs))


def worth_doacross(loop: Loop, processors: int,
                   graph: Optional[DependenceGraph] = None,
                   threshold: float = 1.2) -> bool:
    """Should this loop run concurrently at all?

    A DOACROSS is worthwhile when its predicted speedup over serial
    execution exceeds ``threshold``; otherwise the compiler should leave
    the loop serial ("it may not be desirable to run a loop
    concurrently").
    """
    report = doacross_delay(loop, graph)
    return report.predicted_speedup(loop.n_iterations,
                                    processors) >= threshold
