"""The concurrentizing-compiler pipeline.

"First, it can be incorporated into a concurrentizing compiler using
algorithms similar to [Midkiff & Padua]."  (section 5)

:func:`compile_loop` chains the repository's pieces the way such a
compiler would:

1. dependence analysis and classification (DOALL / DOACROSS / serial),
2. doacross-delay analysis -- is concurrent execution worthwhile at all?
3. per-scheme cost estimation,
4. scheme selection under an objective ("time", "storage", "traffic"),
5. instrumentation of the loop with the chosen scheme.

The result carries everything a caller needs to simulate or inspect the
decision.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from ..depend.classify import Classification, DOACROSS, DOALL, SERIAL, classify
from ..depend.graph import DependenceGraph
from ..depend.model import Loop
from ..schemes.base import InstrumentedLoop
from ..schemes.registry import make_scheme, scheme_names
from .cost_model import CostEstimate, estimate_all
from .delay import DelayReport, doacross_delay

#: selection objectives and the estimate field they minimize
_OBJECTIVES = ("time", "storage", "traffic")


class CompileError(ValueError):
    """The loop cannot be compiled as requested."""


@dataclass
class CompileResult:
    """Everything the pipeline decided about one loop."""

    loop: Loop
    graph: DependenceGraph
    classification: Classification
    delay: Optional[DelayReport]
    estimates: Dict[str, CostEstimate]
    chosen_scheme: str
    instrumented: Optional[InstrumentedLoop]
    #: why the scheme was chosen, for the report
    rationale: str

    @property
    def runs_parallel(self) -> bool:
        return self.classification.label != SERIAL

    def explain(self) -> str:
        """Human-readable compilation report."""
        lines = [f"loop {self.loop.name!r}: "
                 f"{self.classification.label} "
                 f"({self.classification.reason})"]
        if self.delay is not None:
            lines.append(
                f"doacross delay {self.delay.delay:.1f} cycles / "
                f"iteration {self.delay.iteration_time}; parallelism "
                f"bound {self.delay.parallelism_bound:.1f} "
                f"(critical arc: {self.delay.critical_arc})")
        for name, estimate in self.estimates.items():
            marker = " <== chosen" if name == self.chosen_scheme else ""
            lines.append(
                f"  {name:20s} vars={estimate.sync_vars:<6d} "
                f"ops={estimate.sync_ops:<8d} "
                f"init={estimate.init_writes:<6d}"
                f"{marker}")
        lines.append(f"rationale: {self.rationale}")
        return "\n".join(lines)


def _score(estimate: CostEstimate, objective: str,
           n_iterations: int) -> tuple:
    """Lower is better.  Ties break toward fewer variables."""
    if objective == "storage":
        return (estimate.storage_words + estimate.init_writes,
                estimate.sync_ops)
    if objective == "traffic":
        return (estimate.sync_ops + estimate.init_writes,
                estimate.storage_words)
    # "time": free spinning dominates, then per-iteration operations,
    # then the serialization hazard, then initialization.
    return (0 if estimate.free_spinning else 1,
            1 if estimate.serializes_statements else 0,
            estimate.ops_per_iteration(n_iterations),
            estimate.init_writes)


def compile_loop(loop: Loop, processors: int = 8,
                 objective: str = "time",
                 candidates: Optional[Sequence[str]] = None,
                 force_scheme: Optional[str] = None,
                 serialize_unprofitable: bool = False,
                 profitability_threshold: float = 1.2) -> CompileResult:
    """Classify, analyze, choose a scheme, and instrument ``loop``.

    With ``serialize_unprofitable`` the pipeline also refuses DOACROSS
    execution whose *predicted* speedup falls below
    ``profitability_threshold`` -- the paper's "it may not be desirable
    to run a loop concurrently" decision, driven by the delay model.
    """
    if objective not in _OBJECTIVES:
        raise CompileError(f"unknown objective {objective!r}; "
                           f"choose from {_OBJECTIVES}")
    graph = DependenceGraph(loop)
    classification = classify(loop, graph)

    if classification.label == SERIAL:
        return CompileResult(
            loop=loop, graph=graph, classification=classification,
            delay=None, estimates={}, chosen_scheme="serial",
            instrumented=None,
            rationale="unknown dependence distance: run serially")

    delay = doacross_delay(loop, graph)
    if (serialize_unprofitable and classification.label == DOACROSS
            and force_scheme is None
            and delay.predicted_speedup(loop.n_iterations, processors)
            < profitability_threshold):
        return CompileResult(
            loop=loop, graph=graph, classification=classification,
            delay=delay, estimates={}, chosen_scheme="serial",
            instrumented=None,
            rationale=(f"predicted speedup "
                       f"{delay.predicted_speedup(loop.n_iterations, processors):.2f}"
                       f" < {profitability_threshold}: concurrent "
                       f"execution not worthwhile"))
    estimates = estimate_all(loop, graph, processors=processors)

    names = list(candidates) if candidates else scheme_names()
    unknown = set(names) - set(estimates)
    if unknown:
        raise CompileError(f"unknown candidate scheme(s): {sorted(unknown)}")

    if force_scheme is not None:
        if force_scheme not in estimates:
            raise CompileError(f"unknown scheme {force_scheme!r}")
        chosen = force_scheme
        rationale = "forced by caller"
    elif classification.label == DOALL:
        # No sync arcs: the process-oriented instrumentation degenerates
        # to the bare loop, so it is the free choice.
        chosen = "process-oriented"
        rationale = "DOALL: no synchronization emitted"
    else:
        ranked = sorted(names,
                        key=lambda name: _score(estimates[name], objective,
                                                loop.n_iterations))
        chosen = ranked[0]
        rationale = (f"minimizes {objective} among {names}: "
                     f"score {_score(estimates[chosen], objective, loop.n_iterations)}")

    scheme = make_scheme(chosen) if chosen != "process-oriented" else \
        make_scheme(chosen, processors=processors)
    instrumented = scheme.instrument(loop, graph)
    return CompileResult(
        loop=loop, graph=graph, classification=classification,
        delay=delay, estimates=estimates, chosen_scheme=chosen,
        instrumented=instrumented, rationale=rationale)
