"""Butterfly barriers: Brooks' flag version and the paper's PC version.

A butterfly barrier (Fig. 5.4) synchronizes P = 2^k processors in log2 P
pairwise stages: at stage ``i`` processor ``pid`` meets partner
``pid xor 2^(i-1)``.  No process leaves the last stage before every
process has passed the first, there is no shared hot word, and no atomic
operation is needed.

* :class:`BrooksButterflyBarrier` is the flag-handshake formulation of
  [Brooks 86]: one flag per (stage, processor) in shared memory; each
  stage costs a set-own / wait-partner / clear-partner handshake
  (4 operations) and the barrier occupies ``P * log2 P`` variables.
* :class:`PCButterflyBarrier` is the paper's Example 4: one process
  counter per processor on the broadcast fabric; stage ``i`` is
  ``set_PC(i); while (PC[pid xor 2^(i-1)].step < i);`` -- 2 operations
  per stage and only ``P`` variables, with busy-waiting on the free
  local register images.  Processes are pinned to processors, so no
  folding (and no ownership transfer) is needed: steps simply keep
  growing across episodes.
"""

from __future__ import annotations

from typing import Dict, Generator, List, Tuple

from ..core.process_counter import pc_at_least
from ..sim.memory import SharedMemory
from ..sim.ops import SyncWrite, WaitUntil
from ..sim.sync_bus import BroadcastSyncFabric, MemorySyncFabric, SyncFabric
from .base import Barrier


def stages_for(n_processors: int) -> int:
    """log2 P, validating the power-of-two requirement of Fig. 5.4."""
    stages = n_processors.bit_length() - 1
    if 1 << stages != n_processors:
        raise ValueError(
            f"butterfly barrier needs a power-of-two processor count, "
            f"got {n_processors} (the paper notes a minor modification "
            f"[11] handles other P; not implemented here)")
    return stages


def _equals(expected: int):
    def predicate(value: int) -> bool:
        return value == expected
    return predicate


class BrooksButterflyBarrier(Barrier):
    """Flag-handshake butterfly over shared memory (Brooks 1986)."""

    def __init__(self, n_processors: int, poll_interval: int = 4) -> None:
        super().__init__(n_processors)
        self.stages = stages_for(n_processors)
        self.poll_interval = poll_interval
        self._flags: Dict[Tuple[int, int], int] = {}

    def build_fabric(self, memory: SharedMemory) -> SyncFabric:
        fabric = MemorySyncFabric(memory, poll_interval=self.poll_interval,
                                  space="__bfly__")
        for stage in range(self.stages):
            for pid in range(self.n_processors):
                self._flags[(stage, pid)] = fabric.alloc(1, init=0)[0]
        return fabric

    @property
    def sync_vars(self) -> int:
        return self.stages * self.n_processors

    def arrive(self, pid: int) -> Generator:
        self.next_episode(pid)
        for stage in range(self.stages):
            partner = pid ^ (1 << stage)
            mine = self._flags[(stage, pid)]
            theirs = self._flags[(stage, partner)]
            # Wait for the partner to have consumed my previous-episode
            # flag, announce arrival, wait for the partner, consume.
            yield WaitUntil(mine, _equals(0),
                            reason=f"bfly s{stage} reuse (p{pid})")
            yield SyncWrite(mine, 1)
            yield WaitUntil(theirs, _equals(1),
                            reason=f"bfly s{stage} partner (p{pid})")
            yield SyncWrite(theirs, 0)


class PCButterflyBarrier(Barrier):
    """The paper's butterfly: process counters on the broadcast bus.

    ``b_barrier()`` of Fig. 5.4(b): each processor owns PC[pid]
    permanently; an episode's stage ``i`` publishes step
    ``(episode-1)*log2 P + i`` and spins (locally, for free) on the
    partner's counter.
    """

    def __init__(self, n_processors: int) -> None:
        super().__init__(n_processors)
        self.stages = stages_for(n_processors)
        self._pc_vars: List[int] = []

    def build_fabric(self, memory: SharedMemory) -> SyncFabric:
        fabric = BroadcastSyncFabric()
        self._pc_vars = [
            fabric.alloc(1, init=(pid, 0))[0]
            for pid in range(self.n_processors)]
        return fabric

    @property
    def sync_vars(self) -> int:
        return self.n_processors

    def arrive(self, pid: int) -> Generator:
        episode = self.next_episode(pid)
        base = (episode - 1) * self.stages
        for stage in range(1, self.stages + 1):
            partner = pid ^ (1 << (stage - 1))
            step = base + stage
            # set_PC(i): steps never need resetting, they just grow.
            yield SyncWrite(self._pc_vars[pid], (pid, step), coverable=True)
            # while (PC[pid xor 2^(i-1)].step < i);
            yield WaitUntil(self._pc_vars[partner],
                            pc_at_least((partner, step)),
                            reason=f"pc-bfly s{stage} partner (p{pid})")
