"""Counter-based barrier: the hot-spot baseline.

Every arriving process fetch&adds one shared counter; the last arrival
resets it and bumps a generation word that the other P-1 processes are
polling.  Both words live in shared memory, so the polling converges on
one memory module -- "memory contentions (i.e., the hot-spot effect) and
the inefficiency caused by waiting for the last processor" that the
paper's section 6 summary holds against barrier synchronization.
"""

from __future__ import annotations

from typing import Generator

from ..sim.memory import SharedMemory
from ..sim.ops import SyncRead, SyncUpdate, SyncWrite, WaitUntil
from ..sim.sync_bus import MemorySyncFabric, SyncFabric
from .base import Barrier


def _increment(value: int) -> int:
    return value + 1


def _at_least(threshold: int):
    def predicate(value: int) -> bool:
        return value >= threshold
    return predicate


class CounterBarrier(Barrier):
    """Central counter + generation word in shared memory (polled).

    ``hardware_fetch_add`` selects how the arrival increment happens:

    * ``False`` (default): the machine has no atomic memory-side
      fetch&add -- the common case for the small bus-based systems the
      comparison targets ("it needs no atomic operation" is Brooks'
      argument *for* the butterfly).  Arrival takes a ticket lock around
      a read-modify-write of the counter: ~4 serialized transactions on
      two hot words.
    * ``True``: a Cedar/Ultracomputer-style combining f&a, one
      transaction.  Used as an ablation.
    """

    def __init__(self, n_processors: int, poll_interval: int = 4,
                 hardware_fetch_add: bool = False) -> None:
        super().__init__(n_processors)
        self.poll_interval = poll_interval
        self.hardware_fetch_add = hardware_fetch_add
        self._count_var = -1
        self._generation_var = -1
        self._ticket_var = -1
        self._serving_var = -1

    def build_fabric(self, memory: SharedMemory) -> SyncFabric:
        fabric = MemorySyncFabric(memory, poll_interval=self.poll_interval,
                                  space="__barrier__")
        self._count_var = fabric.alloc(1, init=0)[0]
        self._generation_var = fabric.alloc(1, init=0)[0]
        if not self.hardware_fetch_add:
            self._ticket_var = fabric.alloc(1, init=0)[0]
            self._serving_var = fabric.alloc(1, init=0)[0]
        return fabric

    @property
    def sync_vars(self) -> int:
        return 2 if self.hardware_fetch_add else 4

    def _locked_increment(self, pid: int) -> Generator:
        """Ticket-locked counter increment; yields ops, returns new count.

        The ticket RMW stands in for the one indivisible test&set a bus
        machine does provide; the counter update itself is an ordinary
        read + write under the lock.
        """
        ticket = yield SyncUpdate(self._ticket_var, _increment)
        yield WaitUntil(self._serving_var, _at_least(ticket - 1),
                        reason=f"barrier lock ticket {ticket} (p{pid})")
        count = yield SyncRead(self._count_var)
        yield SyncWrite(self._count_var, count + 1)
        yield SyncUpdate(self._serving_var, _increment)
        return count + 1

    def arrive(self, pid: int) -> Generator:
        episode = self.next_episode(pid)
        if self.hardware_fetch_add:
            arrived = yield SyncUpdate(self._count_var, _increment)
        else:
            arrived = yield from self._locked_increment(pid)
        if arrived == self.n_processors:
            # Last arrival: reset for reuse, then open the gate.  The
            # reset commits before the generation bump (program order
            # through the memory system), so next-episode increments
            # cannot race it.
            yield SyncWrite(self._count_var, 0)
            yield SyncUpdate(self._generation_var, _increment)
        else:
            yield WaitUntil(self._generation_var, _at_least(episode),
                            reason=f"barrier gen >= {episode} (p{pid})")
