"""Dissemination barriers (Hensgen, Finkel & Manber -- the paper's [11]).

In round ``r`` (of ``ceil(log2 P)``), processor ``i`` signals processor
``(i + 2^(r-1)) mod P`` and waits for the signal from
``(i - 2^(r-1)) mod P``.  After all rounds every processor has
(transitively) heard from every other.  Unlike the butterfly's XOR
pairing, the mod-P shift works for *any* P -- this is the "minor
modification [11]" the paper says makes ``b_barrier()`` work when P is
not a power of two.

Two implementations:

* :class:`DisseminationBarrier` -- HFM's formulation with per-(round,
  processor) flags in shared memory (P * rounds variables, polled).
* :class:`PCDisseminationBarrier` -- the process-counter formulation:
  one counter per processor on the broadcast bus; a round is one
  ``set_PC`` plus one local-image wait, exactly like the paper's
  butterfly but with the shifted partner.  P variables, 2 operations
  per round, any P.
"""

from __future__ import annotations

import math
from typing import Dict, Generator, List, Tuple

from ..core.process_counter import pc_at_least
from ..sim.memory import SharedMemory
from ..sim.ops import SyncWrite, WaitUntil
from ..sim.sync_bus import BroadcastSyncFabric, MemorySyncFabric, SyncFabric
from .base import Barrier


def rounds_for(n_processors: int) -> int:
    """ceil(log2 P): dissemination needs no power-of-two padding."""
    if n_processors < 2:
        raise ValueError("a barrier needs at least two processors")
    return math.ceil(math.log2(n_processors))


def _at_least(threshold: int):
    def predicate(value: int) -> bool:
        return value >= threshold
    return predicate


class DisseminationBarrier(Barrier):
    """HFM dissemination with per-(round, pid) episode flags in memory."""

    def __init__(self, n_processors: int, poll_interval: int = 4) -> None:
        super().__init__(n_processors)
        self.rounds = rounds_for(n_processors)
        self.poll_interval = poll_interval
        self._flags: Dict[Tuple[int, int], int] = {}

    def build_fabric(self, memory: SharedMemory) -> SyncFabric:
        fabric = MemorySyncFabric(memory, poll_interval=self.poll_interval,
                                  space="__dissem__")
        for round_index in range(self.rounds):
            for pid in range(self.n_processors):
                self._flags[(round_index, pid)] = fabric.alloc(1, init=0)[0]
        return fabric

    @property
    def sync_vars(self) -> int:
        return self.rounds * self.n_processors

    def arrive(self, pid: int) -> Generator:
        episode = self.next_episode(pid)
        for round_index in range(self.rounds):
            shift = 1 << round_index
            target = (pid + shift) % self.n_processors
            source = (pid - shift) % self.n_processors
            # signal forward: bump the flag the target watches
            yield SyncWrite(self._flags[(round_index, target)], episode)
            # wait backward: our flag for this round reaches the episode
            yield WaitUntil(self._flags[(round_index, pid)],
                            _at_least(episode),
                            reason=f"dissem r{round_index} (p{pid} "
                                   f"<- p{source})")


class PCDisseminationBarrier(Barrier):
    """Dissemination over process counters: any P, two ops per round.

    The non-power-of-two generalization of the paper's PC butterfly
    (Fig. 5.4): the same ``set_PC`` / local-image wait pair, with the
    XOR partner replaced by a mod-P shift.
    """

    def __init__(self, n_processors: int) -> None:
        super().__init__(n_processors)
        self.rounds = rounds_for(n_processors)
        self._pc_vars: List[int] = []

    def build_fabric(self, memory: SharedMemory) -> SyncFabric:
        fabric = BroadcastSyncFabric()
        self._pc_vars = [fabric.alloc(1, init=(pid, 0))[0]
                         for pid in range(self.n_processors)]
        return fabric

    @property
    def sync_vars(self) -> int:
        return self.n_processors

    def arrive(self, pid: int) -> Generator:
        episode = self.next_episode(pid)
        base = (episode - 1) * self.rounds
        for round_index in range(1, self.rounds + 1):
            shift = 1 << (round_index - 1)
            source = (pid - shift) % self.n_processors
            step = base + round_index
            yield SyncWrite(self._pc_vars[pid], (pid, step),
                            coverable=True)
            yield WaitUntil(self._pc_vars[source],
                            pc_at_least((source, step)),
                            reason=f"pc-dissem r{round_index} "
                                   f"(p{pid} <- p{source})")
