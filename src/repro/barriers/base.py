"""Barrier interface and the phased workload used to compare barriers.

Example 4 of the paper implements a butterfly barrier with process
counters and argues it "performs better than a counter-based barrier even
in a small bus-based system" while needing "fewer synchronization
variables and operations than those needed in [Brooks 86]".  The three
implementations (counter, Brooks flags, process-counter butterfly) share
this interface so one bench can sweep them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Callable, Dict, Generator, List, Tuple

from ..sim.memory import SharedMemory
from ..sim.metrics import RunResult
from ..sim.ops import Address, Annotate, Compute
from ..sim.sync_bus import SyncFabric


class Barrier(ABC):
    """A reusable P-way barrier over a synchronization fabric."""

    def __init__(self, n_processors: int) -> None:
        if n_processors < 2:
            raise ValueError("a barrier needs at least two processors")
        self.n_processors = n_processors
        self._episode: Dict[int, int] = {}

    def next_episode(self, pid: int) -> int:
        """Per-process episode numbering (1-based), bumped per arrival."""
        episode = self._episode.get(pid, 0) + 1
        self._episode[pid] = episode
        return episode

    @abstractmethod
    def build_fabric(self, memory: SharedMemory) -> SyncFabric:
        """Create the fabric this barrier's variables live on."""

    @abstractmethod
    def arrive(self, pid: int) -> Generator:
        """Simulator ops for one barrier episode of process ``pid``."""

    @property
    @abstractmethod
    def sync_vars(self) -> int:
        """Synchronization variables the barrier occupies."""


class PhasedWorkload:
    """P pinned processes alternating computation and a barrier.

    ``work`` maps ``(pid, phase)`` to compute cycles, so benches can
    inject imbalance ("waiting for the last processor to complete in a
    barrier synchronization").  Run it on a machine with
    ``schedule="block"`` and ``processors == n_processors`` so each
    process owns one processor, as in the paper's Examples 4 and 5.
    """

    def __init__(self, barrier: Barrier, n_phases: int,
                 work: Callable[[int, int], int]) -> None:
        self.barrier = barrier
        self.n_phases = n_phases
        self.work = work
        self.iterations = list(range(barrier.n_processors))

    def build_fabric(self, memory: SharedMemory) -> SyncFabric:
        return self.barrier.build_fabric(memory)

    def make_process(self, pid: int) -> Generator:
        for phase in range(self.n_phases):
            yield Compute(self.work(pid, phase))
            yield Annotate("phase_done", {"pid": pid, "phase": phase})
            yield from self.barrier.arrive(pid)
            yield Annotate("barrier_exit", {"pid": pid, "phase": phase})

    def prologue(self) -> List[Generator]:
        return []

    def initial_memory(self) -> Dict[Address, Any]:
        return {}

    @property
    def sync_vars(self) -> int:
        return self.barrier.sync_vars


class BarrierViolation(AssertionError):
    """A process left a barrier before every process had arrived."""


def check_barrier_separation(result: RunResult, n_processors: int,
                             n_phases: int) -> None:
    """No exit from episode ``e`` may precede any arrival at episode ``e``.

    Uses the ``phase_done`` / ``barrier_exit`` markers the phased
    workload plants in the engine's event stream.
    """
    events: List[Tuple[int, str, dict]] = result.extra.get("events", [])
    done: Dict[int, List[int]] = {}
    exits: Dict[int, List[int]] = {}
    for time, kind, payload in events:
        if kind == "phase_done":
            done.setdefault(payload["phase"], []).append(time)
        elif kind == "barrier_exit":
            exits.setdefault(payload["phase"], []).append(time)
    for phase in range(n_phases):
        arrivals = done.get(phase, [])
        departures = exits.get(phase, [])
        if len(arrivals) != n_processors or len(departures) != n_processors:
            raise BarrierViolation(
                f"phase {phase}: {len(arrivals)} arrivals / "
                f"{len(departures)} exits, expected {n_processors} each")
        if min(departures) < max(arrivals):
            raise BarrierViolation(
                f"phase {phase}: a process left the barrier at "
                f"{min(departures)} before the last arrival at "
                f"{max(arrivals)}")
