"""Barrier synchronization: counter baseline and butterfly variants.

Supports Example 4 (butterfly barrier from process counters) and the
hot-spot comparison of section 6.
"""

from .base import (Barrier, BarrierViolation, PhasedWorkload,
                   check_barrier_separation)
from .butterfly import (BrooksButterflyBarrier, PCButterflyBarrier,
                        stages_for)
from .counter import CounterBarrier
from .dissemination import (DisseminationBarrier, PCDisseminationBarrier,
                            rounds_for)
from .tournament import TournamentBarrier

__all__ = [
    "Barrier", "BarrierViolation", "BrooksButterflyBarrier",
    "CounterBarrier", "DisseminationBarrier", "PCButterflyBarrier",
    "PCDisseminationBarrier", "PhasedWorkload", "TournamentBarrier",
    "check_barrier_separation", "rounds_for", "stages_for",
]
