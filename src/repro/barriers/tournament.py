"""Tournament barrier (Hensgen, Finkel & Manber -- the paper's [11]).

Arrival runs up a binary tree: in round ``r`` the processor whose low
bits are ``2^r`` (the *loser*) signals its partner with low bits 0 (the
*winner*) and drops out; the winner advances.  The champion (processor
0) then releases down the same tree in reverse.  All flags are monotone
episode counters, so the usual reuse races cannot occur.

Costs: 2(P-1) flags, each processor writes at most ``O(log P)`` times,
and -- unlike the counter barrier -- no two processors ever write the
same variable, so no atomic operation is needed (the same property the
paper highlights for the butterfly).
"""

from __future__ import annotations

import math
from typing import Dict, Generator, List, Tuple

from ..sim.memory import SharedMemory
from ..sim.ops import SyncWrite, WaitUntil
from ..sim.sync_bus import MemorySyncFabric, SyncFabric
from .base import Barrier


def _at_least(threshold: int):
    def predicate(value: int) -> bool:
        return value >= threshold
    return predicate


class TournamentBarrier(Barrier):
    """HFM tournament barrier over shared-memory episode flags."""

    def __init__(self, n_processors: int, poll_interval: int = 4) -> None:
        super().__init__(n_processors)
        self.rounds = math.ceil(math.log2(n_processors))
        self.poll_interval = poll_interval
        #: arrival[(round, winner pid)] -- set by the loser of the match
        self._arrival: Dict[Tuple[int, int], int] = {}
        #: release[(round, loser pid)] -- set by the winner on the way down
        self._release: Dict[Tuple[int, int], int] = {}

    def build_fabric(self, memory: SharedMemory) -> SyncFabric:
        fabric = MemorySyncFabric(memory, poll_interval=self.poll_interval,
                                  space="__tourn__")
        for round_index in range(self.rounds):
            stride = 1 << round_index
            for winner in range(0, self.n_processors, stride * 2):
                loser = winner + stride
                if loser < self.n_processors:
                    self._arrival[(round_index, winner)] = \
                        fabric.alloc(1, init=0)[0]
                    self._release[(round_index, loser)] = \
                        fabric.alloc(1, init=0)[0]
        return fabric

    @property
    def sync_vars(self) -> int:
        return len(self._arrival) + len(self._release)

    def _matches(self, pid: int) -> Tuple[List[Tuple[int, int]],
                                          List[Tuple[int, int]]]:
        """(rounds won as winner, the round lost) for this processor.

        Returns ``(wins, losses)`` where each entry is
        ``(round_index, partner pid)``; ``losses`` has at most one entry.
        """
        wins: List[Tuple[int, int]] = []
        losses: List[Tuple[int, int]] = []
        for round_index in range(self.rounds):
            stride = 1 << round_index
            if pid % (stride * 2) == 0:
                partner = pid + stride
                if partner < self.n_processors:
                    wins.append((round_index, partner))
            elif pid % (stride * 2) == stride:
                partner = pid - stride
                losses.append((round_index, partner))
                break  # a loser drops out of later rounds
        return wins, losses

    def arrive(self, pid: int) -> Generator:
        episode = self.next_episode(pid)
        wins, losses = self._matches(pid)

        # Going up: collect the subtree, then either signal the winner
        # (and wait for release) or, as champion, start the way down.
        for round_index, _partner in wins:
            yield WaitUntil(self._arrival[(round_index, pid)],
                            _at_least(episode),
                            reason=f"tourn arrive r{round_index} (p{pid})")
        if losses:
            round_index, winner = losses[0]
            yield SyncWrite(self._arrival[(round_index, winner)], episode)
            yield WaitUntil(self._release[(round_index, pid)],
                            _at_least(episode),
                            reason=f"tourn release r{round_index} (p{pid})")
        # Going down: release every loser we beat, deepest round last
        # (the reverse order of the way up).
        for round_index, partner in reversed(wins):
            yield SyncWrite(self._release[(round_index, partner)], episode)
