"""Example 1: a DOACROSS loop enclosing a serial loop (Fig. 5.1).

The four-point relaxation ``A[I,J] = A[I-1,J] + A[I,J-1]`` over an N x N
grid, executed three ways:

* :class:`SerialRelaxation` -- one process, the speedup baseline.
* :class:`WavefrontRelaxation` -- the "well known wavefront method":
  anti-diagonals run in parallel with a *barrier between consecutive
  wavefronts*; processors idle both at the barrier and on short
  wavefronts.
* :class:`PipelinedRelaxation` -- the paper's asynchronous pipelining
  (Fig. 5.1(b)/(d)): the outer loop becomes a DOACROSS, the inner loop
  stays serial inside each process, and process ``i`` waits only for
  process ``i-1`` to pass the same column group.  Same number of
  parallel steps, but "the efficiency and the processor utilization is
  much better".
* :class:`StatementPipelinedRelaxation` -- the same pipeline forced
  through statement counters.  Alliant's Advance/Await cannot index a
  synchronization register with a run-time value, so a machine with S
  counters supports at most S sync points per row: the column-group size
  is forced up to ``ceil((N-1)/S)``, and each counter's updates
  serialize across processes.  "N-1 SC's are needed to get the maximum
  parallelism ... the statement-oriented scheme performs poorly when the
  number of SC's is limited."

Grouping G trades synchronization for delay (Fig. 5.1(c)): every process
syncs ``(N-1)/G`` times instead of ``N-1``, at the cost of up to ``G-1``
columns of extra pipeline fill delay.
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional, Tuple

from ..barriers.base import Barrier
from ..core.improved import ImprovedPrimitives
from ..core.primitives import wait_pc
from ..core.process_counter import ProcessCounterFile
from ..sim.machine import Machine, MachineConfig
from ..sim.memory import SharedMemory
from ..sim.metrics import RunResult
from ..sim.ops import (Address, Annotate, Compute, Fence, MemRead, MemWrite,
                       SyncWrite, WaitUntil)
from ..sim.sync_bus import BroadcastSyncFabric, SyncFabric
from ..sim.validate import ValidationError, mix


def point_address(n: int, i: int, j: int) -> Address:
    """Flat address of grid point ``A[i, j]`` on an (N+1)^2 array."""
    return ("A", i * (n + 1) + j)


def point_value(i: int, j: int, north: Any, west: Any) -> int:
    """The value the relaxation stores at (i, j)."""
    return mix("relax", (i, j), [north, west])


def point_ops(n: int, i: int, j: int, cost: int) -> Generator:
    """Simulator ops computing one grid point."""
    yield Annotate("tag", {"tag": ("S", (i, j))})
    north = yield MemRead(point_address(n, i - 1, j))
    west = yield MemRead(point_address(n, i, j - 1))
    yield Compute(cost)
    yield MemWrite(point_address(n, i, j), point_value(i, j, north, west))
    yield Annotate("tag", {"tag": None})


def reference_solution(n: int) -> Dict[Address, int]:
    """Sequential result of the relaxation (boundaries read as None)."""
    values: Dict[Address, int] = {}
    for i in range(2, n + 1):
        for j in range(2, n + 1):
            north = values.get(point_address(n, i - 1, j))
            west = values.get(point_address(n, i, j - 1))
            values[point_address(n, i, j)] = point_value(i, j, north, west)
    return values


def check_solution(n: int, result: RunResult) -> None:
    """Raise unless the run left the sequential solution in memory."""
    expected = reference_solution(n)
    for addr, value in expected.items():
        got = result.final_memory.get(addr)
        if got != value:
            raise ValidationError(
                f"relaxation mismatch at {addr}: got {got}, "
                f"expected {value}")


def serial_cycles(n: int, cost: int) -> int:
    """Pure-compute serial time: one processor, no synchronization."""
    return (n - 1) * (n - 1) * cost


def column_groups(n: int, group: int) -> List[Tuple[int, int]]:
    """Split columns 2..N into [start, end] groups of size ``group``."""
    if group < 1:
        raise ValueError("group size must be >= 1")
    return [(k, min(k + group - 1, n)) for k in range(2, n + 1, group)]


class SerialRelaxation:
    """All points in sequential order on one process."""

    def __init__(self, n: int, cost: int = 10) -> None:
        self.n = n
        self.cost = cost
        self.iterations = [1]

    def build_fabric(self, memory: SharedMemory) -> SyncFabric:
        return BroadcastSyncFabric()

    def make_process(self, pid: int) -> Generator:
        for i in range(2, self.n + 1):
            for j in range(2, self.n + 1):
                yield from point_ops(self.n, i, j, self.cost)

    def prologue(self) -> List[Generator]:
        return []

    def initial_memory(self) -> Dict[Address, Any]:
        return {}

    @property
    def sync_vars(self) -> int:
        return 0


class WavefrontRelaxation:
    """Anti-diagonal wavefronts with a barrier between them (Fig. 5.1(c)).

    P pinned processes; wavefront ``w`` holds points ``i + j = w``; each
    process computes its round-robin share, then everyone meets at the
    barrier ("the execution of a barrier requires that processors be
    busy-waiting at the barrier until all of the processors arrive").
    """

    def __init__(self, n: int, barrier: Barrier, cost: int = 10) -> None:
        self.n = n
        self.barrier = barrier
        self.cost = cost
        self.n_processors = barrier.n_processors
        self.iterations = list(range(self.n_processors))

    def wavefronts(self) -> List[List[Tuple[int, int]]]:
        """Points per wavefront, w = 4 .. 2N."""
        fronts: List[List[Tuple[int, int]]] = []
        for w in range(4, 2 * self.n + 1):
            lo = max(2, w - self.n)
            hi = min(self.n, w - 2)
            fronts.append([(i, w - i) for i in range(lo, hi + 1)])
        return fronts

    def build_fabric(self, memory: SharedMemory) -> SyncFabric:
        return self.barrier.build_fabric(memory)

    def make_process(self, pid: int) -> Generator:
        for front in self.wavefronts():
            mine = front[pid::self.n_processors]
            for i, j in mine:
                yield from point_ops(self.n, i, j, self.cost)
            if mine:
                yield Fence()  # writes visible before releasing the front
            yield from self.barrier.arrive(pid)

    def prologue(self) -> List[Generator]:
        return []

    def initial_memory(self) -> Dict[Address, Any]:
        return {}

    @property
    def sync_vars(self) -> int:
        return self.barrier.sync_vars

    @property
    def parallel_steps(self) -> int:
        return len(self.wavefronts())


class PipelinedRelaxation:
    """Asynchronous pipelining with process counters (Fig. 5.1(b)/(d)).

    Row ``i`` is process ``pid = i - 1``; before computing column group
    ``g`` it waits for process ``pid - 1`` to have passed group ``g``
    (``wait_PC(1, g)``), and marks ``g`` afterwards.  The last group is
    signalled by ``transfer_PC``.
    """

    def __init__(self, n: int, group: int = 1,
                 n_counters: Optional[int] = None, cost: int = 10) -> None:
        self.n = n
        self.group = group
        self.cost = cost
        self.groups = column_groups(n, group)
        self.counters = ProcessCounterFile(
            n_counters=n_counters or 16, first_pid=1)
        self.iterations = list(range(1, n))  # pids 1..N-1 (rows 2..N)

    def build_fabric(self, memory: SharedMemory) -> SyncFabric:
        fabric = BroadcastSyncFabric()
        self.counters.allocate(fabric)
        return fabric

    def make_process(self, pid: int) -> Generator:
        i = pid + 1
        primitives = ImprovedPrimitives(self.counters, pid)
        for g, (start, end) in enumerate(self.groups, start=1):
            yield from wait_pc(self.counters, pid, 1, g)
            for j in range(start, end + 1):
                yield from point_ops(self.n, i, j, self.cost)
            yield Fence()
            if g == len(self.groups):
                primitives.last_step = g - 1
                yield from primitives.transfer_pc()
            else:
                yield from primitives.mark_pc(g)

    def prologue(self) -> List[Generator]:
        return []

    def initial_memory(self) -> Dict[Address, Any]:
        return {}

    @property
    def sync_vars(self) -> int:
        return self.counters.n_counters

    @property
    def sync_points_per_row(self) -> int:
        return len(self.groups)

    @property
    def parallel_steps(self) -> int:
        """Pipeline critical path in column-group steps (= wavefronts
        when G = 1)."""
        return (self.n - 1) + len(self.groups) - 1


class StatementPipelinedRelaxation:
    """The pipeline under Alliant-style statement counters.

    With only S synchronization registers (constant indices!), each row
    can have at most S sync points, so the effective group size is
    ``ceil((N-1)/S)``.  Counter ``g`` is advanced by every process in
    strict iteration order, serializing each column group's completions.
    """

    def __init__(self, n: int, n_counters: int, cost: int = 10) -> None:
        if n_counters < 1:
            raise ValueError("need at least one statement counter")
        self.n = n
        self.cost = cost
        self.n_counters = min(n_counters, n - 1)
        group = -(-(n - 1) // self.n_counters)  # ceil
        self.groups = column_groups(n, group)
        self.group = group
        self.iterations = list(range(1, n))
        self._sc_vars: List[int] = []

    def build_fabric(self, memory: SharedMemory) -> SyncFabric:
        fabric = BroadcastSyncFabric()
        self._sc_vars = [fabric.alloc(1, init=0)[0]
                         for _ in range(len(self.groups))]
        return fabric

    def make_process(self, pid: int) -> Generator:
        i = pid + 1
        for g, (start, end) in enumerate(self.groups):
            var = self._sc_vars[g]
            if pid > 1:
                # Await(1, g): row i-1 has passed this column group
                yield WaitUntil(var, _at_least(pid - 1),
                                reason=f"Await(1,g{g}) p{pid}")
            for j in range(start, end + 1):
                yield from point_ops(self.n, i, j, self.cost)
            yield Fence()
            # Advance(g): strictly ordered across processes
            yield WaitUntil(var, _at_least(pid - 1),
                            reason=f"Advance(g{g}) p{pid}")
            yield SyncWrite(var, pid)

    def prologue(self) -> List[Generator]:
        return []

    def initial_memory(self) -> Dict[Address, Any]:
        return {}

    @property
    def sync_vars(self) -> int:
        return len(self.groups)

    @property
    def sync_points_per_row(self) -> int:
        return len(self.groups)


def _at_least(threshold: int):
    def predicate(value: int) -> bool:
        return value >= threshold
    return predicate


def run_relaxation(workload, processors: int, schedule: str = "self",
                   validate: bool = True,
                   record_trace: bool = True) -> RunResult:
    """Simulate a relaxation workload and (optionally) check the result."""
    machine = Machine(MachineConfig(processors=processors,
                                    schedule=schedule,
                                    record_trace=record_trace))
    result = machine.run(workload)
    if validate:
        check_solution(workload.n, result)
    return result
