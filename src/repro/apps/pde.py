"""Example 5 (second case): PDE discretization with neighbor sync.

"Another example is the discretization method for solving partial
differential equations [19], in which a process only needs to
synchronize with processes computing its neighboring regions."

A 1-D domain is decomposed into P regions, one per processor; every
sweep updates a region from its own previous state and its neighbours'
boundary values.  Two synchronizations:

* :class:`NeighborPDE` -- the paper's point: after sweep ``t`` each
  region marks its counter and waits only for its left and right
  neighbours to have passed sweep ``t`` (2 waits regardless of P);
* :class:`BarrierPDE` -- a global barrier per sweep: every region waits
  for the globally slowest one, every sweep.

Unlike the FFT (partners change every stage), the PDE's neighbour set is
fixed, so imbalance *accumulates locally*: a slow region delays only the
regions within ``k`` hops after ``k`` sweeps, while a barrier spreads
the delay to everyone immediately.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List

from ..barriers.base import Barrier
from ..core.process_counter import pc_at_least
from ..sim.machine import Machine, MachineConfig
from ..sim.memory import SharedMemory
from ..sim.metrics import RunResult
from ..sim.ops import (Address, Annotate, Compute, Fence, MemRead, MemWrite,
                       SyncWrite, WaitUntil)
from ..sim.sync_bus import BroadcastSyncFabric, SyncFabric
from ..sim.validate import ValidationError, mix


def region_address(region: int, sweep: int) -> Address:
    """Where a region publishes its state after ``sweep``."""
    return ("pde", sweep * 4096 + region)


def region_value(region: int, sweep: int, left: Any, own: Any,
                 right: Any) -> int:
    """The three-point update a sweep applies to one region."""
    return mix("pde", (region, sweep), [left, own, right])


def reference_solution(n_regions: int, sweeps: int) -> Dict[Address, int]:
    """Sequential sweep-by-sweep evaluation."""
    values: Dict[Address, int] = {}
    for sweep in range(1, sweeps + 1):
        for region in range(n_regions):
            left = (values.get(region_address(region - 1, sweep - 1))
                    if region > 0 else None)
            own = values.get(region_address(region, sweep - 1))
            right = (values.get(region_address(region + 1, sweep - 1))
                     if region < n_regions - 1 else None)
            values[region_address(region, sweep)] = region_value(
                region, sweep, left, own, right)
    return values


def check_solution(n_regions: int, sweeps: int,
                   result: RunResult) -> None:
    """Raise unless every region/sweep state matches the reference."""
    for addr, value in reference_solution(n_regions, sweeps).items():
        got = result.final_memory.get(addr)
        if got != value:
            raise ValidationError(
                f"PDE mismatch at {addr}: got {got}, expected {value}")


def _sweep_ops(region: int, sweep: int, n_regions: int,
               cost: int) -> Generator:
    left = None
    if region > 0:
        left = yield MemRead(region_address(region - 1, sweep - 1))
    own = yield MemRead(region_address(region, sweep - 1))
    right = None
    if region < n_regions - 1:
        right = yield MemRead(region_address(region + 1, sweep - 1))
    yield Compute(cost)
    yield MemWrite(region_address(region, sweep),
                   region_value(region, sweep, left, own, right))
    yield Fence()


class NeighborPDE:
    """Neighbour-only synchronization with process counters."""

    def __init__(self, n_regions: int, sweeps: int,
                 sweep_cost: Callable[[int, int], int]) -> None:
        if n_regions < 2:
            raise ValueError("need at least two regions")
        self.n_regions = n_regions
        self.n_processors = n_regions
        self.sweeps = sweeps
        self.sweep_cost = sweep_cost
        self.iterations = list(range(n_regions))
        self._pc_vars: List[int] = []

    def build_fabric(self, memory: SharedMemory) -> SyncFabric:
        fabric = BroadcastSyncFabric()
        self._pc_vars = [fabric.alloc(1, init=(region, 0))[0]
                         for region in range(self.n_regions)]
        return fabric

    def make_process(self, region: int) -> Generator:
        neighbours = [r for r in (region - 1, region + 1)
                      if 0 <= r < self.n_regions]
        for sweep in range(1, self.sweeps + 1):
            # Read the neighbours' sweep-(t-1) state: guaranteed present
            # because we waited for them at the end of the last sweep.
            yield from _sweep_ops(region, sweep, self.n_regions,
                                  self.sweep_cost(region, sweep))
            yield Annotate("sweep_done", {"pid": region, "sweep": sweep})
            yield SyncWrite(self._pc_vars[region], (region, sweep),
                            coverable=True)
            if sweep < self.sweeps:
                for neighbour in neighbours:
                    yield WaitUntil(self._pc_vars[neighbour],
                                    pc_at_least((neighbour, sweep)),
                                    reason=f"pde s{sweep} r{region} "
                                           f"<- r{neighbour}")
            yield Annotate("sweep_exit", {"pid": region, "sweep": sweep})

    def prologue(self) -> List[Generator]:
        return []

    def initial_memory(self) -> Dict[Address, Any]:
        return {}

    @property
    def sync_vars(self) -> int:
        return self.n_regions


class BarrierPDE:
    """Global barrier per sweep: the baseline Example 5 argues against."""

    def __init__(self, n_regions: int, sweeps: int,
                 sweep_cost: Callable[[int, int], int],
                 barrier: Barrier) -> None:
        if barrier.n_processors != n_regions:
            raise ValueError("barrier width must equal the region count")
        self.n_regions = n_regions
        self.n_processors = n_regions
        self.sweeps = sweeps
        self.sweep_cost = sweep_cost
        self.barrier = barrier
        self.iterations = list(range(n_regions))

    def build_fabric(self, memory: SharedMemory) -> SyncFabric:
        return self.barrier.build_fabric(memory)

    def make_process(self, region: int) -> Generator:
        for sweep in range(1, self.sweeps + 1):
            yield from _sweep_ops(region, sweep, self.n_regions,
                                  self.sweep_cost(region, sweep))
            yield Annotate("sweep_done", {"pid": region, "sweep": sweep})
            if sweep < self.sweeps:
                yield from self.barrier.arrive(region)
            yield Annotate("sweep_exit", {"pid": region, "sweep": sweep})

    def prologue(self) -> List[Generator]:
        return []

    def initial_memory(self) -> Dict[Address, Any]:
        return {}

    @property
    def sync_vars(self) -> int:
        return self.barrier.sync_vars


def run_pde(workload, validate: bool = True) -> RunResult:
    """Simulate a PDE workload (one pinned processor per region)."""
    machine = Machine(MachineConfig(processors=workload.n_processors,
                                    schedule="block"))
    result = machine.run(workload)
    if validate:
        check_solution(workload.n_regions, workload.sweeps, result)
    return result
