"""Example 5: phases of computation with local communication (FFT).

Data is partitioned into P chunks, one per processor; the butterfly
exchange pattern of an FFT means that in stage ``i`` processor ``pid``
combines its own chunk with the chunk of partner ``pid xor 2^(i-1)``.
"Since communication only takes place between two processors in each
stage, there is no need for a global barrier ... after each processor
completes its computation in BASIC_FFT(), it only waits for another
processor with which it exchanges data."

Two workloads share the computation and differ only in synchronization:

* :class:`PairwiseFFT` -- the paper's ``fft()``: ``mark_PC(i)`` then
  spin on the partner's counter only.
* :class:`BarrierFFT` -- a global barrier after every stage (the [7]
  baseline); with imbalanced stage times everyone waits for the slowest
  processor in every stage.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Generator, List

from ..barriers.base import Barrier
from ..core.process_counter import pc_at_least
from ..sim.machine import Machine, MachineConfig
from ..sim.memory import SharedMemory
from ..sim.metrics import RunResult
from ..sim.ops import (Address, Annotate, Compute, Fence, MemRead, MemWrite,
                       SyncWrite, WaitUntil)
from ..sim.sync_bus import BroadcastSyncFabric, SyncFabric
from ..sim.validate import ValidationError, mix


def stages_for(n_processors: int) -> int:
    """log2 P; the partition must match a power-of-two processor count."""
    stages = n_processors.bit_length() - 1
    if 1 << stages != n_processors:
        raise ValueError(f"FFT partitioning needs power-of-two P, "
                         f"got {n_processors}")
    return stages


def chunk_address(pid: int, stage: int) -> Address:
    """Where processor ``pid`` publishes its chunk after ``stage``."""
    return ("fft", stage * 1024 + pid)


def chunk_value(pid: int, stage: int, own: Any, partner: Any) -> int:
    """BASIC_FFT: combine own and partner chunk summaries."""
    return mix("fft", (pid, stage), [own, partner])


def reference_solution(n_processors: int) -> Dict[Address, int]:
    """Stage-by-stage sequential evaluation of the exchange network."""
    stages = stages_for(n_processors)
    values: Dict[Address, int] = {}
    for stage in range(1, stages + 1):
        for pid in range(n_processors):
            partner = pid ^ (1 << (stage - 1))
            own = values.get(chunk_address(pid, stage - 1))
            other = values.get(chunk_address(partner, stage - 1))
            values[chunk_address(pid, stage)] = chunk_value(
                pid, stage, own, other)
    return values


def check_solution(n_processors: int, result: RunResult) -> None:
    """Raise unless every stage chunk matches the reference."""
    for addr, value in reference_solution(n_processors).items():
        got = result.final_memory.get(addr)
        if got != value:
            raise ValidationError(
                f"FFT mismatch at {addr}: got {got}, expected {value}")


def _stage_ops(pid: int, stage: int, cost: int) -> Generator:
    """Read both stage-(i-1) chunks, compute, publish the stage-i chunk."""
    partner = pid ^ (1 << (stage - 1))
    own = yield MemRead(chunk_address(pid, stage - 1))
    other = yield MemRead(chunk_address(partner, stage - 1))
    yield Compute(cost)
    yield MemWrite(chunk_address(pid, stage),
                   chunk_value(pid, stage, own, other))
    yield Fence()


class PairwiseFFT:
    """The paper's ``fft()``: process counters, partner-only waits.

    After stage ``i``: ``mark_PC(i); while (PC[pid xor 2^(i-1)].step < i)``.
    Pinned processes own their counters permanently (no folding).
    """

    def __init__(self, n_processors: int,
                 stage_cost: Callable[[int, int], int]) -> None:
        self.n_processors = n_processors
        self.stages = stages_for(n_processors)
        self.stage_cost = stage_cost
        self.iterations = list(range(n_processors))
        self._pc_vars: List[int] = []

    def build_fabric(self, memory: SharedMemory) -> SyncFabric:
        fabric = BroadcastSyncFabric()
        self._pc_vars = [fabric.alloc(1, init=(pid, 0))[0]
                         for pid in range(self.n_processors)]
        return fabric

    def make_process(self, pid: int) -> Generator:
        for stage in range(1, self.stages + 1):
            yield from _stage_ops(pid, stage, self.stage_cost(pid, stage))
            yield Annotate("stage_done", {"pid": pid, "stage": stage})
            # mark_PC(i)
            yield SyncWrite(self._pc_vars[pid], (pid, stage),
                            coverable=True)
            if stage < self.stages:
                # Wait only for the processor whose data the *next* stage
                # reads (the paper's ``while (PC[pid xor 2^i].step < i)``);
                # after the final stage nothing is read, so no wait.
                next_partner = pid ^ (1 << stage)
                yield WaitUntil(self._pc_vars[next_partner],
                                pc_at_least((next_partner, stage)),
                                reason=f"fft s{stage} next-partner (p{pid})")
            yield Annotate("stage_exit", {"pid": pid, "stage": stage})

    def prologue(self) -> List[Generator]:
        return []

    def initial_memory(self) -> Dict[Address, Any]:
        return {}

    @property
    def sync_vars(self) -> int:
        return self.n_processors


class BarrierFFT:
    """The global-barrier baseline: every stage ends at a full barrier."""

    def __init__(self, n_processors: int,
                 stage_cost: Callable[[int, int], int],
                 barrier: Barrier) -> None:
        self.n_processors = n_processors
        self.stages = stages_for(n_processors)
        self.stage_cost = stage_cost
        self.barrier = barrier
        self.iterations = list(range(n_processors))

    def build_fabric(self, memory: SharedMemory) -> SyncFabric:
        return self.barrier.build_fabric(memory)

    def make_process(self, pid: int) -> Generator:
        for stage in range(1, self.stages + 1):
            yield from _stage_ops(pid, stage, self.stage_cost(pid, stage))
            yield Annotate("stage_done", {"pid": pid, "stage": stage})
            yield from self.barrier.arrive(pid)
            yield Annotate("stage_exit", {"pid": pid, "stage": stage})

    def prologue(self) -> List[Generator]:
        return []

    def initial_memory(self) -> Dict[Address, Any]:
        return {}

    @property
    def sync_vars(self) -> int:
        return self.barrier.sync_vars


def run_fft(workload, validate: bool = True) -> RunResult:
    """Simulate an FFT workload (pinned, one process per processor)."""
    machine = Machine(MachineConfig(processors=workload.n_processors,
                                    schedule="block"))
    result = machine.run(workload)
    if validate:
        check_solution(workload.n_processors, result)
    return result
