"""The paper's loops, expressed in the :mod:`repro.depend` IR.

Each function builds one of the kernels the paper analyzes:

* :func:`fig21_loop` -- the running example of Fig. 2.1,
* :func:`example2_loop` -- the multiply-nested DOACROSS of Fig. 5.2,
* :func:`example3_loop` -- dependence sources in branches (Fig. 5.3),
* :func:`relaxation_loop` -- the four-point relaxation of Fig. 5.1 in IR
  form (used for analysis; the pipelined execution strategies live in
  :mod:`repro.apps.relaxation`),
* :func:`recurrence_loop` / :func:`doall_loop` -- classification
  extremes.
"""

from __future__ import annotations

from typing import Callable, Optional

from ..depend.model import (ArrayRef, Loop, Statement,
                            index_expr, ref1)


def fig21_loop(n: int = 100, cost: int = 10) -> Loop:
    """The paper's running example (Fig. 2.1(a))::

        DO I = 1, N
          S1: A[I+3] = ...
          S2: ...    = A[I+1]
          S3: ...    = A[I+2]
          S4: A[I]   = ...
          S5: ...    = A[I-1]
        END DO

    Dependences: flow S1->S2 (d2), S1->S3 (d1), S4->S5 (d1); anti
    S2->S4 (d1), S3->S4 (d2); output S1->S4 (d3, covered by S1->S3 +
    S3->S4).
    """
    body = [
        Statement("S1", writes=(ref1("A", 1, 3),), cost=cost),
        Statement("S2", reads=(ref1("A", 1, 1),), cost=cost),
        Statement("S3", reads=(ref1("A", 1, 2),), cost=cost),
        Statement("S4", writes=(ref1("A", 1, 0),), cost=cost),
        Statement("S5", reads=(ref1("A", 1, -1),), cost=cost),
    ]
    return Loop("fig2.1", bounds=((1, n),), body=body)


def fig21_loop_with_delay(n: int = 100, cost: int = 10,
                          slow_iteration: int = 10,
                          slow_cost: int = 500) -> Loop:
    """Fig. 2.1 with one slow iteration of S1.

    Reproduces the horizontal-sharing critique of section 4: "If for
    some reason one process delays its release of the SC (e.g. executing
    a longer branch), all later processes will be affected" under the
    statement-oriented scheme, but not under the process-oriented one.
    """
    def s1_cost(index) -> int:
        return slow_cost if index[0] == slow_iteration else cost

    body = [
        Statement("S1", writes=(ref1("A", 1, 3),), cost=s1_cost),
        Statement("S2", reads=(ref1("A", 1, 1),), cost=cost),
        Statement("S3", reads=(ref1("A", 1, 2),), cost=cost),
        Statement("S4", writes=(ref1("A", 1, 0),), cost=cost),
        Statement("S5", reads=(ref1("A", 1, -1),), cost=cost),
    ]
    return Loop("fig2.1-delay", bounds=((1, n),), body=body)


def example2_loop(n: int = 10, m: int = 5, cost: int = 10) -> Loop:
    """The multiply-nested DOACROSS of Example 2 (Fig. 5.2(a))::

        DO I = 1, N
          DO J = 1, M
            S1: A[I,J] = ...
            S2: B[I,J] = A[I,J-1] ...
            S3: ...    = B[I-1,J-1]
          END DO
        END DO

    Coalesced with lpid = (i-1)*M + j: S1->S2 distance (0,1) -> 1,
    S2->S3 distance (1,1) -> M+1.
    """
    a_ij = ArrayRef("A", (index_expr(0, 2), index_expr(1, 2)))
    a_ijm1 = ArrayRef("A", (index_expr(0, 2), index_expr(1, 2, -1)))
    b_ij = ArrayRef("B", (index_expr(0, 2), index_expr(1, 2)))
    b_im1jm1 = ArrayRef("B", (index_expr(0, 2, -1), index_expr(1, 2, -1)))
    body = [
        Statement("S1", writes=(a_ij,), cost=cost),
        Statement("S2", writes=(b_ij,), reads=(a_ijm1,), cost=cost),
        Statement("S3", reads=(b_im1jm1,), cost=cost),
    ]
    return Loop("example2", bounds=((1, n), (1, m)), body=body,
                array_shapes={"A": (n + 1, m + 1), "B": (n + 1, m + 1)})


def example3_loop(n: int = 60, cost: int = 10, long_branch_cost: int = 200,
                  branch: Optional[Callable[[int], str]] = None) -> Loop:
    """Dependence sources in branches (Example 3 / Fig. 5.3).

    Each iteration takes branch B or C.  The source statement ``Sb``
    (flow dependence on array ``B``, distance 2) executes only on branch
    B; on branch C the iteration instead runs a *long* computation ``Sc``
    before reaching its final source ``Sd``.  Sinks in later iterations
    wait on ``Sb``'s step whether or not it ran, so the synchronization
    variable must be changed on all paths.

    The paper's refinement is visible here: when branch C is taken, an
    *eager* scheme publishes ``Sb``'s (skipped) step before the long
    computation ("P1 should inform the sinks to proceed as soon as
    possible"), while a lazy scheme leaves the sinks spinning until the
    final transfer after ``Sc`` + ``Sd``.

    ``branch`` maps the iteration number to "B" or "C" (default:
    alternating blocks of three).
    """
    if branch is None:
        def branch(i: int) -> str:
            return "B" if (i // 3) % 2 == 0 else "C"

    def on_b(index) -> bool:
        return branch(index[0]) == "B"

    def on_c(index) -> bool:
        return branch(index[0]) == "C"

    body = [
        # Sa: unconditional source on A (step 1)
        Statement("Sa", writes=(ref1("A", 1, 1),), cost=cost),
        # Sb: branch-B-only source on B (step 2; skipped on branch C)
        Statement("Sb", writes=(ref1("B", 1, 2),), cost=cost, guard=on_b),
        # Sc: branch-C-only long computation (not a source)
        Statement("Sc", reads=(ref1("A", 1, 0),), cost=long_branch_cost,
                  guard=on_c),
        # Sd: unconditional source on C (step 3, the last source)
        Statement("Sd", writes=(ref1("C", 1, 1),), cost=cost),
        # Se: sink of Sa (d1), Sb (d2) and Sd (d1)
        Statement("Se", reads=(ref1("A", 1, 0), ref1("B", 1, 0),
                               ref1("C", 1, 0)), cost=cost),
    ]
    return Loop("example3", bounds=((1, n),), body=body)


def relaxation_loop(n: int = 16, cost: int = 10) -> Loop:
    """The four-point relaxation of Example 1 (Fig. 5.1(a)) as a nest::

        DO I = 2, N
          DO J = 2, N
            S: A[I,J] = A[I-1,J] + A[I,J-1]
          END DO
        END DO

    Both dependences have distance vectors (1,0) and (0,1).  This IR form
    feeds the dependence analysis; the wavefront and pipelined execution
    strategies are built in :mod:`repro.apps.relaxation`.
    """
    a_ij = ArrayRef("A", (index_expr(0, 2), index_expr(1, 2)))
    a_im1j = ArrayRef("A", (index_expr(0, 2, -1), index_expr(1, 2)))
    a_ijm1 = ArrayRef("A", (index_expr(0, 2), index_expr(1, 2, -1)))
    body = [Statement("S", writes=(a_ij,), reads=(a_im1j, a_ijm1),
                      cost=cost)]
    return Loop("relaxation", bounds=((2, n), (2, n)), body=body,
                array_shapes={"A": (n + 1, n + 1)})


def triple_nested_loop(n: int = 4, m: int = 3, k: int = 3,
                       cost: int = 10) -> Loop:
    """A depth-3 DOACROSS nest ("The idea can be extended to
    multiply-nested loops as well")::

        DO I = 1, N
          DO J = 1, M
            DO K = 1, K
              S1: A[I,J,K] = A[I,J,K-1]
              S2: B[I,J,K] = A[I,J-1,K] + B[I-1,J,K]
            END DO
          END DO
        END DO

    Linearized distances: (0,0,1) -> 1, (0,1,0) -> K, (1,0,0) -> M*K.
    """
    a_ijk = ArrayRef("A", (index_expr(0, 3), index_expr(1, 3),
                           index_expr(2, 3)))
    a_ijkm1 = ArrayRef("A", (index_expr(0, 3), index_expr(1, 3),
                             index_expr(2, 3, -1)))
    a_ijm1k = ArrayRef("A", (index_expr(0, 3), index_expr(1, 3, -1),
                             index_expr(2, 3)))
    b_ijk = ArrayRef("B", (index_expr(0, 3), index_expr(1, 3),
                           index_expr(2, 3)))
    b_im1jk = ArrayRef("B", (index_expr(0, 3, -1), index_expr(1, 3),
                             index_expr(2, 3)))
    body = [
        Statement("S1", writes=(a_ijk,), reads=(a_ijkm1,), cost=cost),
        Statement("S2", writes=(b_ijk,), reads=(a_ijm1k, b_im1jk),
                  cost=cost),
    ]
    shape = (n + 1, m + 1, k + 1)
    return Loop("triple", bounds=((1, n), (1, m), (1, k)), body=body,
                array_shapes={"A": shape, "B": shape})


def late_source_loop(n: int = 40, body_cost: int = 40) -> Loop:
    """A loop whose dependence source executes at the *end* of the
    iteration while the sink runs at the *start* (flow on ``B`` at
    distance 1, doacross delay > 0): without synchronization the race
    manifests immediately, unlike Fig. 2.1 whose layout self-orders.
    Used by the failure-injection tests and the delay-analysis benches.
    """
    body = [
        Statement("S1", reads=(ref1("B", 1, -1),), cost=1),
        Statement("S2", writes=(ref1("C", 1, 0),), cost=body_cost),
        Statement("S3", writes=(ref1("B", 1, 0),), cost=1),
    ]
    return Loop("late-source", bounds=((1, n),), body=body)


def recurrence_loop(n: int = 100, cost: int = 10) -> Loop:
    """First-order linear recurrence: ``A[I] = A[I-1]`` -- the fully
    serial-chain DOACROSS (speedup bounded by overlap of the off-chain
    work, here none)."""
    body = [Statement("S1", writes=(ref1("A", 1, 0),),
                      reads=(ref1("A", 1, -1),), cost=cost)]
    return Loop("recurrence", bounds=((1, n),), body=body)


def doall_loop(n: int = 100, cost: int = 10) -> Loop:
    """Independent iterations: ``A[I] = B[I]`` -- a DOALL, no sync arcs."""
    body = [Statement("S1", writes=(ref1("A", 1, 0),),
                      reads=(ref1("B", 1, 0),), cost=cost)]
    return Loop("doall", bounds=((1, n),), body=body)


def fold_chain_loop(n: int = 40, cost: int = 10) -> Loop:
    """Two flow arcs off one source, at distances 1 and 5::

        DO I = 1, N
          S1: A[I+5] = ...
          S2: B[I]   = A[I+4]   (flow S1->S2, d=1)
          S3: C[I]   = A[I]     (flow S1->S3, d=5)
        END DO

    Built for the redundant-sync eliminator: the d=5 arc is implied by
    the d=1 arc through placement structure the per-arc pruning rules
    cannot see.  Under the statement-oriented scheme, awaiting
    ``SC(S1) >= I-1`` subsumes awaiting ``>= I-5`` on the same counter;
    under the process-oriented scheme with X=4 counters, 5 = 1 (mod 4)
    puts both waits on the *same* folded counter, where the d=1 wait's
    threshold implies the d=5 release already happened (ownership must
    pass through I-5 to reach I-1).
    """
    body = [
        Statement("S1", writes=(ref1("A", 1, 5),), cost=cost),
        Statement("S2", writes=(ref1("B", 1, 0),),
                  reads=(ref1("A", 1, 4),), cost=cost),
        Statement("S3", writes=(ref1("C", 1, 0),),
                  reads=(ref1("A", 1, 0),), cost=cost),
    ]
    return Loop("fold-chain", bounds=((1, n),), body=body)
