"""A Livermore-loops-style kernel suite in the loop IR.

The paper motivates its scheme with "most scientific applications" whose
loops a parallelizing compiler must classify and synchronize.  This
module provides a small suite of classic kernel shapes (after the
Livermore Fortran kernels) expressible in the rectangular affine IR, so
the compile pipeline can be exercised on a realistic mixed workload:

* ``hydro_fragment``      -- LL1-shaped, fully parallel (DOALL)
* ``tridiagonal``         -- LL5-shaped first-order recurrence (serial
                             chain DOACROSS)
* ``state_fragment``      -- LL7-shaped wide DOALL with many operands
* ``adi_sweep``           -- ADI-style 2-D sweep, one carried dimension
* ``first_difference``    -- LL12-shaped neighbour read (DOALL on a
                             distinct output array)
* ``prefix_partials``     -- running partial sums at stride ``k``
                             (DOACROSS with distance k: k independent
                             chains that pipeline)

Each builder returns a plain :class:`~repro.depend.model.Loop`; the
classifications asserted in the tests are computed, not assumed.
"""

from __future__ import annotations

from ..depend.model import ArrayRef, Loop, Statement, index_expr, ref1


def hydro_fragment(n: int = 64, cost: int = 8) -> Loop:
    """LL1 shape: ``X[k] = Q + Y[k] * (R*Z[k+10] + T*Z[k+11])``."""
    body = [Statement(
        "S1",
        writes=(ref1("X", 1, 0),),
        reads=(ref1("Y", 1, 0), ref1("Z", 1, 10), ref1("Z", 1, 11)),
        cost=cost)]
    return Loop("hydro", bounds=((1, n),), body=body)


def tridiagonal(n: int = 64, cost: int = 8) -> Loop:
    """LL5 shape: ``X[i] = Z[i] * (Y[i] - X[i-1])`` -- a serial chain."""
    body = [Statement(
        "S1",
        writes=(ref1("X", 1, 0),),
        reads=(ref1("Z", 1, 0), ref1("Y", 1, 0), ref1("X", 1, -1)),
        cost=cost)]
    return Loop("tridiag", bounds=((2, n),), body=body)


def state_fragment(n: int = 64, cost: int = 12) -> Loop:
    """LL7 shape: a wide expression over shifted operands (DOALL)."""
    body = [Statement(
        "S1",
        writes=(ref1("X", 1, 0),),
        reads=(ref1("U", 1, 0), ref1("Z", 1, 0), ref1("Y", 1, 0),
               ref1("U", 1, 1), ref1("U", 1, 2), ref1("U", 1, 3)),
        cost=cost)]
    return Loop("state", bounds=((1, n),), body=body)


def adi_sweep(n: int = 10, m: int = 8, cost: int = 8) -> Loop:
    """ADI-style implicit sweep: carried along rows, parallel across
    columns -- ``X[i,j] = X[i-1,j] - Y[i,j]``."""
    x_ij = ArrayRef("X", (index_expr(0, 2), index_expr(1, 2)))
    x_im1j = ArrayRef("X", (index_expr(0, 2, -1), index_expr(1, 2)))
    y_ij = ArrayRef("Y", (index_expr(0, 2), index_expr(1, 2)))
    body = [Statement("S1", writes=(x_ij,), reads=(x_im1j, y_ij),
                      cost=cost)]
    return Loop("adi", bounds=((1, n), (1, m)), body=body,
                array_shapes={"X": (n + 1, m + 1), "Y": (n + 1, m + 1)})


def first_difference(n: int = 64, cost: int = 4) -> Loop:
    """LL12 shape: ``X[k] = Y[k+1] - Y[k]`` (DOALL, distinct output)."""
    body = [Statement(
        "S1", writes=(ref1("X", 1, 0),),
        reads=(ref1("Y", 1, 1), ref1("Y", 1, 0)), cost=cost)]
    return Loop("first-diff", bounds=((1, n),), body=body)


def prefix_partials(n: int = 64, stride: int = 4, cost: int = 8) -> Loop:
    """Strided partial sums: ``X[i] = X[i-k] + Y[i]`` -- k independent
    chains that a DOACROSS pipelines k-wide."""
    body = [Statement(
        "S1", writes=(ref1("X", 1, 0),),
        reads=(ref1("X", 1, -stride), ref1("Y", 1, 0)), cost=cost)]
    return Loop("prefix", bounds=((stride + 1, n),), body=body)


#: the whole suite, name -> zero-argument builder
SUITE = {
    "hydro": hydro_fragment,
    "tridiag": tridiagonal,
    "state": state_fragment,
    "adi": adi_sweep,
    "first-diff": first_difference,
    "prefix": prefix_partials,
}
