"""Example 3 runners: dependence sources in branches.

Compares the eager publication policy ("P1 should inform the sinks to
proceed as soon as possible: after Sd in branch C, mark_PC(3) is
executed instead of mark_PC(2)") against the lazy fallback, where a
skipped source's step is signed off only by the final ``transfer_PC``.
Both are *correct* (the transfer covers everything); eager publication
cuts the time later iterations spend spinning on skipped sources.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..depend.model import Loop
from ..schemes.base import RunConfig
from ..schemes.process_oriented import ProcessOrientedScheme
from ..sim.machine import Machine, MachineConfig
from ..sim.metrics import RunResult
from .kernels import example3_loop


@dataclass
class BranchRunReport:
    """Eager-vs-lazy numbers for one configuration."""

    policy: str
    result: RunResult

    @property
    def total_spin(self) -> int:
        return self.result.total_spin

    @property
    def makespan(self) -> int:
        return self.result.makespan


def run_branchy(policy: str = "eager", n: int = 60,
                long_branch_cost: int = 200, processors: int = 8,
                style: str = "improved",
                loop: Optional[Loop] = None) -> BranchRunReport:
    """Run the branchy loop under the process-oriented scheme.

    ``policy`` is "eager" or "lazy" (Example 3's optimization on/off).
    """
    if policy not in ("eager", "lazy"):
        raise ValueError(f"unknown publication policy {policy!r}")
    loop = loop or example3_loop(n=n, long_branch_cost=long_branch_cost)
    scheme = ProcessOrientedScheme(style=style,
                                   eager_branch_marks=(policy == "eager"),
                                   processors=processors)
    machine = Machine(MachineConfig(processors=processors))
    result = scheme.run(loop, config=RunConfig(machine=machine))
    return BranchRunReport(policy=policy, result=result)
