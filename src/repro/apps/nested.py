"""Example 2 runners: multiply-nested DOACROSS via implicit coalescing.

The nested loop of Fig. 5.2 runs through the generic scheme machinery
(processes are linearized ``lpid``s), so this module only adds the
comparison the example is about:

* the process-oriented scheme coalesces implicitly -- lpid arithmetic
  handles inner-loop boundaries at the price of a few *extra
  dependences* (quantified by :func:`repro.core.linearize.extra_dependences`),
* data-oriented schemes synchronize per element and therefore must test
  loop boundaries at run time, "O(r d) per iteration" -- modelled as an
  explicit per-iteration overhead added to their cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..core.linearize import (CoalescingReport, boundary_check_cost,
                              extra_dependences)
from ..depend.graph import DependenceGraph
from ..depend.model import Loop, Statement
from ..schemes.base import RunConfig, SyncScheme
from ..sim.machine import Machine, MachineConfig
from ..sim.metrics import RunResult


def with_boundary_overhead(loop: Loop, per_check: int = 2) -> Loop:
    """The loop as a data-oriented scheme executes it: every iteration
    pays the O(r*d) boundary tests, charged to the first statement."""
    overhead = boundary_check_cost(loop, per_check=per_check)

    def inflate(stmt: Statement) -> Statement:
        base_cost = stmt.cost

        def cost(index) -> int:
            base = base_cost(index) if callable(base_cost) else base_cost
            return base + overhead

        return Statement(stmt.sid, writes=stmt.writes, reads=stmt.reads,
                         cost=cost, guard=stmt.guard)

    body = [inflate(loop.body[0])] + list(loop.body[1:])
    return Loop(loop.name + "+boundary", bounds=loop.bounds, body=body,
                array_shapes=dict(loop.array_shapes))


@dataclass
class NestedRunReport:
    """One scheme's result on the nested loop."""

    scheme: str
    result: RunResult
    boundary_overhead_per_iteration: int
    coalescing: List[CoalescingReport]


def run_nested(loop: Loop, scheme: SyncScheme, processors: int = 8,
               charge_boundary_overhead: bool = False,
               per_check: int = 2,
               validate: bool = True) -> NestedRunReport:
    """Run the nested loop under ``scheme``; optionally charge the
    per-iteration boundary tests a data-oriented scheme needs."""
    graph = DependenceGraph(loop)
    target = loop
    overhead = 0
    if charge_boundary_overhead:
        target = with_boundary_overhead(loop, per_check=per_check)
        overhead = boundary_check_cost(loop, per_check=per_check)
    machine = Machine(MachineConfig(processors=processors))
    result = scheme.run(target, config=RunConfig(machine=machine,
                                                validate=validate))
    return NestedRunReport(
        scheme=scheme.name,
        result=result,
        boundary_overhead_per_iteration=overhead,
        coalescing=extra_dependences(loop, graph))
