"""The paper's worked examples as runnable applications.

* :mod:`repro.apps.kernels` -- every loop the paper analyzes, in IR form
* :mod:`repro.apps.relaxation` -- Example 1: wavefront vs. asynchronous
  pipelining, column grouping, limited statement counters
* :mod:`repro.apps.nested` -- Example 2: coalesced nested DOACROSS
* :mod:`repro.apps.branchy` -- Example 3: sources in branches
* :mod:`repro.apps.fft` -- Example 5: pairwise-synchronized FFT phases
  (Example 4, the butterfly barrier, lives in :mod:`repro.barriers`)
"""

from .branchy import BranchRunReport, run_branchy
from .fft import BarrierFFT, PairwiseFFT, run_fft
from .kernels import (doall_loop, example2_loop, example3_loop, fig21_loop,
                      fig21_loop_with_delay, late_source_loop,
                      recurrence_loop, relaxation_loop,
                      triple_nested_loop)
from .livermore import SUITE as LIVERMORE_SUITE
from .nested import NestedRunReport, run_nested, with_boundary_overhead
from .pde import BarrierPDE, NeighborPDE, run_pde
from .relaxation import (PipelinedRelaxation, SerialRelaxation,
                         StatementPipelinedRelaxation, WavefrontRelaxation,
                         column_groups, run_relaxation, serial_cycles)

__all__ = [
    "BarrierFFT", "BarrierPDE", "BranchRunReport", "NeighborPDE",
    "NestedRunReport", "PairwiseFFT",
    "PipelinedRelaxation", "SerialRelaxation",
    "StatementPipelinedRelaxation", "WavefrontRelaxation",
    "column_groups", "doall_loop", "example2_loop", "example3_loop",
    "LIVERMORE_SUITE", "fig21_loop", "fig21_loop_with_delay", "late_source_loop",
    "recurrence_loop", "triple_nested_loop",
    "relaxation_loop", "run_branchy", "run_fft",
    "run_nested", "run_pde", "run_relaxation", "serial_cycles",
    "with_boundary_overhead",
]
