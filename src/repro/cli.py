"""Shared building blocks for every ``python -m repro`` subcommand.

Each mode (the default compile-and-run command, ``chaos``, ``sweep``)
used to grow its own argparse boilerplate with drifting spellings.
This module is the single place those parsers are built from, so the
three IO/parallelism flags mean the same thing everywhere:

``--json PATH``
    write the mode's machine-readable results (a JSON document) to PATH
    in addition to the human-readable report on stdout;
``--seed N``
    base seed for every seeded component (fault plans, sweep seed
    grids); deterministic modes accept and ignore it;
``--procs N``
    number of parallel worker processes used to fan out independent
    runs (1 = serial, identical output either way).

Modes that fan cells over supervised workers additionally share the
executor trio (``--cell-timeout`` / ``--max-retries`` / ``--resume``,
see :func:`add_executor_options`) and the SIGTERM-as-clean-shutdown
behavior of :func:`graceful_sigterm`.
"""

from __future__ import annotations

import argparse
import contextlib
import pathlib
import signal


def make_parser(prog: str, description: str) -> argparse.ArgumentParser:
    """A subcommand parser with the repository's house style."""
    return argparse.ArgumentParser(prog=prog, description=description)


def add_common_options(parser: argparse.ArgumentParser, *,
                       procs_default: int = 1) -> argparse.ArgumentParser:
    """Attach the shared ``--json`` / ``--seed`` / ``--procs`` trio.

    Every subcommand gets these with identical names, types, defaults
    and semantics (see the module docstring); returns the parser for
    chaining.
    """
    parser.add_argument(
        "--json", type=pathlib.Path, default=None, metavar="PATH",
        help="also write machine-readable results as JSON to PATH")
    parser.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="base seed for seeded components (fault plans, sweep "
             "seed grids)")
    parser.add_argument(
        "--procs", type=int, default=procs_default, metavar="N",
        help="parallel worker processes for fanned-out runs "
             f"(default {procs_default}; results are identical at "
             "any value)")
    return parser


def add_cache_options(parser: argparse.ArgumentParser, *,
                      no_cache: bool = False) -> argparse.ArgumentParser:
    """Attach the shared ``--cache-dir`` (and optionally ``--no-cache``).

    Every mode that touches the on-disk experiment store (``sweep``,
    ``doctor``) takes the same spelling; ``no_cache=True`` additionally
    offers the opt-out flag for modes where running uncached makes
    sense.
    """
    parser.add_argument(
        "--cache-dir", type=pathlib.Path, default=None, metavar="PATH",
        help="result cache directory (default .repro-cache)")
    if no_cache:
        parser.add_argument(
            "--no-cache", action="store_true",
            help="ignore and do not write the result cache")
    return parser


def add_executor_options(parser: argparse.ArgumentParser,
                         ) -> argparse.ArgumentParser:
    """Attach the supervised-executor trio shared by fan-out modes.

    ``--cell-timeout`` / ``--max-retries`` / ``--resume`` configure the
    :class:`repro.lab.executor.SupervisedExecutor` supervision loop;
    any mode that fans cells over workers takes them with identical
    semantics.  ``--max-retries`` defaults to None so callers can fill
    in the executor's own default without importing it here.
    """
    parser.add_argument(
        "--cell-timeout", type=float, default=None, metavar="SECONDS",
        help="per-cell wall-clock budget: a cell running longer is "
             "killed and re-dispatched (counts against --max-retries)")
    parser.add_argument(
        "--max-retries", type=int, default=None, metavar="N",
        help="extra attempts per cell after the first, with capped "
             "exponential backoff (default 2); cells that exhaust the "
             "budget are quarantined and reported, not fatal")
    parser.add_argument(
        "--resume", action="store_true",
        help="re-enter an interrupted sweep: completed cells are "
             "recovered by cache/journal lookup and never recomputed")
    return parser


def add_service_options(parser: argparse.ArgumentParser,
                        ) -> argparse.ArgumentParser:
    """Attach the shared ``--socket`` flag of the service modes.

    ``serve`` listens on it; ``submit`` / ``status`` / ``watch`` /
    ``cancel`` connect to it.  One spelling everywhere, so a client
    command line is always the server command line plus a verb.
    """
    parser.add_argument(
        "--socket", type=pathlib.Path,
        default=pathlib.Path(".repro-service.sock"), metavar="PATH",
        help="unix socket the sweep service listens on "
             "(default .repro-service.sock)")
    return parser


@contextlib.contextmanager
def graceful_sigterm():
    """Map SIGTERM to KeyboardInterrupt for the enclosed block.

    A supervised sweep cleans up identically for Ctrl-C and a polite
    kill: children terminated, journal flushed, no half-written
    stores.  Restores the previous handler on exit; a no-op where
    signals are unavailable (non-main thread).
    """
    def raise_interrupt(_signum, _frame):
        raise KeyboardInterrupt

    try:
        previous = signal.signal(signal.SIGTERM, raise_interrupt)
    except ValueError:
        yield
        return
    try:
        yield
    finally:
        signal.signal(signal.SIGTERM, previous)
