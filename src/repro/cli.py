"""Shared building blocks for every ``python -m repro`` subcommand.

Each mode (the default compile-and-run command, ``chaos``, ``sweep``)
used to grow its own argparse boilerplate with drifting spellings.
This module is the single place those parsers are built from, so the
three IO/parallelism flags mean the same thing everywhere:

``--json PATH``
    write the mode's machine-readable results (a JSON document) to PATH
    in addition to the human-readable report on stdout;
``--seed N``
    base seed for every seeded component (fault plans, sweep seed
    grids); deterministic modes accept and ignore it;
``--procs N``
    number of parallel worker processes used to fan out independent
    runs (1 = serial, identical output either way).
"""

from __future__ import annotations

import argparse
import pathlib


def make_parser(prog: str, description: str) -> argparse.ArgumentParser:
    """A subcommand parser with the repository's house style."""
    return argparse.ArgumentParser(prog=prog, description=description)


def add_common_options(parser: argparse.ArgumentParser, *,
                       procs_default: int = 1) -> argparse.ArgumentParser:
    """Attach the shared ``--json`` / ``--seed`` / ``--procs`` trio.

    Every subcommand gets these with identical names, types, defaults
    and semantics (see the module docstring); returns the parser for
    chaining.
    """
    parser.add_argument(
        "--json", type=pathlib.Path, default=None, metavar="PATH",
        help="also write machine-readable results as JSON to PATH")
    parser.add_argument(
        "--seed", type=int, default=0, metavar="N",
        help="base seed for seeded components (fault plans, sweep "
             "seed grids)")
    parser.add_argument(
        "--procs", type=int, default=procs_default, metavar="N",
        help="parallel worker processes for fanned-out runs "
             f"(default {procs_default}; results are identical at "
             "any value)")
    return parser
