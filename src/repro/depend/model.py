"""Loop intermediate representation.

The paper assumes a parallelizing compiler (Parafrase, PFC, PTRAN) has
already produced loops with analyzable array subscripts.  This module is
the front-end substitute: a small IR for (possibly nested) ``DO`` loops
whose statements read and write array elements through affine subscripts,
plus a sequential reference executor used by the validators.

The running example from the paper, Fig. 2.1(a)::

    DO I = 1, N
      S1: A[I+3] = ...
      S2: ...    = A[I+1]
      S3: ...    = A[I+2]
      S4: A[I]   = ...
      S5: ...    = A[I-1]
    END DO

is expressed with :func:`repro.apps.kernels.fig21_loop`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from ..sim.ops import Address
from ..sim.validate import mix

#: iteration index vector, one component per nesting level
Index = Tuple[int, ...]


@dataclass(frozen=True)
class AffineExpr:
    """``sum_k coefs[k] * index[k] + const`` over the loop index vector."""

    coefs: Tuple[int, ...]
    const: int = 0

    def __post_init__(self) -> None:
        if not isinstance(self.coefs, tuple):
            object.__setattr__(self, "coefs", tuple(self.coefs))

    def eval(self, index: Index) -> int:
        """Value of the expression at a concrete iteration."""
        if len(index) != len(self.coefs):
            raise ValueError(
                f"index arity {len(index)} != expression arity "
                f"{len(self.coefs)}")
        return self.const + sum(c * i for c, i in zip(self.coefs, index))

    def __str__(self) -> str:
        names = "ijklmn"
        parts = []
        for position, coef in enumerate(self.coefs):
            if coef == 0:
                continue
            name = names[position] if position < len(names) else f"x{position}"
            parts.append(name if coef == 1 else f"{coef}{name}")
        if self.const or not parts:
            parts.append(str(self.const))
        return "+".join(parts).replace("+-", "-")


def index_expr(dim: int, ndims: int, offset: int = 0, coef: int = 1) -> AffineExpr:
    """Convenience: the expression ``coef * index[dim] + offset``."""
    coefs = [0] * ndims
    coefs[dim] = coef
    return AffineExpr(tuple(coefs), offset)


@dataclass(frozen=True)
class ArrayRef:
    """A subscripted array reference, e.g. ``A[I+3]`` or ``B[I-1, J-1]``."""

    array: str
    subscripts: Tuple[AffineExpr, ...]

    def __post_init__(self) -> None:
        if not isinstance(self.subscripts, tuple):
            object.__setattr__(self, "subscripts", tuple(self.subscripts))

    def element(self, index: Index) -> Tuple[int, ...]:
        """The concrete element coordinates referenced at ``index``."""
        return tuple(expr.eval(index) for expr in self.subscripts)

    def __str__(self) -> str:
        inner = ",".join(str(s) for s in self.subscripts)
        return f"{self.array}[{inner}]"


def ref1(array: str, ndims: int, offset: int = 0, dim: int = 0) -> ArrayRef:
    """One-dimensional reference ``array[index[dim] + offset]``."""
    return ArrayRef(array, (index_expr(dim, ndims, offset),))


@dataclass(frozen=True)
class Statement:
    """One executable statement in the loop body.

    ``cost`` is the statement's computation time in cycles; it may be a
    callable of the iteration index to model data-dependent running times
    (the paper's "one process delays its release ... e.g. executing a
    longer branch").  ``guard`` makes the statement conditional; a guarded
    statement may be a dependence source that does not execute in some
    iterations (section 5, Example 3).
    """

    sid: str
    writes: Tuple[ArrayRef, ...] = ()
    reads: Tuple[ArrayRef, ...] = ()
    cost: Any = 10  # int or Callable[[Index], int]
    guard: Optional[Callable[[Index], bool]] = None

    def __post_init__(self) -> None:
        if not isinstance(self.writes, tuple):
            object.__setattr__(self, "writes", tuple(self.writes))
        if not isinstance(self.reads, tuple):
            object.__setattr__(self, "reads", tuple(self.reads))

    def cost_at(self, index: Index) -> int:
        """Computation cycles of this statement at a given iteration."""
        if callable(self.cost):
            return int(self.cost(index))
        return int(self.cost)

    def executes_at(self, index: Index) -> bool:
        """Whether the statement runs in this iteration (guard check)."""
        return self.guard is None or bool(self.guard(index))

    def refs(self) -> Iterator[Tuple[str, ArrayRef]]:
        """All accesses as ("W"/"R", ref) pairs, writes first."""
        for ref in self.writes:
            yield "W", ref
        for ref in self.reads:
            yield "R", ref


@dataclass
class Loop:
    """A perfect nest of ``DO`` loops with a straight-line (possibly
    guarded) body, to be run as a DOACROSS.

    ``bounds`` are inclusive ``(lo, hi)`` pairs, outermost first.  Array
    elements are flattened to ``(array, flat_index)`` addresses using
    ``array_shapes`` (row-major); arrays default to one dimension.
    """

    name: str
    bounds: Tuple[Tuple[int, int], ...]
    body: List[Statement]
    array_shapes: Dict[str, Tuple[int, ...]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.bounds = tuple(tuple(b) for b in self.bounds)
        for lo, hi in self.bounds:
            if lo > hi:
                raise ValueError(f"empty loop bounds ({lo}, {hi})")
        sids = [s.sid for s in self.body]
        if len(set(sids)) != len(sids):
            raise ValueError(f"duplicate statement ids in {self.name}: {sids}")

    # ------------------------------------------------------------------
    # iteration space
    # ------------------------------------------------------------------

    @property
    def depth(self) -> int:
        return len(self.bounds)

    @property
    def extents(self) -> Tuple[int, ...]:
        return tuple(hi - lo + 1 for lo, hi in self.bounds)

    def iteration_space(self) -> List[Index]:
        """All iterations in sequential (lexicographic) order."""
        ranges = [range(lo, hi + 1) for lo, hi in self.bounds]
        return [tuple(idx) for idx in itertools.product(*ranges)]

    def in_bounds(self, index: Index) -> bool:
        return all(lo <= i <= hi
                   for (lo, hi), i in zip(self.bounds, index))

    def lpid(self, index: Index) -> int:
        """Linearized process id (1-based), as in the paper's Example 2:
        for index set ``(i, j)`` with inner extent M, ``lpid = (i-1)*M+j``
        (generalized to arbitrary depth and bounds)."""
        pid = 0
        for (lo, _hi), extent, i in zip(self.bounds, self.extents, index):
            pid = pid * extent + (i - lo)
        return pid + 1

    def index_of_lpid(self, lpid: int) -> Index:
        """Inverse of :meth:`lpid`."""
        remaining = lpid - 1
        reversed_index: List[int] = []
        for (lo, _hi), extent in zip(reversed(self.bounds),
                                     reversed(self.extents)):
            reversed_index.append(lo + remaining % extent)
            remaining //= extent
        return tuple(reversed(reversed_index))

    @property
    def n_iterations(self) -> int:
        total = 1
        for extent in self.extents:
            total *= extent
        return total

    # ------------------------------------------------------------------
    # addressing
    # ------------------------------------------------------------------

    def flatten(self, array: str, element: Tuple[int, ...]) -> Address:
        """Map element coordinates to a flat ``(array, index)`` address."""
        shape = self.array_shapes.get(array)
        if shape is None:
            if len(element) != 1:
                raise ValueError(
                    f"array {array!r} has no declared shape but is "
                    f"accessed with {len(element)} subscripts")
            return (array, element[0])
        if len(shape) != len(element):
            raise ValueError(
                f"array {array!r} has shape {shape} but is accessed "
                f"with {len(element)} subscripts")
        flat = 0
        for size, coordinate in zip(shape, element):
            flat = flat * size + coordinate
        return (array, flat)

    def address_of(self, ref: ArrayRef, index: Index) -> Address:
        """Flat address that ``ref`` touches at iteration ``index``."""
        return self.flatten(ref.array, ref.element(index))

    def statement(self, sid: str) -> Statement:
        """Look a statement up by id."""
        for stmt in self.body:
            if stmt.sid == sid:
                return stmt
        raise KeyError(f"no statement {sid!r} in loop {self.name!r}")

    def position(self, sid: str) -> int:
        """Textual position of a statement in the body (0-based)."""
        for position, stmt in enumerate(self.body):
            if stmt.sid == sid:
                return position
        raise KeyError(f"no statement {sid!r} in loop {self.name!r}")

    # ------------------------------------------------------------------
    # sequential reference execution
    # ------------------------------------------------------------------

    def execute_sequential(
            self, initial: Optional[Dict[Address, Any]] = None
    ) -> Tuple[Dict[Address, Any], Dict[Tuple[str, int], List[Any]]]:
        """Run the loop sequentially; return (final memory, reads by tag).

        Tags are ``(sid, lpid)``.  This is the semantics every
        synchronization scheme must preserve.
        """
        memory: Dict[Address, Any] = dict(initial or {})
        reads_by_tag: Dict[Tuple[str, int], List[Any]] = {}
        for index in self.iteration_space():
            lpid = self.lpid(index)
            for stmt in self.body:
                if not stmt.executes_at(index):
                    continue
                values = [memory.get(self.address_of(ref, index))
                          for ref in stmt.reads]
                reads_by_tag[(stmt.sid, lpid)] = values
                result = mix(stmt.sid, lpid, values)
                for ref in stmt.writes:
                    memory[self.address_of(ref, index)] = result
        return memory, reads_by_tag

    def serial_cycles(self, per_access: int = 0) -> int:
        """Computation cycles of a one-processor execution (lower bound
        used for speedup baselines); ``per_access`` adds a fixed cost per
        memory reference."""
        total = 0
        for index in self.iteration_space():
            for stmt in self.body:
                if stmt.executes_at(index):
                    total += stmt.cost_at(index)
                    total += per_access * (len(stmt.reads) + len(stmt.writes))
        return total
