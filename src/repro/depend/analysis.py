"""Data dependence analysis for constant-distance affine references.

Given two references to the same array inside a loop nest, a dependence
exists when some pair of iterations makes them touch the same element.
For the references the paper considers -- affine subscripts with equal
index coefficients ("constant-distance dependence occurs very frequently
in numerical programs") -- the iteration gap is a constant *distance
vector* obtained by solving a small linear system, "easily computed by
subtracting the subscript expressions of the two array references".

The tester is conservative: if the distance is not a unique integer
constant, the dependence is reported with ``distance=None`` (unknown),
which downstream classification treats as "run serially".
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from itertools import product
from typing import List, Optional, Sequence, Tuple

from .model import ArrayRef, Loop

#: dependence kinds, by (source access, sink access)
_DEP_TYPE = {("W", "R"): "flow", ("R", "W"): "anti", ("W", "W"): "output"}


@dataclass(frozen=True)
class Dependence:
    """One data dependence arc: ``src`` must access before ``dst``.

    ``distance`` is the iteration distance vector (sink iteration minus
    source iteration), lexicographically non-negative; ``None`` means the
    analysis could not prove a constant distance.
    """

    src: str
    dst: str
    dep_type: str                     # "flow" | "anti" | "output"
    distance: Optional[Tuple[int, ...]]
    src_ref: ArrayRef
    dst_ref: ArrayRef

    @property
    def loop_carried(self) -> bool:
        """True when the dependence crosses iterations."""
        return self.distance is None or any(self.distance)

    def __str__(self) -> str:
        dist = "?" if self.distance is None else ",".join(map(str, self.distance))
        return f"{self.src}->{self.dst} [{self.dep_type}, d=({dist})]"


#: cap on the free-variable enumeration box (see _solve_distance)
_ENUMERATION_LIMIT = 50_000
#: an underdetermined reference pair may collide at several constant
#: distances (strip-mined subscripts); each is emitted as its own arc,
#: up to this many
_MAX_DISTANCES_PER_PAIR = 16


def _solve_distance(src_ref: ArrayRef, dst_ref: ArrayRef, depth: int,
                    extents: Optional[Tuple[int, ...]] = None
                    ) -> Tuple[str, Optional[Tuple[int, ...]]]:
    """Solve for the constant distance vector between two references.

    Returns one of:
      ("none", None)       -- provably no dependence,
      ("unknown", None)    -- dependence possible, distances intractable,
      ("const", delta)     -- a unique collision gap,
      ("multi", [deltas])  -- finitely many collision gaps (e.g.
                              strip-mined subscripts like ``A[3s + o]``,
                              where the same flow dependence appears at
                              (0, +w) inside a strip and (+1, w-W) across
                              strips); each is a constant-distance arc.

    For underdetermined systems the free components are enumerated over
    the iteration-space box ``|delta_k| <= extent_k - 1``.
    """
    # Constant distance requires matching index coefficients per array dim.
    for s_sub, d_sub in zip(src_ref.subscripts, dst_ref.subscripts):
        if s_sub.coefs != d_sub.coefs:
            return "unknown", None

    # Build the system  sum_k coefs[m][k] * delta_k = const_src - const_dst.
    rows: List[List[Fraction]] = []
    rhs: List[Fraction] = []
    for s_sub, d_sub in zip(src_ref.subscripts, dst_ref.subscripts):
        rows.append([Fraction(c) for c in d_sub.coefs])
        rhs.append(Fraction(s_sub.const - d_sub.const))

    # Gaussian elimination over the rationals.
    matrix = [row + [b] for row, b in zip(rows, rhs)]
    pivots: List[Tuple[int, int]] = []  # (row, column)
    row_index = 0
    for column in range(depth):
        pivot_row = next(
            (r for r in range(row_index, len(matrix)) if matrix[r][column]),
            None)
        if pivot_row is None:
            continue
        matrix[row_index], matrix[pivot_row] = (matrix[pivot_row],
                                                matrix[row_index])
        pivot_value = matrix[row_index][column]
        matrix[row_index] = [v / pivot_value for v in matrix[row_index]]
        for r in range(len(matrix)):
            if r != row_index and matrix[r][column]:
                factor = matrix[r][column]
                matrix[r] = [v - factor * p
                             for v, p in zip(matrix[r], matrix[row_index])]
        pivots.append((row_index, column))
        row_index += 1

    # Inconsistent system: the references can never collide.
    for r in range(row_index, len(matrix)):
        if matrix[r][depth] != 0:
            return "none", None

    pivot_columns = {column for _row, column in pivots}
    free_columns = sorted(set(range(depth)) - pivot_columns)

    if not free_columns:
        delta: List[int] = [0] * depth
        for row, column in pivots:
            value = matrix[row][depth]
            if value.denominator != 1:
                return "none", None  # non-integer gap: never collide
            delta[column] = int(value)
        return "const", tuple(delta)

    # Underdetermined: enumerate the free components over the bounds box
    # and keep solutions whose every component is a realizable integer.
    if extents is None:
        return "unknown", None
    ranges = []
    box = 1
    for column in free_columns:
        limit = extents[column] - 1
        ranges.append(range(-limit, limit + 1))
        box *= 2 * limit + 1
        if box > _ENUMERATION_LIMIT:
            return "unknown", None

    solutions: List[Tuple[int, ...]] = []
    for assignment in product(*ranges):
        free_value = dict(zip(free_columns, assignment))
        candidate: List[Fraction] = [Fraction(0)] * depth
        for column, value in free_value.items():
            candidate[column] = Fraction(value)
        feasible = True
        for row, column in pivots:
            value = matrix[row][depth] - sum(
                matrix[row][c] * candidate[c] for c in free_columns)
            if value.denominator != 1:
                feasible = False
                break
            if abs(value) > extents[column] - 1:
                feasible = False
                break
            candidate[column] = value
        if feasible:
            solutions.append(tuple(int(v) for v in candidate))
    if not solutions:
        return "none", None
    if len(solutions) > _MAX_DISTANCES_PER_PAIR:
        # too many realizable gaps to enforce individually: give up and
        # let classification fall back to serial execution
        return "unknown", None
    return "multi", solutions


def _lex_sign(vector: Sequence[int]) -> int:
    """Sign of the first nonzero component (0 for the zero vector)."""
    for component in vector:
        if component:
            return 1 if component > 0 else -1
    return 0


def _distance_realizable(loop: Loop, delta: Sequence[int]) -> bool:
    """Some iteration pair inside the bounds realizes this distance."""
    return all(abs(d) <= hi - lo
               for d, (lo, hi) in zip(delta, loop.bounds))


def _ordered_same_iteration(loop: Loop, src_sid: str, src_kind: str,
                            dst_sid: str, dst_kind: str) -> Optional[bool]:
    """For a zero-distance collision, does src access before dst?

    Within an iteration, statements execute in textual order; within a
    statement, reads precede writes (operands are fetched, the result is
    stored).  Returns None when the pair needs no arc (same access slot or
    wrong order -- the reversed pair will produce the arc).
    """
    src_pos = loop.position(src_sid)
    dst_pos = loop.position(dst_sid)
    if src_pos < dst_pos:
        return True
    if src_pos > dst_pos:
        return False
    # Same statement: reads before writes.
    if src_kind == "R" and dst_kind == "W":
        return True
    return None


def analyze(loop: Loop) -> List[Dependence]:
    """Compute all data dependences of ``loop``.

    Every ordered pair of accesses to the same array, with at least one
    write, is tested.  For guarded statements the analysis is
    conservative: arcs are reported as if both statements always execute.
    """
    accesses = [
        (stmt.sid, kind, ref)
        for stmt in loop.body
        for kind, ref in stmt.refs()
    ]
    dependences: List[Dependence] = []
    for (sid_a, kind_a, ref_a), (sid_b, kind_b, ref_b) in product(accesses,
                                                                  accesses):
        if ref_a.array != ref_b.array:
            continue
        if kind_a == "R" and kind_b == "R":
            continue
        status, delta = _solve_distance(ref_a, ref_b, loop.depth,
                                        extents=loop.extents)
        if status == "none":
            continue
        if status == "unknown":
            dependences.append(Dependence(
                src=sid_a, dst=sid_b, dep_type=_DEP_TYPE[(kind_a, kind_b)],
                distance=None, src_ref=ref_a, dst_ref=ref_b))
            continue
        deltas = [delta] if status == "const" else delta
        for candidate in deltas:
            sign = _lex_sign(candidate)
            if sign < 0:
                continue  # the swapped pair yields this dependence
            if not _distance_realizable(loop, candidate):
                continue
            if sign == 0:
                ordered = _ordered_same_iteration(loop, sid_a, kind_a,
                                                  sid_b, kind_b)
                if not ordered:
                    continue
            dependences.append(Dependence(
                src=sid_a, dst=sid_b,
                dep_type=_DEP_TYPE[(kind_a, kind_b)],
                distance=tuple(candidate), src_ref=ref_a, dst_ref=ref_b))

    # Deduplicate identical arcs produced by symmetric access pairs.
    unique: List[Dependence] = []
    seen = set()
    for dep in dependences:
        key = (dep.src, dep.dst, dep.dep_type, dep.distance,
               str(dep.src_ref), str(dep.dst_ref))
        if key not in seen:
            seen.add(key)
            unique.append(dep)
    return unique
