"""Dependence graphs, linearized distances, and coverage pruning.

The paper (section 2.1) observes that enforcing S1->S3 and S3->S4 in
Fig. 2.1 *covers* the output dependence S1->S4: its synchronization is
redundant and can be pruned.  This module builds the dependence graph,
linearizes distance vectors for coalesced nests (Example 2), and prunes
covered arcs.

Two pruning modes are offered, because soundness depends on the scheme:

``"exact"`` (default)
    Arc ``(a, b, d)`` is pruned only if some other path from ``a`` to
    ``b`` -- through enforced sync arcs plus free intra-iteration textual
    edges -- has distances summing to exactly ``d``.  Sound for every
    scheme, including the process-oriented one, where waits name a
    *specific* source iteration.
``"monotonic"``
    Paths summing to *at most* ``d`` also prune.  Sound only when every
    source statement's completions are serialized across iterations (the
    statement-oriented scheme, where ``Advance`` publishes "all
    iterations <= i done"), because then a later instance's completion
    implies every earlier one.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from .analysis import Dependence, analyze
from .model import Loop
from ..sim.validate import DependenceInstance


def linear_distance(loop: Loop, distance: Tuple[int, ...]) -> int:
    """Distance in linearized process ids (Example 2's coalescing).

    For a nest with extents ``(N, M)`` a distance vector ``(di, dj)``
    becomes ``di * M + dj`` linear processes apart.
    """
    strides: List[int] = []
    stride = 1
    for extent in reversed(loop.extents):
        strides.append(stride)
        stride *= extent
    strides.reverse()
    return sum(d * s for d, s in zip(distance, strides))


@dataclass(frozen=True)
class SyncArc:
    """One synchronization requirement after linearization and dedup.

    ``distance`` is in linearized process ids; dependences of different
    types between the same statements at the same distance collapse into
    one arc ("there is no need to differentiate them when we are just
    trying to enforce the access order").
    """

    src: str
    dst: str
    distance: int
    #: the dependences this arc enforces (for reporting/validation)
    deps: Tuple[Dependence, ...] = ()

    def __str__(self) -> str:
        return f"{self.src}->{self.dst} (d={self.distance})"


class DependenceGraph:
    """Statement-level dependence graph of one loop nest."""

    def __init__(self, loop: Loop,
                 dependences: Optional[Sequence[Dependence]] = None) -> None:
        self.loop = loop
        self.dependences: List[Dependence] = (
            list(dependences) if dependences is not None else analyze(loop))
        self.graph = nx.MultiDiGraph()
        for stmt in loop.body:
            self.graph.add_node(stmt.sid)
        for dep in self.dependences:
            self.graph.add_edge(dep.src, dep.dst, dep=dep)

    # ------------------------------------------------------------------
    # classification helpers
    # ------------------------------------------------------------------

    @property
    def has_unknown_distance(self) -> bool:
        """True when some dependence's distance could not be computed."""
        return any(dep.distance is None for dep in self.dependences)

    @property
    def loop_carried(self) -> List[Dependence]:
        """Dependences that cross iterations."""
        return [dep for dep in self.dependences if dep.loop_carried]

    # ------------------------------------------------------------------
    # synchronization arcs
    # ------------------------------------------------------------------

    def sync_arcs(self) -> List[SyncArc]:
        """Loop-carried dependences as deduplicated linear-distance arcs."""
        grouped: Dict[Tuple[str, str, int], List[Dependence]] = {}
        for dep in self.dependences:
            if dep.distance is None:
                raise ValueError(
                    f"cannot synchronize unknown-distance dependence {dep}")
            distance = linear_distance(self.loop, dep.distance)
            if distance == 0:
                continue  # enforced by sequential execution in-process
            if distance < 0:
                raise ValueError(
                    f"dependence {dep} has negative linearized distance "
                    f"{distance}; inner extents too small to coalesce")
            grouped.setdefault((dep.src, dep.dst, distance), []).append(dep)
        return [SyncArc(src, dst, distance, tuple(deps))
                for (src, dst, distance), deps in sorted(
                    grouped.items(),
                    key=lambda item: (self.loop.position(item[0][0]),
                                      self.loop.position(item[0][1]),
                                      item[0][2]))]

    def pruned_sync_arcs(self, mode: str = "exact") -> List[SyncArc]:
        """Sync arcs with covered (redundant) arcs removed."""
        if mode not in ("exact", "monotonic"):
            raise ValueError(f"unknown pruning mode {mode!r}")
        arcs = self.sync_arcs()
        kept: List[SyncArc] = list(arcs)
        # Greedy elimination, largest distance first: long arcs are the
        # ones composable from short ones (S1->S4 = S1->S3 + S3->S4).
        for arc in sorted(arcs, key=lambda a: (-a.distance, a.src, a.dst)):
            others = [a for a in kept if a is not arc]
            if self._covered(arc, others, mode):
                kept = others
        kept.sort(key=lambda a: (self.loop.position(a.src),
                                 self.loop.position(a.dst), a.distance))
        return kept

    def _covered(self, arc: SyncArc, others: Sequence[SyncArc],
                 mode: str) -> bool:
        """Is ``arc`` enforced by a path through ``others`` + free edges?

        Free edges run between statements of the same iteration in
        textual order at distance 0.  The search explores states
        ``(statement, remaining distance)``.
        """
        position = {stmt.sid: index
                    for index, stmt in enumerate(self.loop.body)}
        by_src: Dict[str, List[SyncArc]] = {}
        for other in others:
            by_src.setdefault(other.src, []).append(other)

        target = arc.dst
        start = (arc.src, arc.distance, False)
        stack = [start]
        seen: Set[Tuple[str, int, bool]] = {start}
        while stack:
            node, remaining, used_sync = stack.pop()
            if node == target and used_sync:
                if remaining == 0 or (mode == "monotonic" and remaining >= 0):
                    return True
            # sync arcs out of `node`
            for other in by_src.get(node, ()):
                rest = remaining - other.distance
                if rest < 0:
                    continue
                state = (other.dst, rest, True)
                if state not in seen:
                    seen.add(state)
                    stack.append(state)
            # free textual edges to any later statement, same iteration
            for stmt in self.loop.body:
                if position[stmt.sid] > position[node]:
                    state = (stmt.sid, remaining, used_sync)
                    if state not in seen:
                        seen.add(state)
                        stack.append(state)
        return False

    # ------------------------------------------------------------------
    # source/sink structure (for scheme code generation)
    # ------------------------------------------------------------------

    def sources(self, arcs: Optional[Sequence[SyncArc]] = None) -> List[str]:
        """Statements that are the source of >= 1 sync arc, textual order."""
        arcs = self.sync_arcs() if arcs is None else arcs
        source_sids = {arc.src for arc in arcs}
        return [stmt.sid for stmt in self.loop.body
                if stmt.sid in source_sids]

    def sinks(self, arcs: Optional[Sequence[SyncArc]] = None) -> List[str]:
        """Statements that are the sink of >= 1 sync arc, textual order."""
        arcs = self.sync_arcs() if arcs is None else arcs
        sink_sids = {arc.dst for arc in arcs}
        return [stmt.sid for stmt in self.loop.body if stmt.sid in sink_sids]

    def incoming(self, sid: str,
                 arcs: Optional[Sequence[SyncArc]] = None) -> List[SyncArc]:
        """Sync arcs whose sink is ``sid``."""
        arcs = self.sync_arcs() if arcs is None else arcs
        return [arc for arc in arcs if arc.dst == sid]

    # ------------------------------------------------------------------
    # validator support
    # ------------------------------------------------------------------

    def dependence_instances(self) -> List[DependenceInstance]:
        """Concrete (source tag, sink tag, address) ordering obligations.

        Tags are ``(sid, lpid)``.  Guarded statements contribute only the
        instances where both endpoints actually execute.
        """
        kinds = {"flow": ("W", "R"), "anti": ("R", "W"),
                 "output": ("W", "W")}
        instances: List[DependenceInstance] = []
        for dep in self.dependences:
            if dep.distance is None:
                continue
            delta = dep.distance
            src_stmt = self.loop.statement(dep.src)
            dst_stmt = self.loop.statement(dep.dst)
            src_kind, dst_kind = kinds[dep.dep_type]
            for index in self.loop.iteration_space():
                source_index = tuple(i - d for i, d in zip(index, delta))
                if not self.loop.in_bounds(source_index):
                    continue
                if not src_stmt.executes_at(source_index):
                    continue
                if not dst_stmt.executes_at(index):
                    continue
                addr = self.loop.address_of(dep.dst_ref, index)
                if addr != self.loop.address_of(dep.src_ref, source_index):
                    continue  # distinct elements (defensive; cannot happen)
                instances.append((
                    (dep.src, self.loop.lpid(source_index)),
                    (dep.dst, self.loop.lpid(index)),
                    addr, src_kind, dst_kind))
        return instances
