"""Loop classification: DOALL / DOACROSS / serial.

"Very often, the iterations of a loop are independent of each other ...
(they are called Doall loops).  However, even more prevalent is the case
where the result produced in one iteration is used in a later iteration"
-- those run as DOACROSS with data synchronization, provided every
loop-carried dependence has a known constant distance.  Anything else
must run serially.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from .graph import DependenceGraph
from .model import Loop

#: classification labels
DOALL = "doall"
DOACROSS = "doacross"
SERIAL = "serial"


@dataclass(frozen=True)
class Classification:
    """Outcome of classifying one loop."""

    label: str
    reason: str
    #: number of loop-carried sync arcs a DOACROSS must enforce
    carried_arcs: int = 0


def classify(loop: Loop,
             graph: Optional[DependenceGraph] = None) -> Classification:
    """Classify ``loop`` from its dependence graph."""
    graph = graph or DependenceGraph(loop)
    if graph.has_unknown_distance:
        unknown = [str(d) for d in graph.dependences if d.distance is None]
        return Classification(
            SERIAL,
            f"dependence distance not provably constant: {unknown}")
    carried = graph.loop_carried
    if not carried:
        return Classification(DOALL, "no loop-carried dependences")
    arcs = graph.sync_arcs()
    return Classification(
        DOACROSS,
        f"{len(carried)} loop-carried dependence(s), "
        f"{len(arcs)} sync arc(s) after dedup",
        carried_arcs=len(arcs))
