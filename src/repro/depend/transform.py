"""Loop transformations: interchange and skewing (wavefronting).

Fig. 5.1(c) notes that the wavefront method "requires loop index
transformation": skewing the inner loop by the outer index and then
interchanging turns the anti-diagonals of the iteration space into an
outer sequential loop over diagonals with a DOALL inner loop -- the
barrier-per-wavefront execution the paper compares against.  This module
implements both transforms at the IR level with the standard legality
rules over distance vectors:

* **interchange** by permutation ``perm`` is legal iff every loop-carried
  distance vector stays lexicographically positive after permuting its
  components;
* **skewing** an inner level by ``factor *`` an outer level is always
  legal -- it adds ``factor * d_outer`` to the inner distance component,
  which cannot flip the leading nonzero component.

Both transforms remap the iteration space *bijectively* while touching
exactly the same array elements, so guards and data-dependent costs
compose through the inverse index map and the sequential semantics (and
the validators) carry over unchanged.
"""

from __future__ import annotations

from typing import Callable, Sequence

from .analysis import analyze
from .model import AffineExpr, ArrayRef, Index, Loop, Statement


class IllegalTransform(ValueError):
    """The requested transformation violates a dependence."""


def _lex_positive(vector: Sequence[int]) -> bool:
    for component in vector:
        if component > 0:
            return True
        if component < 0:
            return False
    return True  # zero vector: intra-iteration, always fine


def _rewrite_statement(stmt: Statement,
                       rewrite_expr: Callable[[AffineExpr], AffineExpr],
                       index_back: Callable[[Index], Index]) -> Statement:
    """Remap a statement into a transformed index space.

    ``rewrite_expr`` rewrites subscripts over the new indices;
    ``index_back`` maps a new index vector to the original one, through
    which guards and data-dependent costs compose.
    """
    def map_ref(ref: ArrayRef) -> ArrayRef:
        return ArrayRef(ref.array,
                        tuple(rewrite_expr(expr)
                              for expr in ref.subscripts))

    guard = stmt.guard
    new_guard = None
    if guard is not None:
        def new_guard(index: Index, _guard=guard) -> bool:
            return _guard(index_back(index))

    cost = stmt.cost
    if callable(cost):
        def new_cost(index: Index, _cost=cost) -> int:
            return _cost(index_back(index))
    else:
        new_cost = cost

    return Statement(stmt.sid,
                     writes=tuple(map_ref(ref) for ref in stmt.writes),
                     reads=tuple(map_ref(ref) for ref in stmt.reads),
                     cost=new_cost, guard=new_guard)


def interchange(loop: Loop, perm: Sequence[int]) -> Loop:
    """Permute the loop nest: new level ``k`` iterates old level
    ``perm[k]``.

    Raises :class:`IllegalTransform` when some dependence's distance
    vector would turn lexicographically negative.  (Legality is judged
    on the analyzable dependences; guards are conservative no-ops for
    distance computation, exactly as in the analysis itself.)
    """
    perm = list(perm)
    if sorted(perm) != list(range(loop.depth)):
        raise ValueError(f"perm {perm!r} is not a permutation of "
                         f"0..{loop.depth - 1}")
    for dep in analyze(loop):
        if dep.distance is None:
            raise IllegalTransform(
                f"unknown-distance dependence {dep} blocks interchange")
        permuted = tuple(dep.distance[p] for p in perm)
        if not _lex_positive(permuted):
            raise IllegalTransform(
                f"interchange {perm} flips dependence {dep}: "
                f"{dep.distance} -> {permuted}")

    def rewrite_expr(expr: AffineExpr) -> AffineExpr:
        new_coefs = [0] * len(expr.coefs)
        for new_position, old_position in enumerate(perm):
            new_coefs[new_position] = expr.coefs[old_position]
        return AffineExpr(tuple(new_coefs), expr.const)

    def index_back(index: Index) -> Index:
        original = [0] * len(perm)
        for new_position, old_position in enumerate(perm):
            original[old_position] = index[new_position]
        return tuple(original)

    bounds = tuple(loop.bounds[p] for p in perm)
    body = [_rewrite_statement(stmt, rewrite_expr, index_back)
            for stmt in loop.body]
    return Loop(loop.name + f"@perm{tuple(perm)}", bounds=bounds,
                body=body, array_shapes=dict(loop.array_shapes))


def skew(loop: Loop, target: int = 1, source: int = 0,
         factor: int = 1) -> Loop:
    """Skew loop level ``target`` by ``factor *`` level ``source``.

    The new target index is ``j' = j + factor * i``; subscripts are
    rewritten with ``j = j' - factor * i`` so every iteration touches the
    same elements.  The target level's bounds widen to the full sweep
    ``[lo_j + factor*lo_i, hi_j + factor*hi_i]`` and iterations outside
    the original (now slanted) region are guarded off.

    Skewing is always legal; distance vectors transform as
    ``d_target += factor * d_source``.
    """
    if target <= source:
        raise ValueError("can only skew an inner level by an outer one")
    if factor < 1:
        raise ValueError("skew factor must be >= 1")

    lo_t, hi_t = loop.bounds[target]
    lo_s, hi_s = loop.bounds[source]
    new_bounds = list(loop.bounds)
    new_bounds[target] = (lo_t + factor * lo_s, hi_t + factor * hi_s)

    def rewrite_expr(expr: AffineExpr) -> AffineExpr:
        # substitute j = j' - factor * i into  sum c_k i_k + c
        coefs = list(expr.coefs)
        j_coef = coefs[target]
        coefs[source] = coefs[source] - factor * j_coef
        return AffineExpr(tuple(coefs), expr.const)

    def index_back(index: Index) -> Index:
        original = list(index)
        original[target] = index[target] - factor * index[source]
        return tuple(original)

    def in_original(index: Index) -> bool:
        return lo_t <= index[target] - factor * index[source] <= hi_t

    body = []
    for stmt in loop.body:
        rewritten = _rewrite_statement(stmt, rewrite_expr, index_back)
        base_guard = rewritten.guard

        def guard(index: Index, _base=base_guard) -> bool:
            if not in_original(index):
                return False
            return _base is None or _base(index)

        body.append(Statement(rewritten.sid, writes=rewritten.writes,
                              reads=rewritten.reads, cost=rewritten.cost,
                              guard=guard))
    return Loop(loop.name + f"@skew{factor}", bounds=tuple(new_bounds),
                body=body, array_shapes=dict(loop.array_shapes))


def strip_mine(loop: Loop, level: int = 0, width: int = 4) -> Loop:
    """Split loop ``level`` into strips of ``width`` iterations.

    The grouping of Fig. 5.1(c): "we can also reduce the amount of
    synchronization needed between successive iterations of I by
    grouping G iterations in the J loop" -- a strip-mined level exposes
    the strip loop for coarser synchronization while the intra-strip
    loop stays sequential inside each process.

    The transformed nest is one level deeper: level ``level`` becomes a
    strip index ``s`` (0-based strips) and a new innermost-of-the-pair
    offset lives at ``level + 1`` with the *original* index value
    ``i = lo + s*width + offset``; subscripts are rewritten accordingly
    and out-of-range tail iterations are guarded off.  Always legal
    (pure reindexing in the same order).
    """
    if not 0 <= level < loop.depth:
        raise ValueError(f"level {level} out of range for depth "
                         f"{loop.depth}")
    if width < 1:
        raise ValueError("strip width must be >= 1")

    lo, hi = loop.bounds[level]
    extent = hi - lo + 1
    n_strips = -(-extent // width)

    new_bounds = (loop.bounds[:level]
                  + ((0, n_strips - 1), (0, width - 1))
                  + loop.bounds[level + 1:])

    def index_back(index: Index) -> Index:
        strip = index[level]
        offset = index[level + 1]
        original = (index[:level] + (lo + strip * width + offset,)
                    + index[level + 2:])
        return original

    def rewrite_expr(expr: AffineExpr) -> AffineExpr:
        # i = lo + s*width + o: coefficient c_i becomes c_i*width on the
        # strip index, c_i on the offset index, and c_i*lo on the const.
        c_i = expr.coefs[level]
        coefs = (expr.coefs[:level] + (c_i * width, c_i)
                 + expr.coefs[level + 1:])
        return AffineExpr(coefs, expr.const + c_i * lo)

    def in_range(index: Index) -> bool:
        return lo + index[level] * width + index[level + 1] <= hi

    body = []
    for stmt in loop.body:
        rewritten = _rewrite_statement(stmt, rewrite_expr, index_back)
        base_guard = rewritten.guard

        def guard(index: Index, _base=base_guard) -> bool:
            if not in_range(index):
                return False
            return _base is None or _base(index)

        body.append(Statement(rewritten.sid, writes=rewritten.writes,
                              reads=rewritten.reads, cost=rewritten.cost,
                              guard=guard))
    return Loop(loop.name + f"@strip{width}", bounds=new_bounds,
                body=body, array_shapes=dict(loop.array_shapes))


def wavefront(loop: Loop, factor: int = 1) -> Loop:
    """The full Fig. 5.1(c) transformation of a 2-deep nest:
    skew the inner level by the outer, then interchange, so the outer
    loop walks anti-diagonals and the inner loop is dependence-free.
    """
    if loop.depth != 2:
        raise ValueError("wavefront() expects a 2-deep nest")
    return interchange(skew(loop, target=1, source=0, factor=factor),
                       perm=[1, 0])


def inner_loop_parallel(loop: Loop) -> bool:
    """Is the innermost loop free of carried dependences?

    True when every loop-carried distance vector has a positive leading
    component at some *outer* level -- then for a fixed outer iteration
    the inner iterations are independent (a DOALL between outer steps).
    """
    for dep in analyze(loop):
        if dep.distance is None:
            return False
        if any(dep.distance) and all(c == 0 for c in dep.distance[:-1]):
            return False  # carried purely by the innermost level
    return True
