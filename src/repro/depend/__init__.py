"""Compiler substrate: loop IR, dependence analysis, dependence graphs.

The paper assumes "a compiler is required to perform thorough data
dependence analysis on the loop"; this package is that front-end for the
loop shapes the paper uses: perfect nests with affine constant-distance
subscripts, optional guards (branches), and per-iteration costs.
"""

from .analysis import Dependence, analyze
from .classify import DOACROSS, DOALL, SERIAL, Classification, classify
from .graph import DependenceGraph, SyncArc, linear_distance
from .model import (AffineExpr, ArrayRef, Index, Loop, Statement, index_expr,
                    ref1)
from .transform import (IllegalTransform, inner_loop_parallel, interchange,
                        skew, strip_mine, wavefront)

__all__ = [
    "AffineExpr", "ArrayRef", "Classification", "DOACROSS", "DOALL",
    "Dependence", "DependenceGraph", "IllegalTransform", "Index", "Loop",
    "SERIAL", "Statement", "SyncArc", "analyze", "classify", "index_expr",
    "inner_loop_parallel", "interchange", "linear_distance", "ref1", "skew",
    "strip_mine", "wavefront",
]
