"""repro: Su & Yew, "On Data Synchronization for Multiprocessors" (ISCA '89).

A full reproduction of the paper's system: the *process-oriented*
synchronization scheme (process counters, folded onto X hardware
counters on a broadcast synchronization bus) together with every
substrate it is compared against -- the data-oriented reference-based
(Cedar key/data) and instance-based (HEP full/empty) schemes, the
statement-oriented (Alliant Advance/Await) scheme, counter and butterfly
barriers, a dependence-analyzing compiler front-end, and an
event-driven shared-memory multiprocessor simulator.

Quick start::

    from repro.apps import fig21_loop
    from repro.schemes import make_scheme

    loop = fig21_loop(n=100)
    result = make_scheme("process-oriented").run(loop)
    print(result.summary())

Packages
--------
``repro.core``
    The paper's contribution: process counters, primitives, the
    DOACROSS synchronization planner, folding, coalescing, branches.
``repro.depend``
    Loop IR, dependence analysis, dependence graphs, classification.
``repro.schemes``
    The four synchronization schemes behind one interface.
``repro.sim``
    The simulated multiprocessor (memory, buses, scheduling, metrics).
``repro.barriers``
    Counter, Brooks-butterfly and PC-butterfly barriers (Example 4).
``repro.apps``
    The paper's worked examples as runnable workloads.
``repro.faults``
    Deterministic fault injection, hazard diagnosis, chaos harness.
``repro.lab``
    Declarative experiment engine: sweep specs, a parallel cached
    runner, versioned run records (``python -m repro sweep``).

Error taxonomy (re-exported here for callers)
---------------------------------------------
``ValidationError``
    the run finished but diverged from sequential semantics;
``DeadlockError``
    no task can ever make progress -- carries a ``HazardReport`` with
    per-task wait state and the blocking wait-for cycle;
``SimulationLimitError``
    the cycle budget ran out first -- same structured report.
"""

__version__ = "1.0.0"

from . import apps, barriers, core, depend, faults, lab, recovery, report, \
    schemes, sim
from .faults import (FaultInjector, FaultPlan, HazardReport, TaskDiagnosis,
                     WaitForGraph, diagnose, make_plan, plan_names)
from .lab import SweepSpec, make_spec, run_sweep, sweep_presets
from .recovery import RecoveryManager, RecoveryPolicy
from .schemes import RunConfig
from .sim import (DeadlockError, HazardError, SimulationLimitError,
                  ValidationError)

__all__ = ["apps", "barriers", "core", "depend", "faults", "lab",
           "recovery", "report", "schemes", "sim", "__version__",
           "DeadlockError", "FaultInjector", "FaultPlan", "HazardError",
           "HazardReport", "RecoveryManager", "RecoveryPolicy",
           "RunConfig", "SimulationLimitError", "SweepSpec",
           "TaskDiagnosis",
           "ValidationError", "WaitForGraph", "diagnose", "make_plan",
           "make_spec", "plan_names", "run_sweep", "sweep_presets"]
