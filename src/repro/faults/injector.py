"""Runtime fault injection driven by one seeded random stream.

The engine and fabrics call the probe methods below at fixed hook
points; each probe consults the :class:`~repro.faults.plan.FaultPlan`
and, only when the corresponding knob is non-zero, draws from the
injector's single ``random.Random(seed)``.  Hook order follows the
engine's deterministic event order, so the whole faulty execution is a
pure function of (workload, machine config, plan): a failing run replays
byte-for-byte under the same seed.

Disabled knobs consume no randomness at all, so enabling one fault class
does not perturb the draw sequence of another.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from .plan import CycleSpan, FaultPlan


class FaultInjector:
    """Draws per-event fault decisions for one simulation run.

    ``counters`` tallies what was actually injected; the machine copies
    it into ``RunResult.extra["faults"]`` so benches and the chaos
    harness can report fault pressure next to the usual metrics.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self._rng = random.Random(plan.seed)
        self._crash_after: Dict[str, int] = dict(plan.crash_after_ops)
        # deterministic (start, end) cycle windows, consumed as they fire
        self._stall_windows: Dict[str, List[Tuple[int, int]]] = {}
        for task, start, end in plan.stall_windows:
            self._stall_windows.setdefault(task, []).append((start, end))
        self._crash_windows: Dict[str, List[Tuple[int, int]]] = {}
        for task, start, end in plan.crash_windows:
            self._crash_windows.setdefault(task, []).append((start, end))
        self.counters: Dict[str, int] = {
            "injected_stalls": 0,
            "injected_stall_cycles": 0,
            "crashes": 0,
            "lost_broadcasts": 0,
            "delayed_broadcasts": 0,
            "jittered_accesses": 0,
            "dropped_updates": 0,
            "duplicated_updates": 0,
        }

    # ------------------------------------------------------------------
    # draw helpers (never touch the RNG when the knob is off)
    # ------------------------------------------------------------------

    def _chance(self, probability: float) -> bool:
        return probability > 0.0 and self._rng.random() < probability

    def _span(self, span: CycleSpan) -> int:
        low, high = span
        if high <= 0:
            return 0
        return self._rng.randint(low, high)

    # ------------------------------------------------------------------
    # engine probes
    # ------------------------------------------------------------------

    def _window_hit(self, windows: Dict[str, List[Tuple[int, int]]],
                    task: str, now: int) -> int:
        """End of the window ``task`` is inside at ``now``, else -1.

        A hit consumes the window (fires exactly once); windows the task
        never stepped inside are pruned as time passes them.  No RNG is
        touched, so deterministic windows never perturb the probability
        knobs' draw sequences.
        """
        spans = windows.get(task)
        if not spans:
            return -1
        for position, (start, end) in enumerate(spans):
            if start <= now < end:
                del spans[position]
                return end
            if end <= now:
                del spans[position]
                return self._window_hit(windows, task, now)
        return -1

    def stall_cycles(self, task: str, now: int = 0) -> int:
        """Extra cycles to stall ``task`` before its next step (0 = none)."""
        window_end = self._window_hit(self._stall_windows, task, now)
        if window_end >= 0:
            cycles = window_end - now
            self.counters["injected_stalls"] += 1
            self.counters["injected_stall_cycles"] += cycles
            return cycles
        if not self._chance(self.plan.stall_prob):
            return 0
        cycles = self._span(self.plan.stall_cycles)
        if cycles:
            self.counters["injected_stalls"] += 1
            self.counters["injected_stall_cycles"] += cycles
        return cycles

    def should_crash(self, task: str, ops_interpreted: int,
                     now: int = 0) -> bool:
        """Kill ``task`` now?  Deterministic targets fire exactly once."""
        target = self._crash_after.get(task)
        if target is not None and ops_interpreted >= target:
            del self._crash_after[task]
            self.counters["crashes"] += 1
            return True
        if self._window_hit(self._crash_windows, task, now) >= 0:
            self.counters["crashes"] += 1
            return True
        if self._chance(self.plan.crash_prob):
            self.counters["crashes"] += 1
            return True
        return False

    def memory_extra(self) -> int:
        """Extra wire latency for one shared-memory data access."""
        extra = self._span(self.plan.memory_jitter)
        if extra:
            self.counters["jittered_accesses"] += 1
        return extra

    def update_fate(self, var: int) -> str:
        """Fate of one SyncUpdate commit: "ok" | "drop" | "dup"."""
        if self._chance(self.plan.update_drop):
            self.counters["dropped_updates"] += 1
            return "drop"
        if self._chance(self.plan.update_dup):
            self.counters["duplicated_updates"] += 1
            return "dup"
        return "ok"

    # ------------------------------------------------------------------
    # fabric probes
    # ------------------------------------------------------------------

    def broadcast_fate(self, var: int) -> Tuple[bool, int]:
        """(lost?, extra delay) for one sync-bus broadcast."""
        lost = self._chance(self.plan.broadcast_loss)
        extra = self._span(self.plan.broadcast_jitter)
        if lost:
            self.counters["lost_broadcasts"] += 1
        elif extra:
            self.counters["delayed_broadcasts"] += 1
        return lost, extra

    def broadcast_delay(self, var: int) -> int:
        """Extra delay for a broadcast that cannot be lost (RMW result)."""
        extra = self._span(self.plan.broadcast_jitter)
        if extra:
            self.counters["delayed_broadcasts"] += 1
        return extra

    # ------------------------------------------------------------------

    @property
    def events(self) -> int:
        """Total number of injected fault events (not cycle sums)."""
        return sum(count for key, count in self.counters.items()
                   if not key.endswith("_cycles"))
