"""Declarative fault plans.

A :class:`FaultPlan` says *which* hardware misbehaviours to inject and
how often; the :class:`~repro.faults.injector.FaultInjector` decides the
*when* by drawing from ``random.Random(plan.seed)`` in engine-event
order.  Because the engine itself is deterministic, a plan pins down one
exact faulty execution: re-running the same plan replays the same
stalls, losses and crashes cycle-for-cycle.

An all-zero plan (``FaultPlan().is_empty``) installs no hooks at all --
the machine skips building an injector, so default runs reproduce the
pre-fault event sequence and metrics exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Tuple

#: inclusive (low, high) cycle range; (0, 0) disables the knob
CycleSpan = Tuple[int, int]


@dataclass(frozen=True)
class FaultPlan:
    """Seeded description of the faults to inject into one run.

    Probabilities are per *opportunity*: ``stall_prob`` and
    ``crash_prob`` per interpreted process operation, ``broadcast_loss``
    per synchronization-bus broadcast, ``update_drop``/``update_dup``
    per atomic read-modify-write commit.  Jitter spans are inclusive
    uniform ranges of extra cycles.
    """

    seed: int = 0
    #: preset name (or free-form label) for reports
    name: str = ""
    #: chance that a process step is preceded by a stall window
    stall_prob: float = 0.0
    stall_cycles: CycleSpan = (10, 120)
    #: deterministic stalls: ((task, start, end), ...) -- the task's
    #: first step inside cycle window [start, end) stalls until ``end``
    stall_windows: Tuple[Tuple[str, int, int], ...] = ()
    #: chance that a process step kills its task for good
    crash_prob: float = 0.0
    #: deterministic crashes: ((task name, op count), ...) -- the task
    #: dies when it has interpreted that many operations
    crash_after_ops: Tuple[Tuple[str, int], ...] = ()
    #: deterministic crashes: ((task, start, end), ...) -- the task dies
    #: on its first step inside cycle window [start, end)
    crash_windows: Tuple[Tuple[str, int, int], ...] = ()
    #: chance a sync-bus broadcast never reaches the local images
    broadcast_loss: float = 0.0
    #: extra propagation delay added to each broadcast
    broadcast_jitter: CycleSpan = (0, 0)
    #: extra wire latency added to each shared-memory data access
    memory_jitter: CycleSpan = (0, 0)
    #: chance a SyncUpdate commit is lost (the value never changes)
    update_drop: float = 0.0
    #: chance a SyncUpdate commit applies twice (e.g. a replayed message)
    update_dup: float = 0.0

    def __post_init__(self) -> None:
        for label in ("stall_prob", "crash_prob", "broadcast_loss",
                      "update_drop", "update_dup"):
            value = getattr(self, label)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{label} must be in [0, 1], got {value}")
        for label in ("stall_cycles", "broadcast_jitter", "memory_jitter"):
            low, high = getattr(self, label)
            if low < 0 or high < low:
                raise ValueError(
                    f"{label} must be a 0 <= low <= high span, "
                    f"got ({low}, {high})")
        for task, ops in self.crash_after_ops:
            if ops < 1:
                raise ValueError(
                    f"crash_after_ops for {task!r} must be >= 1, got {ops}")
        seen_tasks = set()
        for task, _ops in self.crash_after_ops:
            if task in seen_tasks:
                raise ValueError(
                    f"duplicate crash_after_ops entry for task {task!r}: "
                    f"a task can only die once")
            seen_tasks.add(task)
        self._check_windows("stall_windows", self.stall_windows)
        self._check_windows("crash_windows", self.crash_windows)

    @staticmethod
    def _check_windows(label: str,
                       windows: Tuple[Tuple[str, int, int], ...]) -> None:
        """Reject malformed (task, start, end) cycle windows."""
        per_task: Dict[str, List[Tuple[int, int]]] = {}
        for task, start, end in windows:
            if start < 0:
                raise ValueError(
                    f"{label} for {task!r}: start must be >= 0, "
                    f"got ({start}, {end})")
            if end <= start:
                raise ValueError(
                    f"{label} for {task!r}: end must be > start, "
                    f"got ({start}, {end})")
            per_task.setdefault(task, []).append((start, end))
        for task, spans in per_task.items():
            spans.sort()
            for (_s0, e0), (s1, e1) in zip(spans, spans[1:]):
                if s1 < e0:
                    raise ValueError(
                        f"{label} for {task!r} overlap: "
                        f"[..., {e0}) and [{s1}, {e1}) -- windows for one "
                        f"task must be disjoint")

    @property
    def is_empty(self) -> bool:
        """True when the plan injects nothing (zero-overhead default)."""
        return (self.stall_prob == 0.0 and self.crash_prob == 0.0
                and not self.crash_after_ops
                and not self.stall_windows and not self.crash_windows
                and self.broadcast_loss == 0.0
                and self.broadcast_jitter[1] == 0
                and self.memory_jitter[1] == 0
                and self.update_drop == 0.0 and self.update_dup == 0.0)

    def with_seed(self, seed: int) -> "FaultPlan":
        """The same fault mix under a different random stream."""
        return replace(self, seed=seed)

    def describe(self) -> str:
        """One-line human summary of the active knobs."""
        parts: List[str] = []
        if self.stall_prob:
            parts.append(f"stalls p={self.stall_prob} "
                         f"x{self.stall_cycles}")
        if self.crash_prob:
            parts.append(f"crashes p={self.crash_prob}")
        if self.stall_windows:
            parts.append(f"stall_windows={list(self.stall_windows)}")
        if self.crash_after_ops:
            parts.append(f"crash_after={dict(self.crash_after_ops)}")
        if self.crash_windows:
            parts.append(f"crash_windows={list(self.crash_windows)}")
        if self.broadcast_loss:
            parts.append(f"bus loss p={self.broadcast_loss}")
        if self.broadcast_jitter[1]:
            parts.append(f"bus jitter {self.broadcast_jitter}")
        if self.memory_jitter[1]:
            parts.append(f"mem jitter {self.memory_jitter}")
        if self.update_drop:
            parts.append(f"rmw drop p={self.update_drop}")
        if self.update_dup:
            parts.append(f"rmw dup p={self.update_dup}")
        label = self.name or "custom"
        body = ", ".join(parts) if parts else "no faults"
        return f"{label}(seed={self.seed}): {body}"


#: named fault mixes the chaos harness sweeps by default ("none" is the
#: zero-overhead control and excluded from plan_names())
_PRESETS: Dict[str, Dict] = {
    "none": {},
    # pure timing noise: legal under any correct scheme, so every run
    # must still validate -- catches hidden timing assumptions
    "jitter": {"memory_jitter": (0, 7), "broadcast_jitter": (0, 5)},
    # long per-task stall windows: models preempted/slow processors
    "stalls": {"stall_prob": 0.02, "stall_cycles": (10, 200)},
    # the sync bus drops and delays broadcasts: lost releases must end in
    # a diagnosed deadlock, never a hang
    "lossy-bus": {"broadcast_loss": 0.08, "broadcast_jitter": (0, 3)},
    # faulty memory-side synchronization processor: RMW commits vanish
    # (starved waiters) or replay (premature releases the validator
    # must catch)
    "flaky-rmw": {"update_drop": 0.05, "update_dup": 0.05},
    # processors die mid-loop; dependents and unclaimed iterations show
    # up in the hazard report
    "crashy": {"crash_prob": 0.001},
    # deterministic mid-loop processor deaths: with recovery enabled,
    # every killed iteration must be reincarnated on a survivor (unlike
    # "crashy", which can kill all processors and is unrecoverable by
    # construction)
    "crash-task": {"crash_after_ops": (("cpu1", 40), ("cpu2", 90))},
}


def plan_names() -> List[str]:
    """Preset names worth sweeping (everything but the empty control)."""
    return [name for name in _PRESETS if name != "none"]


def make_plan(name: str, seed: int = 0) -> FaultPlan:
    """Instantiate a preset fault plan under ``seed``."""
    try:
        knobs = _PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown fault plan {name!r}; known: {sorted(_PRESETS)}"
        ) from None
    return FaultPlan(seed=seed, name=name, **knobs)
