"""Chaos harness: sweep fault plans across synchronization schemes.

The acceptance contract for the fault layer: under *any* injected fault
mix, a run must end in exactly one of

``ok``
    the simulation completed and validated against sequential semantics
    (timing-only faults -- jitter, stalls -- must always land here);
``deadlock-diagnosed`` / ``limit-diagnosed``
    the run died, but with a structured :class:`HazardReport` naming
    per-task blocking state and (when one exists) the wait-for cycle;
``corruption-detected``
    the run completed with wrong values and the validator caught it
    (e.g. a duplicated RMW commit releasing a sink early).

What must *never* happen: a hang (bounded by ``max_cycles``, the
stagnation watchdog and the per-wait spin budget) or silent corruption
(bounded by :meth:`InstrumentedLoop.validate`).  Outcomes outside the
acceptable set -- an undiagnosed error, or an unexpected crash -- fail
the sweep.

Run it as ``python -m repro chaos`` or via :func:`run_chaos_sweep`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence

from typing import Any, Union

from ..apps.kernels import fig21_loop
from ..recovery import RecoveryPolicy
from ..schemes.registry import make_scheme, scheme_names
from ..sim import (DeadlockError, Machine, MachineConfig,
                   SimulationLimitError, ValidationError)
from .plan import FaultPlan, make_plan, plan_names

#: every outcome the degradation contract allows
ACCEPTABLE_OUTCOMES = ("ok", "deadlock-diagnosed", "limit-diagnosed",
                       "corruption-detected")


@dataclass
class ChaosOutcome:
    """Result of one (scheme, plan, seed) chaos run."""

    scheme: str
    plan: str
    seed: int
    outcome: str
    #: first line of the error / headline metric
    detail: str = ""
    makespan: Optional[int] = None
    fault_events: int = 0
    #: the blocking wait-for cycle, when the diagnosis found one
    cycle: Optional[List[str]] = None
    #: per-task blocked states from the hazard report
    blocked_tasks: Dict[str, str] = field(default_factory=dict)
    #: recovery-layer counters (empty unless recovery was enabled)
    recovery: Dict[str, int] = field(default_factory=dict)
    #: recovery actions attempted (populated from the hazard report on
    #: failed runs; successful runs keep only the counters)
    recovery_actions: List[str] = field(default_factory=list)

    @property
    def acceptable(self) -> bool:
        return self.outcome in ACCEPTABLE_OUTCOMES

    @property
    def recovery_events(self) -> int:
        """Total recovery actions taken (cycle sums excluded)."""
        return sum(count for key, count in self.recovery.items()
                   if not key.endswith("_cycles"))

    def to_json(self) -> Dict[str, Any]:
        """JSON-native dict for ``python -m repro chaos --json``."""
        return {
            "scheme": self.scheme,
            "plan": self.plan,
            "seed": self.seed,
            "outcome": self.outcome,
            "detail": self.detail,
            "makespan": self.makespan,
            "fault_events": self.fault_events,
            "cycle": list(self.cycle) if self.cycle else None,
            "blocked_tasks": dict(self.blocked_tasks),
            "recovery": dict(self.recovery),
            "recovery_actions": list(self.recovery_actions),
        }


def _hazard_outcome(scheme: str, plan: FaultPlan, kind: str,
                    err) -> ChaosOutcome:
    report = err.report
    diagnosed = report is not None and bool(report.tasks)
    return ChaosOutcome(
        scheme=scheme, plan=plan.name or "custom", seed=plan.seed,
        outcome=f"{kind}-diagnosed" if diagnosed else f"{kind}-undiagnosed",
        detail=str(err).splitlines()[0],
        cycle=report.cycle if report is not None else None,
        blocked_tasks={diag.task: diag.state
                       for diag in (report.blocked() if diagnosed else [])},
        recovery=dict(report.recovery) if report is not None else {},
        recovery_actions=(list(report.recovery_actions)
                          if report is not None else []))


def run_chaos_case(scheme_name: str, plan: FaultPlan, *,
                   n: int = 16, processors: int = 4,
                   max_cycles: int = 2_000_000,
                   stagnation_limit: int = 20_000,
                   wait_bound: Optional[int] = 100_000,
                   recover: Union[bool, RecoveryPolicy] = False,
                   loop=None) -> ChaosOutcome:
    """Run one scheme under one fault plan and classify the outcome.

    ``recover`` turns on the recovery layer: ``True`` uses the default
    :class:`~repro.recovery.RecoveryPolicy`, or pass a policy instance.
    With recovery, *recoverable* plans (lost broadcasts, dropped RMW
    commits, deterministic task crashes) must land on ``ok`` with the
    recovery counters showing what it cost; unrecoverable plans must
    still die diagnosed, with the attempted recovery actions enumerated
    in the hazard report.
    """
    loop = loop if loop is not None else fig21_loop(n=n, cost=8)
    scheme = make_scheme(scheme_name)
    instrumented = scheme.instrument(loop)
    if wait_bound is not None:
        instrumented.bound_waits(wait_bound)
    policy: Optional[RecoveryPolicy] = None
    if recover:
        policy = recover if isinstance(recover, RecoveryPolicy) \
            else RecoveryPolicy()
    machine = Machine(MachineConfig(
        processors=processors, fault_plan=plan, max_cycles=max_cycles,
        stagnation_limit=stagnation_limit, recovery=policy))
    label = plan.name or "custom"
    try:
        result = machine.run(instrumented)
    except DeadlockError as err:
        return _hazard_outcome(scheme_name, plan, "deadlock", err)
    except SimulationLimitError as err:
        return _hazard_outcome(scheme_name, plan, "limit", err)
    recovery_counters = dict(result.recovery)
    try:
        instrumented.validate(result)
    except ValidationError as err:
        return ChaosOutcome(
            scheme=scheme_name, plan=label, seed=plan.seed,
            outcome="corruption-detected",
            detail=str(err).splitlines()[0],
            makespan=result.makespan, fault_events=result.fault_events,
            recovery=recovery_counters)
    return ChaosOutcome(
        scheme=scheme_name, plan=label, seed=plan.seed, outcome="ok",
        detail=f"makespan {result.makespan}",
        makespan=result.makespan, fault_events=result.fault_events,
        recovery=recovery_counters)


def _sweep_case(item) -> ChaosOutcome:
    """Pool worker: run one (scheme, plan name, seed, kwargs) cell."""
    scheme, plan_name, seed, case_kwargs = item
    return run_chaos_case(scheme, make_plan(plan_name, seed=seed),
                          **case_kwargs)


def run_chaos_sweep(schemes: Optional[Sequence[str]] = None,
                    plans: Optional[Sequence[str]] = None,
                    seeds: Iterable[int] = range(3),
                    procs: int = 1,
                    **case_kwargs) -> List[ChaosOutcome]:
    """Sweep seeds x schemes x fault plans; return every outcome.

    ``schemes`` defaults to all four registered schemes, ``plans`` to
    every named preset.  Keyword arguments pass through to
    :func:`run_chaos_case`.  ``procs`` fans the independent cells over
    a process pool (cells are seeded and deterministic, so the outcome
    list is identical at any worker count); with ``procs > 1`` the
    keyword arguments must be picklable -- in particular, pass a
    prebuilt ``loop`` only when running serially.
    """
    from ..lab.parallel import parallel_map

    schemes = list(schemes) if schemes else scheme_names()
    plans = list(plans) if plans else plan_names()
    cells = [(scheme, plan_name, seed, case_kwargs)
             for scheme in schemes
             for plan_name in plans
             for seed in seeds]
    return parallel_map(_sweep_case, cells, procs=procs)


def summarize(outcomes: Sequence[ChaosOutcome]) -> Dict[str, int]:
    """Outcome histogram of a sweep."""
    histogram: Dict[str, int] = {}
    for outcome in outcomes:
        histogram[outcome.outcome] = histogram.get(outcome.outcome, 0) + 1
    return histogram
