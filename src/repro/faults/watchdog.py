"""Hazard diagnosis: turn a stuck simulation into a structured report.

When the engine detects that live tasks remain but progress has stopped
(event queue drained, cycle budget exhausted, stagnation, or an expired
bounded wait), it calls :func:`diagnose` with itself.  The watchdog
walks every spawned task, classifies its blocking state, builds the
wait-for graph (waiter -> last known writer of the awaited variable) and
extracts the blocking cycle.  The resulting :class:`HazardReport` rides
on the raised :class:`~repro.sim.engine.DeadlockError` /
:class:`~repro.sim.engine.SimulationLimitError`, so callers get per-task
state -- which variable, which predicate, who owns it, how long parked
-- instead of a flat string.

This module deliberately imports nothing from :mod:`repro.sim`: it
duck-types the engine (``_tasks``, ``_waiters``, ``var_writers``,
``fabric``), which keeps the import graph acyclic (the engine imports
the watchdog lazily at diagnosis time).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple


@dataclass
class TaskDiagnosis:
    """One live (or crashed) task's blocking state at diagnosis time."""

    task: str
    #: "parked" | "polling" | "stalled" | "crashed" | "running"
    state: str
    #: synchronization variable involved, when known
    var: Optional[int]
    #: human-readable reason (a WaitUntil reason, an op description)
    reason: str
    #: cycle at which the task entered this state
    since: Optional[int]
    #: cycles spent in this state up to the diagnosis
    blocked_for: int
    #: task that last wrote ``var`` (the presumed owner of the PC/SC)
    waits_on: Optional[str]
    #: committed value of ``var`` at diagnosis time
    value: Any = None

    def describe(self) -> str:
        bits = [f"{self.task}: {self.state}"]
        if self.var is not None:
            bits.append(f"on var {self.var}")
        if self.blocked_for:
            bits.append(f"for {self.blocked_for} cycles")
        if self.reason:
            bits.append(f"({self.reason})")
        if self.var is not None:
            owner = self.waits_on or "<never written>"
            bits.append(f"[last writer: {owner}, value: {self.value!r}]")
        return " ".join(bits)


class WaitForGraph:
    """Directed graph: an edge A -> B means A waits on a variable B owns.

    "Owns" is the last-writer heuristic: the engine records which task
    most recently wrote or updated each synchronization variable, which
    for single-writer protocols (process counters, statement counters)
    is exactly the owner.  Variables nobody has written map to the
    pseudo-node ``"<never written>"``.
    """

    def __init__(self) -> None:
        self._edges: Dict[str, Dict[str, Tuple[int, str]]] = {}

    def add_edge(self, waiter: str, owner: str, var: Optional[int],
                 reason: str) -> None:
        self._edges.setdefault(waiter, {})[owner] = (
            -1 if var is None else var, reason)

    def edges(self) -> List[Tuple[str, str, int, str]]:
        """All (waiter, owner, var, reason) edges, deterministic order."""
        return [(waiter, owner, var, reason)
                for waiter, targets in sorted(self._edges.items())
                for owner, (var, reason) in sorted(targets.items())]

    def find_cycle(self) -> Optional[List[str]]:
        """A blocking cycle as a task list (first node not repeated).

        Iterative colored DFS over the wait-for edges; returns the first
        cycle found in deterministic order, or ``None``.
        """
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[str, int] = {}
        for root in sorted(self._edges):
            if color.get(root, WHITE) != WHITE:
                continue
            path: List[str] = []
            stack: List[Tuple[str, bool]] = [(root, False)]
            while stack:
                node, leaving = stack.pop()
                if leaving:
                    color[node] = BLACK
                    path.pop()
                    continue
                if color.get(node, WHITE) == GRAY:
                    continue
                color[node] = GRAY
                path.append(node)
                stack.append((node, True))
                for succ in sorted(self._edges.get(node, {})):
                    state = color.get(succ, WHITE)
                    if state == GRAY and succ in path:
                        return path[path.index(succ):]
                    if state == WHITE:
                        stack.append((succ, False))
        return None


@dataclass
class HazardReport:
    """Structured diagnosis of a stuck (or over-budget) simulation."""

    now: int
    live_tasks: int
    tasks: List[TaskDiagnosis]
    graph: WaitForGraph
    #: the blocking wait-for cycle, when one exists
    cycle: Optional[List[str]]
    #: loop iterations the scheduler never handed out (set by Machine)
    unclaimed_iterations: Optional[int] = None
    #: task names killed by fault injection
    crashed: List[str] = field(default_factory=list)
    #: recovery actions attempted before the run died (chronological)
    recovery_actions: List[str] = field(default_factory=list)
    #: recovery-layer counters at diagnosis time (empty: no recovery ran)
    recovery: Dict[str, int] = field(default_factory=dict)

    def blocked(self) -> List[TaskDiagnosis]:
        """Diagnoses of tasks that are not plainly runnable."""
        return [diag for diag in self.tasks if diag.state != "running"]

    def by_task(self) -> Dict[str, TaskDiagnosis]:
        return {diag.task: diag for diag in self.tasks}

    def format(self) -> str:
        """Multi-line human-readable rendering (used in error messages)."""
        lines = [f"hazard diagnosis at cycle {self.now}: "
                 f"{self.live_tasks} live task(s), "
                 f"{len(self.blocked())} blocked"]
        if self.cycle:
            ring = " -> ".join(self.cycle + [self.cycle[0]])
            lines.append(f"  blocking wait-for cycle: {ring}")
        for diag in self.tasks:
            lines.append(f"  {diag.describe()}")
        if self.crashed:
            lines.append(f"  crashed by fault injection: "
                         f"{', '.join(self.crashed)}")
        if self.unclaimed_iterations:
            lines.append(f"  loop iterations never claimed: "
                         f"{self.unclaimed_iterations}")
        if self.recovery_actions:
            lines.append("  recovery actions attempted:")
            for action in self.recovery_actions:
                lines.append(f"    - {action}")
        if self.recovery:
            active = {key: count for key, count in self.recovery.items()
                      if count}
            if active:
                lines.append(f"  recovery counters: {active}")
        return "\n".join(lines)

    def to_json(self) -> Dict[str, Any]:
        """JSON-native rendering of the whole report.

        Values of synchronization variables may be arbitrary Python
        objects (e.g. PC tuples), so they are rendered with ``repr``;
        everything else round-trips losslessly through
        :meth:`from_json`.
        """
        return {
            "now": self.now,
            "live_tasks": self.live_tasks,
            "tasks": [{
                "task": diag.task,
                "state": diag.state,
                "var": diag.var,
                "reason": diag.reason,
                "since": diag.since,
                "blocked_for": diag.blocked_for,
                "waits_on": diag.waits_on,
                "value": (diag.value if diag.value is None
                          or isinstance(diag.value, str)
                          else repr(diag.value)),
            } for diag in self.tasks],
            "edges": [list(edge) for edge in self.graph.edges()],
            "cycle": list(self.cycle) if self.cycle else None,
            "unclaimed_iterations": self.unclaimed_iterations,
            "crashed": list(self.crashed),
            "recovery_actions": list(self.recovery_actions),
            "recovery": dict(self.recovery),
        }

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "HazardReport":
        """Rebuild a report from :meth:`to_json` output."""
        graph = WaitForGraph()
        for waiter, owner, var, reason in payload.get("edges", []):
            graph.add_edge(waiter, owner,
                           None if var == -1 else var, reason)
        tasks = [TaskDiagnosis(
            task=entry["task"], state=entry["state"], var=entry["var"],
            reason=entry["reason"], since=entry["since"],
            blocked_for=entry["blocked_for"], waits_on=entry["waits_on"],
            value=entry["value"],
        ) for entry in payload.get("tasks", [])]
        cycle = payload.get("cycle")
        return cls(
            now=payload["now"],
            live_tasks=payload["live_tasks"],
            tasks=tasks,
            graph=graph,
            cycle=list(cycle) if cycle else None,
            unclaimed_iterations=payload.get("unclaimed_iterations"),
            crashed=list(payload.get("crashed", [])),
            recovery_actions=list(payload.get("recovery_actions", [])),
            recovery=dict(payload.get("recovery", {})))


def diagnose(engine) -> HazardReport:
    """Build a :class:`HazardReport` from a (possibly stuck) engine."""
    now = engine.now
    graph = WaitForGraph()
    diagnoses: List[TaskDiagnosis] = []
    for task in getattr(engine, "_tasks", []):
        crashed = getattr(task, "crashed", False)
        if not task.alive and not crashed:
            continue  # completed normally
        name = task.stats.name
        wait_state = getattr(task, "wait_state", None)
        if wait_state is not None:
            state, var, reason, since = wait_state
        else:
            state, var, reason, since = (
                "running", None, "has a pending event", None)
        if crashed:
            state = "crashed"
        owner = engine.var_writers.get(var) if var is not None else None
        value = None
        if var is not None:
            try:
                value = engine.fabric.value(var)
            except Exception:
                value = None
        blocked_for = now - since if since is not None else 0
        diagnoses.append(TaskDiagnosis(
            task=name, state=state, var=var, reason=reason, since=since,
            blocked_for=blocked_for, waits_on=owner, value=value))
        if state in ("parked", "polling"):
            graph.add_edge(name, owner or "<never written>", var, reason)
    recovery = getattr(engine, "recovery", None)
    return HazardReport(
        now=now,
        live_tasks=getattr(engine, "_live_tasks", len(diagnoses)),
        tasks=diagnoses,
        graph=graph,
        cycle=graph.find_cycle(),
        crashed=list(getattr(engine, "crashed", [])),
        recovery_actions=(list(recovery.actions)
                          if recovery is not None else []),
        recovery=(dict(recovery.counters)
                  if recovery is not None else {}))
