"""Fault injection and hazard diagnosis for the simulated multiprocessor.

The paper argues its process-oriented scheme enforces ordered dependences
under *any* interleaving.  This package stresses that claim beyond the
happy path: a seeded, deterministic :class:`FaultPlan` perturbs the
hardware substrate (stalled and crashing processors, lost and delayed
synchronization broadcasts, memory-latency jitter, dropped or duplicated
read-modify-write commits), and a watchdog turns the resulting hangs into
*structured* diagnoses -- a per-task state table plus the blocking
wait-for cycle -- instead of a flat error string.

Three layers:

``repro.faults.plan``
    :class:`FaultPlan` -- the declarative, hashable description of which
    faults to inject, plus named presets (``make_plan``).
``repro.faults.injector``
    :class:`FaultInjector` -- the runtime that draws every fault decision
    from one ``random.Random(seed)`` stream.  The engine is
    deterministic, so draws happen in a reproducible order and a failing
    run replays byte-for-byte.
``repro.faults.watchdog``
    :func:`diagnose` -- builds :class:`TaskDiagnosis` records and the
    :class:`WaitForGraph` from a (possibly stuck) engine and extracts the
    blocking cycle into a :class:`HazardReport`.

The chaos harness (:mod:`repro.faults.chaos`, also ``python -m repro
chaos``) sweeps plans x schemes x seeds and asserts every run either
validates against sequential semantics or fails with a diagnosed
structured error -- never a hang, never silent corruption.  It is
imported on demand (not here) because it depends on the scheme registry.

With no plan installed (the default) none of the hooks draw randomness or
schedule events: simulations replay the exact pre-fault event sequence.
"""

from .injector import FaultInjector
from .plan import FaultPlan, make_plan, plan_names
from .watchdog import HazardReport, TaskDiagnosis, WaitForGraph, diagnose

__all__ = [
    "FaultInjector", "FaultPlan", "HazardReport", "TaskDiagnosis",
    "WaitForGraph", "diagnose", "make_plan", "plan_names",
]
