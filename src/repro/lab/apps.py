"""Named application registry: the loops a sweep can mention by name.

A sweep cell must be serializable (it is hashed into the cache key and
shipped to pool workers), so it names its workload as a string plus a
flat parameter dict rather than holding a live :class:`Loop`.  This
registry maps those names to the builder functions in
:mod:`repro.apps`; every builder takes keyword parameters with ints (or
None) as values, so ``(name, params)`` round-trips through JSON
unchanged.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Mapping

from ..apps.kernels import (example2_loop, example3_loop, fig21_loop,
                            fig21_loop_with_delay, fold_chain_loop,
                            relaxation_loop, triple_nested_loop)
from ..apps.livermore import (adi_sweep, first_difference, hydro_fragment,
                              prefix_partials, state_fragment, tridiagonal)
from ..depend.model import Loop

#: name -> loop builder; parameters pass through as keyword arguments
APP_BUILDERS: Dict[str, Callable[..., Loop]] = {
    "fig2.1": fig21_loop,
    "fig2.1-delay": fig21_loop_with_delay,
    "example2": example2_loop,
    "example3": example3_loop,
    "fold-chain": fold_chain_loop,
    "relaxation-loop": relaxation_loop,
    "triple-nested": triple_nested_loop,
    "hydro": hydro_fragment,
    "tridiag": tridiagonal,
    "state": state_fragment,
    "adi": adi_sweep,
    "first-diff": first_difference,
    "prefix": prefix_partials,
}


def app_names() -> List[str]:
    """Every registered application name."""
    return sorted(APP_BUILDERS)


def build_app(name: str, params: Mapping[str, object]) -> Loop:
    """Instantiate the named application with the cell's parameters."""
    try:
        builder = APP_BUILDERS[name]
    except KeyError:
        raise ValueError(
            f"unknown app {name!r}; known: {app_names()}") from None
    return builder(**params)
