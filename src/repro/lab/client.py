"""The service client: talk to a ``python -m repro serve`` daemon.

:class:`ServiceClient` speaks the :class:`~repro.lab.service
.ServiceServer` protocol -- one JSON object per line over a local unix
socket -- and decodes event streams back into typed
:mod:`~repro.lab.events` objects, so a remote ``watch`` and an
in-process :meth:`~repro.lab.service.SweepService.subscribe` hand the
caller the same values.  Every request uses its own short-lived
connection except :meth:`watch`, which holds one open for the stream.
"""

from __future__ import annotations

import json
import pathlib
import socket as socket_module
import time
from typing import Any, Dict, Iterator, List, Optional, Union

from .events import SweepEvent, event_from_json
from .service import DEFAULT_SOCKET, PROTOCOL_VERSION
from .spec import SweepSpec

#: default per-request socket timeout, seconds
DEFAULT_TIMEOUT = 30.0


class ServiceError(RuntimeError):
    """The server refused a request, broke protocol, or is unreachable."""


class ServiceClient:
    """A thin, connection-per-request client for the sweep daemon."""

    def __init__(self,
                 socket_path: Union[str, pathlib.Path] = DEFAULT_SOCKET,
                 timeout: Optional[float] = DEFAULT_TIMEOUT) -> None:
        self.path = pathlib.Path(socket_path)
        self.timeout = timeout

    # -- plumbing --------------------------------------------------------

    def _connect(self,
                 timeout: Optional[float]) -> socket_module.socket:
        sock = socket_module.socket(socket_module.AF_UNIX,
                                    socket_module.SOCK_STREAM)
        sock.settimeout(timeout)
        try:
            sock.connect(str(self.path))
        except OSError as err:
            sock.close()
            raise ServiceError(
                f"no sweep service at {self.path} ({err}); start one "
                "with: python -m repro serve") from None
        return sock

    @staticmethod
    def _decode_reply(line: str) -> Dict[str, Any]:
        try:
            reply = json.loads(line)
        except ValueError as err:
            raise ServiceError(f"undecodable server reply: {err}") \
                from None
        if not isinstance(reply, dict):
            raise ServiceError("server reply is not an object")
        protocol = reply.get("protocol")
        if protocol is not None and protocol != PROTOCOL_VERSION:
            raise ServiceError(
                f"server speaks protocol {protocol}, this client "
                f"speaks {PROTOCOL_VERSION}")
        if not reply.get("ok"):
            raise ServiceError(reply.get("error") or "request refused")
        return reply

    def request(self, payload: Dict[str, Any], *,
                timeout: Optional[float] = ...) -> Dict[str, Any]:
        """One request, one reply, one connection."""
        if timeout is ...:
            timeout = self.timeout
        sock = self._connect(timeout)
        try:
            with sock.makefile("rw", encoding="utf-8",
                               newline="\n") as stream:
                stream.write(json.dumps(payload, sort_keys=True) + "\n")
                stream.flush()
                line = stream.readline()
        except OSError as err:
            raise ServiceError(f"request failed: {err}") from None
        finally:
            sock.close()
        if not line:
            raise ServiceError("server closed the connection mid-request")
        return self._decode_reply(line)

    # -- operations ------------------------------------------------------

    def ping(self) -> Dict[str, Any]:
        return self.request({"op": "ping"})

    def wait_ready(self, timeout: float = 10.0) -> Dict[str, Any]:
        """Poll until the daemon answers ``ping`` (it may still be
        binding its socket when the client starts)."""
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.ping()
            except ServiceError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)

    def submit(self, spec: Union[SweepSpec, Dict[str, Any], str]) -> str:
        """Submit a spec (object, JSON dict, or preset name); returns
        the assigned job id."""
        payload = spec.to_json() if isinstance(spec, SweepSpec) else spec
        return str(self.request({"op": "submit",
                                 "spec": payload})["job"])

    def status(self, job: Optional[str] = None) -> List[Dict[str, Any]]:
        return list(self.request({"op": "status", "job": job})["jobs"])

    def cancel(self, job: str) -> bool:
        return bool(self.request({"op": "cancel", "job": job})["cancelled"])

    def result(self, job: str,
               timeout: Optional[float] = None) -> Dict[str, Any]:
        """Block until ``job`` finishes; its final status row."""
        # the socket deadline must outlive the job wait
        sock_timeout = timeout + 5.0 if timeout is not None else None
        return self.request({"op": "result", "job": job,
                             "timeout": timeout}, timeout=sock_timeout)

    def watch(self, job: Optional[str] = None, *,
              replay: bool = True) -> Iterator[SweepEvent]:
        """Stream typed events: one job's (ends after its ``job-done``)
        or the global feed (ends when the server goes away)."""
        sock = self._connect(None)
        try:
            with sock.makefile("rw", encoding="utf-8",
                               newline="\n") as stream:
                stream.write(json.dumps(
                    {"op": "watch", "job": job, "replay": replay},
                    sort_keys=True) + "\n")
                stream.flush()
                self._decode_reply(stream.readline() or "")
                for line in stream:
                    line = line.strip()
                    if not line:
                        continue
                    data = json.loads(line)
                    if "event" not in data:
                        # the trailing summary reply ends the stream
                        return
                    yield event_from_json(data)
        finally:
            sock.close()


__all__ = ["DEFAULT_TIMEOUT", "ServiceClient", "ServiceError"]
