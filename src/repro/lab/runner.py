"""The sweep engine: expand a spec, consult the cache, fan out, merge.

:func:`execute_grid` is the one grid-execution core behind both
entry points:

* :func:`run_sweep` -- the batch API: a thin synchronous wrapper that
  submits the grid to a one-shot, inline
  :class:`~repro.lab.service.SweepService` and waits for its report;
* :class:`~repro.lab.service.SweepService` -- the server API: many
  concurrent jobs run the same core against one shared supervised
  worker pool.

The contract, identical in both modes:

* **incremental** -- each cell is looked up in the content-addressed
  :class:`~repro.lab.cache.ResultCache` first; only cells whose inputs
  (source tree or config) changed are re-simulated;
* **parallel** -- cache misses fan out across supervised worker
  processes (simulations are deterministic and share nothing, so
  workers are safe);
* **supervised** -- the executor journals each record as it lands,
  kills and re-dispatches timed-out or crashed workers with bounded
  backoff-retry, and quarantines cells that exhaust the budget instead
  of aborting the grid; an interrupted sweep re-enters via
  ``resume=True`` recomputing nothing already paid for;
* **observable** -- progress streams as typed, schema-versioned
  :mod:`~repro.lab.events` (``cell-start`` / ``cell-done`` /
  ``cell-shared`` / ``cell-failed``), the same stream service
  subscribers consume;
* **deterministic** -- records come back in grid order and contain no
  environment facts, so the merged ``BENCH_sweeps.json`` is
  byte-identical whether the sweep ran serially, on 8 workers, from
  cache, or through a server shared by N clients.
"""

from __future__ import annotations

import dataclasses
import os
import pathlib
import threading
import time
import warnings
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple, Union)

from ..compiler.pipeline import compile_loop
from ..faults.plan import make_plan
from ..recovery import RecoveryPolicy
from ..schemes.registry import make_scheme
from ..sim import (DeadlockError, Machine, MachineConfig,
                   SimulationLimitError, ValidationError)
from .apps import build_app
from .cache import DEFAULT_CACHE_DIR, ResultCache, SweepJournal
from .chaos import ExecutorChaos
from .events import (CellDone, CellFailed, CellShared, CellStarted,
                     SweepEvent, adapt_progress_callback)
from .executor import (DEFAULT_MAX_RETRIES, CellFailure, PoolSupervisor,
                       SupervisedExecutor, backoff_delay)
from .record import canonical_dumps, make_record, merge_records
from .spec import AUTO_SCHEME, SweepCell, SweepSpec
from .store import CellClaims, ClaimPolicy, reap_orphan_tmps

#: engine guards applied to fault-plan cells (mirrors the chaos harness:
#: an injected hazard must surface as a diagnosed error, not a hang)
FAULT_MAX_CYCLES = 2_000_000
FAULT_STAGNATION_LIMIT = 20_000

#: a worker result larger than this is rejected (and the attempt
#: retried): real records are kilobytes, so anything near the limit is
#: a corrupted or runaway payload, not a measurement
RESULT_BYTE_LIMIT = 8 * 2 ** 20


class IncompleteSweepError(RuntimeError):
    """The executor returned neither a record nor a failure for cells.

    Names the missing cell keys outright -- the supervised replacement
    for the old silent ``zip(todo, fresh)`` merge, which would have
    misaligned records on a length mismatch instead of failing loudly.
    """

    def __init__(self, missing_keys: Sequence[str]) -> None:
        self.missing_keys = list(missing_keys)
        preview = ", ".join(self.missing_keys[:4])
        if len(self.missing_keys) > 4:
            preview += f", ... ({len(self.missing_keys)} total)"
        super().__init__(
            f"sweep lost {len(self.missing_keys)} cell(s) without a "
            f"record or a quarantine entry: {preview}")


class JobCancelled(RuntimeError):
    """A sweep job was cancelled (client cancel or server drain).

    Landed cells are already cached and journaled; only unfinished
    cells were abandoned, so re-running the same grid recomputes
    nothing already paid for.
    """


def _elimination_info(config: Mapping[str, Any]) -> Optional[Dict[str, Any]]:
    """The cell's redundant-sync column: optimizer counts, as metrics.

    Analysis only -- the simulated run keeps the scheme's full
    placement, so every other metric stays comparable with and without
    the column.  The column is computed by the cost-model-guided
    optimizer (:mod:`repro.analyze.optimize`); the dict keeps the
    eliminator-era keys (``sync_arcs``, ``sync_arcs_after``,
    ``sync_ops_before``, ``sync_ops_after``, ``dropped``) so existing
    record consumers keep working, and adds the optimizer's predicted
    cycle counts and chosen configuration.  Imported lazily:
    :mod:`repro.analyze` imports ``lab.apps``, so a module-level import
    here would be circular.
    """
    if not config.get("eliminate") or config["scheme"] == AUTO_SCHEME:
        return None
    from ..analyze import AnalysisError
    from ..analyze.optimize import optimize
    loop = build_app(config["app"], config["app_params"])
    try:
        report = optimize(loop, make_scheme(config["scheme"]),
                          app=config["app"])
    except (AnalysisError, NotImplementedError, ValueError) as err:
        return {"supported": False,
                "reason": str(err).splitlines()[0]}
    return {
        "supported": True,
        # eliminator-compatible keys (the original column shape)
        "sync_arcs": len(report.kept) + len(report.dropped),
        "sync_arcs_after": len(report.kept),
        "sync_ops_before": report.sync_ops_before,
        "sync_ops_after": report.sync_ops_after,
        "dropped": [f"{arc.src_sid}->{arc.dst_sid} (d={arc.distance})"
                    for arc in report.dropped],
        # optimizer extras
        "predicted_cycles_before": report.predicted_cycles_before,
        "predicted_cycles_after": report.predicted_cycles_after,
        "chosen_scheme": report.chosen_scheme,
        "chosen_fold": report.chosen_fold,
        "beats_baseline": report.beats_baseline,
    }


def _machine_for(config: Mapping[str, Any]) -> Machine:
    plan_name = config.get("plan")
    plan = (make_plan(plan_name, seed=config["seed"])
            if plan_name else None)
    policy = RecoveryPolicy() if (plan is not None
                                  and config.get("recover")) else None
    kwargs: Dict[str, Any] = {}
    if plan is not None:
        kwargs.update(fault_plan=plan, recovery=policy,
                      max_cycles=FAULT_MAX_CYCLES,
                      stagnation_limit=FAULT_STAGNATION_LIMIT)
    return Machine(MachineConfig(
        processors=config["processors"], schedule=config["schedule"],
        record_trace=bool(config["validate"]), **kwargs))


def execute_cell(config: Mapping[str, Any],
                 key: Optional[str] = None) -> Dict[str, Any]:
    """Simulate one cell config and return its versioned record.

    Module-level (picklable) so pool workers can run it directly.  The
    outcome taxonomy matches the chaos harness: ``ok``, ``serial``
    (compiler declined to parallelize), ``deadlock-diagnosed``,
    ``limit-diagnosed``, ``corruption-detected``.
    """
    key = key or SweepCell(app=config["app"],
                           app_params=tuple(sorted(
                               config["app_params"].items())),
                           scheme=config["scheme"],
                           processors=config["processors"],
                           schedule=config["schedule"],
                           seed=config["seed"],
                           wait_bound=config["wait_bound"],
                           validate=config["validate"],
                           plan=config.get("plan"),
                           recover=bool(config.get("recover")),
                           eliminate=bool(config.get("eliminate"))).key
    loop = build_app(config["app"], config["app_params"])
    serial_cycles = loop.serial_cycles()
    elimination = _elimination_info(config)
    machine = _machine_for(config)
    compile_info: Optional[Dict[str, Any]] = None
    if config["scheme"] == AUTO_SCHEME:
        decision = compile_loop(loop, processors=config["processors"])
        compile_info = {
            "classification": decision.classification.label,
            "delay": (round(decision.delay.delay, 4)
                      if decision.delay is not None else None),
            "scheme": decision.chosen_scheme,
        }
        if not decision.runs_parallel:
            return make_record(key, config, outcome="serial",
                               serial_cycles=serial_cycles,
                               compile_info=compile_info,
                               elimination=elimination)
        instrumented = decision.instrumented
    else:
        instrumented = make_scheme(config["scheme"]).instrument(loop)
    if config["wait_bound"] is not None:
        instrumented.bound_waits(config["wait_bound"])
    try:
        result = machine.run(instrumented)
    except DeadlockError as err:
        return make_record(key, config, outcome="deadlock-diagnosed",
                           serial_cycles=serial_cycles,
                           compile_info=compile_info,
                           elimination=elimination,
                           error=str(err).splitlines()[0])
    except SimulationLimitError as err:
        return make_record(key, config, outcome="limit-diagnosed",
                           serial_cycles=serial_cycles,
                           compile_info=compile_info,
                           elimination=elimination,
                           error=str(err).splitlines()[0])
    if config["validate"]:
        try:
            instrumented.validate(result)
        except ValidationError as err:
            return make_record(key, config, outcome="corruption-detected",
                               result=result, serial_cycles=serial_cycles,
                               compile_info=compile_info,
                               elimination=elimination,
                               error=str(err).splitlines()[0])
    return make_record(key, config, outcome="ok", result=result,
                       serial_cycles=serial_cycles,
                       compile_info=compile_info,
                       elimination=elimination)


def _worker(item: Tuple[Dict[str, Any], str]) -> Dict[str, Any]:
    config, key = item
    return execute_cell(config, key)


@dataclass
class SweepReport:
    """What one :func:`run_sweep` call (or service job) produced."""

    spec_name: str
    records: List[Dict[str, Any]]
    hits: int
    misses: int
    procs: int
    json_path: Optional[pathlib.Path] = None
    #: extra per-report notes (e.g. cache fingerprint) for display
    notes: Dict[str, Any] = field(default_factory=dict)
    #: cells that exhausted their retry budget -- quarantined, never
    #: merged into the store, and a non-zero exit from the CLI
    failed: List[CellFailure] = field(default_factory=list)
    #: cell keys *this process* actually simulated (paid for); cells
    #: served by waiting on another writer's claim are not in here --
    #: the accounting behind "zero duplicated simulations"
    simulated_keys: List[str] = field(default_factory=list)

    @property
    def all_cached(self) -> bool:
        """True when every cell was served from the warm cache."""
        return self.misses == 0 and bool(self.records)

    @property
    def degraded(self) -> bool:
        """True when the sweep finished but quarantined cells."""
        return bool(self.failed)

    def metrics_by(self, *config_fields: str) -> Dict[Tuple, Dict]:
        """Index the records' metrics by the given config fields.

        Benchmarks use this to keep paper-shaped assertions terse::

            rows = report.metrics_by("scheme", "app_params.n")
            rows[("reference-based", 50)]["sync_vars"]

        A field may use dotted access into ``app_params``.
        """
        out: Dict[Tuple, Dict] = {}
        for record in self.records:
            parts: List[Any] = []
            for name in config_fields:
                if name.startswith("app_params."):
                    parts.append(record["config"]["app_params"].get(
                        name.split(".", 1)[1]))
                else:
                    parts.append(record["config"].get(name))
            out[tuple(parts)] = record["metrics"]
        return out


@dataclass(frozen=True)
class SweepOptions:
    """Every knob of one sweep, as a single immutable value.

    Collapses the keyword-argument pile :func:`run_sweep` had grown
    into one object that can be built once and shared between batch
    runs and a :class:`~repro.lab.service.SweepService` -- the same
    move :class:`repro.schemes.RunConfig` made for ``scheme.run``.
    Frozen so an options value can be shared without aliasing
    surprises; derive variants with :func:`dataclasses.replace`.
    """

    #: parallel worker processes for cold cells (1 = inline serial)
    procs: int = 1
    #: result cache directory; None disables caching entirely
    cache_dir: Optional[pathlib.Path] = DEFAULT_CACHE_DIR
    #: an explicit cache instance (overrides ``cache_dir``)
    cache: Optional[ResultCache] = None
    #: merge the run's records into this versioned store
    json_path: Optional[pathlib.Path] = None
    #: statically verify every (app, scheme) placement before simulating
    preflight: bool = False
    #: per-cell wall-clock budget; a cell running longer is killed and
    #: re-dispatched (counts against ``max_retries``)
    cell_timeout: Optional[float] = None
    #: extra attempts per cell after the first, with capped backoff
    max_retries: int = DEFAULT_MAX_RETRIES
    #: seeded orchestration-fault injection (testing/CI)
    chaos: Optional[ExecutorChaos] = None
    #: re-enter an interrupted sweep via cache/journal lookup
    resume: bool = False
    #: cooperate with concurrent sweeps via per-cell claim files
    single_flight: bool = True
    #: timing knobs for claim heartbeats, staleness, and waiting
    claim_policy: Optional[ClaimPolicy] = None
    #: preserve the journal trail of a fully-successful sweep
    keep_journal: bool = False
    #: typed progress hook; receives every :class:`SweepEvent`
    on_event: Optional[Callable[[SweepEvent], None]] = None


#: the deprecated run_sweep keyword spellings SweepOptions replaced
_LEGACY_SWEEP_KWARGS = frozenset(
    f.name for f in dataclasses.fields(SweepOptions)
    if f.name != "on_event") | {"on_progress"}


def _validate_worker_record(result: Any, key: str) -> Optional[str]:
    """Reject malformed, mis-keyed, or oversized worker results.

    Returning an error string makes the supervisor treat the landed
    value as a failed attempt (``bad-result``) and retry the cell --
    the guard that turns a corrupted or runaway payload into a
    re-simulation instead of a poisoned store.
    """
    if not isinstance(result, Mapping):
        return f"not a record: {type(result).__name__}"
    if result.get("key") != key:
        return f"record key {result.get('key')!r} != cell key {key!r}"
    try:
        size = len(canonical_dumps(dict(result)))
    except (TypeError, ValueError) as err:
        return f"unserializable record: {err}"
    if size > RESULT_BYTE_LIMIT:
        return f"record too large ({size} bytes > {RESULT_BYTE_LIMIT})"
    return None


def execute_grid(name: str, cells: Sequence[SweepCell],
                 options: Optional[SweepOptions] = None, *,
                 emit: Optional[Callable[[SweepEvent], None]] = None,
                 supervisor: Optional[PoolSupervisor] = None,
                 claims: Optional[CellClaims] = None,
                 cancel: Optional[threading.Event] = None,
                 group: str = "") -> SweepReport:
    """Execute one grid of cells: cache-check, supervise misses, merge.

    The shared core under :func:`run_sweep` and every
    :class:`~repro.lab.service.SweepService` job.  Batch callers leave
    the service hooks at their defaults; the service passes its own:

    ``emit``
        receives every :class:`SweepEvent` as it happens (defaults to
        ``options.on_event``);
    ``supervisor``
        a running :class:`~repro.lab.executor.PoolSupervisor` shared
        with other jobs (None: a private per-batch
        :class:`SupervisedExecutor`, with the serial inline fast path);
    ``claims``
        a shared :class:`CellClaims` instance (None: one is built and
        closed here when single-flight applies) -- sharing one instance
        is what extends single-flight dedup across a service's jobs:
        a cell in flight for one job is waited on, not recomputed, by
        every other;
    ``cancel``
        an event that aborts the job at the next safe point with
        :class:`JobCancelled`; landed cells stay cached and journaled;
    ``group``
        the job id used for fair interleaving in the shared pool.

    Cold cells are stored to the cache and journaled *as they land*
    (paid work survives any later crash); cells past
    ``options.cell_timeout`` are killed and re-dispatched; failed
    attempts retry with capped exponential backoff up to
    ``options.max_retries`` extra tries; budget-exhausted cells are
    quarantined into ``report.failed`` while the rest of the grid
    finishes.  ``options.resume`` (requires the cache) re-enters an
    interrupted sweep recomputing zero already-paid cells.
    """
    options = options or SweepOptions()
    if emit is None:
        emit = options.on_event
    cells = list(cells)
    notes: Dict[str, Any] = {}
    if options.preflight:
        # lazy: repro.analyze imports lab.apps, so importing it at
        # module level here would be circular
        from ..analyze import AnalysisError
        from ..analyze.gate import gate as analysis_gate
        apps = sorted({cell.app for cell in cells})
        schemes = sorted({cell.scheme for cell in cells
                          if cell.scheme != AUTO_SCHEME})
        if apps and schemes:
            verdict = analysis_gate(apps=apps, schemes=schemes)
            if not verdict.ok:
                raise AnalysisError(
                    "pre-flight analysis gate failed: "
                    + "; ".join(verdict.failing))
            notes["preflight"] = (f"{len(verdict.reports)} placement(s) "
                                  f"verified clean")
    cache = options.cache
    if cache is None and options.cache_dir is not None:
        cache = ResultCache(pathlib.Path(options.cache_dir))
    if options.resume and cache is None:
        raise ValueError("resume=True needs the result cache: completed "
                         "cells are recovered by cache/journal lookup")

    def send(event: SweepEvent) -> None:
        if emit is not None:
            emit(event)

    def bail() -> None:
        if cancel is not None and cancel.is_set():
            raise JobCancelled(
                f"job {group or name!r} cancelled; landed cells are "
                "cached and journaled, unfinished cells abandoned")

    bail()
    records: List[Optional[Dict[str, Any]]] = [None] * len(cells)
    #: (grid index, config, human key, cache key-or-None) per cold cell
    todo: List[Tuple[int, Dict[str, Any], str, Optional[str]]] = []
    cache_keys: List[str] = []
    for index, cell in enumerate(cells):
        config = cell.config()
        cache_key = None
        if cache is not None:
            cache_key = cache.key_for(config)
            cache_keys.append(cache_key)
            cached = cache.load(cache_key)
            if cached is not None:
                records[index] = cached
                send(CellShared(key=cell.key, via="cache", record=cached))
                continue
        todo.append((index, config, cell.key, cache_key))

    journal = (SweepJournal.for_keys(cache.root, cache_keys)
               if cache is not None else None)
    hits = len(cells) - len(todo)
    if journal is not None:
        if options.resume:
            notes["resumed"] = (f"{hits} completed cell(s) recovered "
                                f"from cache/journal, {len(todo)} left")
        else:
            # a fresh (non-resume) run starts a fresh trail
            journal.clear()

    claims_owned = False
    policy = options.claim_policy or ClaimPolicy()
    if cache is None or not options.single_flight:
        claims = None
    elif claims is None and todo:
        # a SIGKILLed predecessor's half-written tmp files are garbage
        # the moment its pid is gone; sweep startup is the natural
        # place to sweep them up
        reap_orphan_tmps(cache.root)
        claims = CellClaims(cache.root, policy)
        claims_owned = True

    simulated: List[str] = []
    failures: List[CellFailure] = []
    #: cache keys this call claimed; any still held on exit (cancel,
    #: interrupt) are released in the finally block so other writers
    #: never wait out the staleness horizon on an abandoned cell
    acquired: List[str] = []

    def journal_line(entry: Dict[str, Any]) -> None:
        if journal is not None:
            journal.append(entry)

    def serve_shared(index: int, key: str,
                     record: Dict[str, Any]) -> None:
        """Another writer paid for this cell; we just read its entry."""
        records[index] = record
        journal_line({"cell": key, "status": "shared",
                      "pid": os.getpid()})
        send(CellShared(key=key, via="concurrent", record=record))

    def run_batch(batch: List[Tuple[int, Dict[str, Any], str,
                                    Optional[str]]]) -> None:
        """Simulate one batch of claimed (or unclaimed) cold cells."""
        def on_landed(position: int, key: str,
                      record: Dict[str, Any]) -> None:
            index, config, _key, cache_key = batch[position]
            records[index] = record
            # journal as it lands: store first (the durable result),
            # then release the claim (waiters may now read), then the
            # trail line, then the caller's progress hook -- a crash
            # between any two steps loses bookkeeping, never paid work
            if cache is not None:
                cache.store(cache_key or cache.key_for(config), record)
            if claims is not None and cache_key is not None:
                claims.release(cache_key)
            journal_line({"cell": key, "status": "done",
                          "outcome": record.get("outcome"),
                          "pid": os.getpid(), "simulated": True})
            simulated.append(key)
            send(CellDone(key=key, outcome=record.get("outcome", "ok"),
                          record=record))

        def on_dispatch(_position: int, key: str, attempt: int) -> None:
            journal_line({"cell": key, "status": "start",
                          "attempt": attempt + 1, "pid": os.getpid()})
            send(CellStarted(key=key, attempt=attempt + 1))

        items = [(config, key) for _i, config, key, _ck in batch]
        keys = [key for _i, _config, key, _ck in batch]
        wire_dispatch = (on_dispatch
                         if journal is not None or emit is not None
                         else None)
        if supervisor is not None:
            outcome = supervisor.run_batch(
                items, keys=keys, group=group,
                on_result=on_landed, on_dispatch=wire_dispatch)
        else:
            executor = SupervisedExecutor(
                _worker, procs=options.procs,
                cell_timeout=options.cell_timeout,
                max_retries=options.max_retries, chaos=options.chaos,
                validate=_validate_worker_record)
            outcome = executor.run(items, keys=keys,
                                   on_result=on_landed,
                                   on_dispatch=wire_dispatch)
        if outcome.cancelled:
            raise JobCancelled(
                f"job {group or name!r} cancelled mid-batch; landed "
                "cells are cached and journaled")
        for failure in outcome.failures:
            failures.append(failure)
            journal_line({"cell": failure.key, "status": "failed",
                          "reason": failure.reason,
                          "attempts": failure.attempts,
                          "detail": failure.detail, "pid": os.getpid()})
            send(CellFailed(key=failure.key, reason=failure.reason,
                            attempts=failure.attempts,
                            detail=failure.detail))
            # a quarantined cell must not stay claimed: other writers
            # would wait out the full staleness horizon for a cell
            # this process has already given up on
            if claims is not None:
                position = next(i for i, item in enumerate(batch)
                                if item[2] == failure.key)
                cache_key = batch[position][3]
                if cache_key is not None:
                    claims.release(cache_key)
        notes["retries"] = notes.get("retries", 0) + outcome.retries
        notes["respawns"] = notes.get("respawns", 0) + outcome.respawns

    try:
        mine: List[Tuple[int, Dict[str, Any], str, Optional[str]]] = []
        theirs: List[Tuple[int, Dict[str, Any], str, Optional[str]]] = []
        shared = 0
        if claims is not None:
            for item in todo:
                bail()
                index, _config, key, cache_key = item
                if not claims.acquire(cache_key):
                    theirs.append(item)
                    continue
                acquired.append(cache_key)
                # double-check under the claim: another writer may have
                # landed the entry between our cache miss and the claim
                record = cache.load(cache_key, count=False)
                if record is not None:
                    claims.release(cache_key)
                    serve_shared(index, key, record)
                    shared += 1
                else:
                    mine.append(item)
        else:
            mine = list(todo)

        if mine:
            bail()
            run_batch(mine)

        takeovers: List[Tuple[int, Dict[str, Any], str,
                              Optional[str]]] = []
        forced = 0
        if theirs:
            # single-flight wait: another job or sweep owns these
            # cells.  Poll (bounded, with backoff) for either its
            # landed entry or a stale claim we can take over; past the
            # wait budget we recompute rather than hang -- duplicated
            # work degrades gracefully, a stuck sweep does not.
            pending = list(theirs)
            deadline = time.monotonic() + policy.wait_timeout
            spin = 0
            while pending:
                bail()
                still: List[Tuple[int, Dict[str, Any], str,
                                  Optional[str]]] = []
                for item in pending:
                    index, _config, key, cache_key = item
                    record = cache.load(cache_key, count=False)
                    if record is not None:
                        serve_shared(index, key, record)
                        shared += 1
                        continue
                    if claims.acquire(cache_key):
                        acquired.append(cache_key)
                        record = cache.load(cache_key, count=False)
                        if record is not None:
                            claims.release(cache_key)
                            serve_shared(index, key, record)
                            shared += 1
                        else:
                            takeovers.append(item)
                        continue
                    still.append(item)
                pending = still
                if not pending:
                    break
                if time.monotonic() >= deadline:
                    forced = len(pending)
                    takeovers.extend(pending)
                    pending = []
                    break
                spin += 1
                time.sleep(backoff_delay(spin, policy.poll_base,
                                         policy.poll_cap))
        if takeovers:
            bail()
            run_batch(takeovers)
    finally:
        if claims is not None:
            # releasing an already-released key is a no-op, so simply
            # drop everything this call ever claimed
            for cache_key in acquired:
                claims.release(cache_key)
            if claims_owned:
                claims.close()

    paid = len(mine) + len(takeovers)
    if shared:
        notes["shared"] = shared
    if takeovers:
        notes["takeovers"] = len(takeovers) - forced
    if forced:
        notes["forced"] = forced
    for count_key in ("retries", "respawns", "takeovers"):
        if not notes.get(count_key):
            notes.pop(count_key, None)

    failed_keys = {failure.key for failure in failures}
    missing = [key for index, _config, key, _ck in todo
               if records[index] is None and key not in failed_keys]
    if missing:
        raise IncompleteSweepError(missing)

    if journal is not None and not failures and not options.keep_journal:
        journal.clear()

    done = [record for record in records if record is not None]
    report = SweepReport(
        spec_name=name, records=done, hits=hits + shared,
        misses=paid,
        procs=options.procs, json_path=options.json_path,
        notes=dict(notes, **({"fingerprint": cache.fingerprint[:12]}
                             if cache else {})),
        failed=failures, simulated_keys=simulated)
    if options.json_path is not None:
        merge_records(pathlib.Path(options.json_path), done)
    return report


def run_sweep(spec: Union[SweepSpec, Sequence[SweepCell]],
              options: Optional[SweepOptions] = None,
              **legacy: Any) -> SweepReport:
    """Run a sweep synchronously: the batch front end of the service.

    The sweep is described by a single :class:`SweepOptions`::

        run_sweep(spec, options=SweepOptions(procs=8, resume=True))

    and executes as a one-shot, inline
    :class:`~repro.lab.service.SweepService` job -- batch and server
    modes share one code path (:func:`execute_grid`), so everything
    documented there (supervision, retry, quarantine, single-flight,
    resume, byte-identical merged stores) applies verbatim.

    The pre-options keyword arguments (``procs``, ``cache_dir``,
    ``cache``, ``json_path``, ``preflight``, ``cell_timeout``,
    ``max_retries``, ``chaos``, ``resume``, ``single_flight``,
    ``claim_policy``, ``keep_journal``, ``on_progress``) still work but
    are deprecated: they emit a :class:`DeprecationWarning` and fold
    into an equivalent options value, so both spellings return
    identical reports.  The dict-style ``on_progress(key, record)``
    hook is additionally adapted onto the typed event stream via
    :func:`repro.lab.events.adapt_progress_callback`.
    """
    if legacy:
        unknown = set(legacy) - _LEGACY_SWEEP_KWARGS
        if unknown:
            raise TypeError(f"run_sweep() got unexpected keyword "
                            f"arguments {sorted(unknown)}")
        if options is not None:
            raise TypeError(
                "pass either options= or the deprecated individual "
                "kwargs, not both")
        warnings.warn(
            "run_sweep(spec, procs=..., cache_dir=..., ...) is "
            "deprecated; pass a single SweepOptions: "
            "run_sweep(spec, options=SweepOptions(...))",
            DeprecationWarning, stacklevel=2)
        on_progress = legacy.pop("on_progress", None)
        options = SweepOptions(**legacy)
        if on_progress is not None:
            options = dataclasses.replace(
                options, on_event=adapt_progress_callback(on_progress))
    options = options or SweepOptions()
    # lazy: the service module imports this one's grid core
    from .service import SweepService
    with SweepService(options, inline=True) as service:
        return service.submit(spec).result()
