"""The sweep engine: expand a spec, consult the cache, fan out, merge.

:func:`run_sweep` is the one entry point behind both the
``python -m repro sweep`` command and the benchmarks.  Its contract:

* **incremental** -- each cell is looked up in the content-addressed
  :class:`~repro.lab.cache.ResultCache` first; only cells whose inputs
  (source tree or config) changed are re-simulated;
* **parallel** -- cache misses fan out across supervised worker
  processes (simulations are deterministic and share nothing, so
  workers are safe);
* **supervised** -- the :class:`~repro.lab.executor.SupervisedExecutor`
  journals each record as it lands, kills and re-dispatches timed-out
  or crashed workers with bounded backoff-retry, and quarantines cells
  that exhaust the budget instead of aborting the grid; an interrupted
  sweep re-enters via ``resume=True`` recomputing nothing already paid
  for;
* **deterministic** -- records come back in grid order and contain no
  environment facts, so the merged ``BENCH_sweeps.json`` is
  byte-identical whether the sweep ran serially, on 8 workers, or
  entirely from cache -- even under injected orchestration faults.
"""

from __future__ import annotations

import os
import pathlib
import time
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple, Union)

from ..compiler.pipeline import compile_loop
from ..faults.plan import make_plan
from ..recovery import RecoveryPolicy
from ..schemes.registry import make_scheme
from ..sim import (DeadlockError, Machine, MachineConfig,
                   SimulationLimitError, ValidationError)
from .apps import build_app
from .cache import DEFAULT_CACHE_DIR, ResultCache, SweepJournal
from .chaos import ExecutorChaos
from .executor import (DEFAULT_MAX_RETRIES, CellFailure, SupervisedExecutor,
                       backoff_delay)
from .record import canonical_dumps, make_record, merge_records
from .spec import AUTO_SCHEME, SweepCell, SweepSpec
from .store import CellClaims, ClaimPolicy, reap_orphan_tmps

#: engine guards applied to fault-plan cells (mirrors the chaos harness:
#: an injected hazard must surface as a diagnosed error, not a hang)
FAULT_MAX_CYCLES = 2_000_000
FAULT_STAGNATION_LIMIT = 20_000

#: a worker result larger than this is rejected (and the attempt
#: retried): real records are kilobytes, so anything near the limit is
#: a corrupted or runaway payload, not a measurement
RESULT_BYTE_LIMIT = 8 * 2 ** 20


class IncompleteSweepError(RuntimeError):
    """The executor returned neither a record nor a failure for cells.

    Names the missing cell keys outright -- the supervised replacement
    for the old silent ``zip(todo, fresh)`` merge, which would have
    misaligned records on a length mismatch instead of failing loudly.
    """

    def __init__(self, missing_keys: Sequence[str]) -> None:
        self.missing_keys = list(missing_keys)
        preview = ", ".join(self.missing_keys[:4])
        if len(self.missing_keys) > 4:
            preview += f", ... ({len(self.missing_keys)} total)"
        super().__init__(
            f"sweep lost {len(self.missing_keys)} cell(s) without a "
            f"record or a quarantine entry: {preview}")


def _elimination_info(config: Mapping[str, Any]) -> Optional[Dict[str, Any]]:
    """The cell's redundant-sync column: eliminator counts, as metrics.

    Analysis only -- the simulated run keeps the scheme's full
    placement, so every other metric stays comparable with and without
    the column.  Imported lazily: :mod:`repro.analyze` imports
    ``lab.apps``, so a module-level import here would be circular.
    """
    if not config.get("eliminate") or config["scheme"] == AUTO_SCHEME:
        return None
    from ..analyze import AnalysisError
    from ..analyze.eliminate import eliminate
    loop = build_app(config["app"], config["app_params"])
    try:
        result = eliminate(loop, make_scheme(config["scheme"]),
                           app=config["app"])
    except (AnalysisError, NotImplementedError, ValueError) as err:
        return {"supported": False,
                "reason": str(err).splitlines()[0]}
    info: Dict[str, Any] = {"supported": True}
    info.update(result.summary())
    return info


def _machine_for(config: Mapping[str, Any]) -> Machine:
    plan_name = config.get("plan")
    plan = (make_plan(plan_name, seed=config["seed"])
            if plan_name else None)
    policy = RecoveryPolicy() if (plan is not None
                                  and config.get("recover")) else None
    kwargs: Dict[str, Any] = {}
    if plan is not None:
        kwargs.update(fault_plan=plan, recovery=policy,
                      max_cycles=FAULT_MAX_CYCLES,
                      stagnation_limit=FAULT_STAGNATION_LIMIT)
    return Machine(MachineConfig(
        processors=config["processors"], schedule=config["schedule"],
        record_trace=bool(config["validate"]), **kwargs))


def execute_cell(config: Mapping[str, Any],
                 key: Optional[str] = None) -> Dict[str, Any]:
    """Simulate one cell config and return its versioned record.

    Module-level (picklable) so pool workers can run it directly.  The
    outcome taxonomy matches the chaos harness: ``ok``, ``serial``
    (compiler declined to parallelize), ``deadlock-diagnosed``,
    ``limit-diagnosed``, ``corruption-detected``.
    """
    key = key or SweepCell(app=config["app"],
                           app_params=tuple(sorted(
                               config["app_params"].items())),
                           scheme=config["scheme"],
                           processors=config["processors"],
                           schedule=config["schedule"],
                           seed=config["seed"],
                           wait_bound=config["wait_bound"],
                           validate=config["validate"],
                           plan=config.get("plan"),
                           recover=bool(config.get("recover")),
                           eliminate=bool(config.get("eliminate"))).key
    loop = build_app(config["app"], config["app_params"])
    serial_cycles = loop.serial_cycles()
    elimination = _elimination_info(config)
    machine = _machine_for(config)
    compile_info: Optional[Dict[str, Any]] = None
    if config["scheme"] == AUTO_SCHEME:
        decision = compile_loop(loop, processors=config["processors"])
        compile_info = {
            "classification": decision.classification.label,
            "delay": (round(decision.delay.delay, 4)
                      if decision.delay is not None else None),
            "scheme": decision.chosen_scheme,
        }
        if not decision.runs_parallel:
            return make_record(key, config, outcome="serial",
                               serial_cycles=serial_cycles,
                               compile_info=compile_info,
                               elimination=elimination)
        instrumented = decision.instrumented
    else:
        instrumented = make_scheme(config["scheme"]).instrument(loop)
    if config["wait_bound"] is not None:
        instrumented.bound_waits(config["wait_bound"])
    try:
        result = machine.run(instrumented)
    except DeadlockError as err:
        return make_record(key, config, outcome="deadlock-diagnosed",
                           serial_cycles=serial_cycles,
                           compile_info=compile_info,
                           elimination=elimination,
                           error=str(err).splitlines()[0])
    except SimulationLimitError as err:
        return make_record(key, config, outcome="limit-diagnosed",
                           serial_cycles=serial_cycles,
                           compile_info=compile_info,
                           elimination=elimination,
                           error=str(err).splitlines()[0])
    if config["validate"]:
        try:
            instrumented.validate(result)
        except ValidationError as err:
            return make_record(key, config, outcome="corruption-detected",
                               result=result, serial_cycles=serial_cycles,
                               compile_info=compile_info,
                               elimination=elimination,
                               error=str(err).splitlines()[0])
    return make_record(key, config, outcome="ok", result=result,
                       serial_cycles=serial_cycles,
                       compile_info=compile_info,
                       elimination=elimination)


def _worker(item: Tuple[Dict[str, Any], str]) -> Dict[str, Any]:
    config, key = item
    return execute_cell(config, key)


@dataclass
class SweepReport:
    """What one :func:`run_sweep` call produced."""

    spec_name: str
    records: List[Dict[str, Any]]
    hits: int
    misses: int
    procs: int
    json_path: Optional[pathlib.Path] = None
    #: extra per-report notes (e.g. cache fingerprint) for display
    notes: Dict[str, Any] = field(default_factory=dict)
    #: cells that exhausted their retry budget -- quarantined, never
    #: merged into the store, and a non-zero exit from the CLI
    failed: List[CellFailure] = field(default_factory=list)
    #: cell keys *this process* actually simulated (paid for); cells
    #: served by waiting on another writer's claim are not in here --
    #: the accounting behind "zero duplicated simulations"
    simulated_keys: List[str] = field(default_factory=list)

    @property
    def all_cached(self) -> bool:
        """True when every cell was served from the warm cache."""
        return self.misses == 0 and bool(self.records)

    @property
    def degraded(self) -> bool:
        """True when the sweep finished but quarantined cells."""
        return bool(self.failed)

    def metrics_by(self, *config_fields: str) -> Dict[Tuple, Dict]:
        """Index the records' metrics by the given config fields.

        Benchmarks use this to keep paper-shaped assertions terse::

            rows = report.metrics_by("scheme", "app_params.n")
            rows[("reference-based", 50)]["sync_vars"]

        A field may use dotted access into ``app_params``.
        """
        out: Dict[Tuple, Dict] = {}
        for record in self.records:
            parts: List[Any] = []
            for name in config_fields:
                if name.startswith("app_params."):
                    parts.append(record["config"]["app_params"].get(
                        name.split(".", 1)[1]))
                else:
                    parts.append(record["config"].get(name))
            out[tuple(parts)] = record["metrics"]
        return out


def _validate_worker_record(result: Any, key: str) -> Optional[str]:
    """Reject malformed, mis-keyed, or oversized worker results.

    Returning an error string makes the supervisor treat the landed
    value as a failed attempt (``bad-result``) and retry the cell --
    the guard that turns a corrupted or runaway payload into a
    re-simulation instead of a poisoned store.
    """
    if not isinstance(result, Mapping):
        return f"not a record: {type(result).__name__}"
    if result.get("key") != key:
        return f"record key {result.get('key')!r} != cell key {key!r}"
    try:
        size = len(canonical_dumps(dict(result)))
    except (TypeError, ValueError) as err:
        return f"unserializable record: {err}"
    if size > RESULT_BYTE_LIMIT:
        return f"record too large ({size} bytes > {RESULT_BYTE_LIMIT})"
    return None


def run_sweep(spec: Union[SweepSpec, Sequence[SweepCell]], *,
              procs: int = 1,
              cache_dir: Optional[pathlib.Path] = DEFAULT_CACHE_DIR,
              cache: Optional[ResultCache] = None,
              json_path: Optional[pathlib.Path] = None,
              preflight: bool = False,
              cell_timeout: Optional[float] = None,
              max_retries: int = DEFAULT_MAX_RETRIES,
              chaos: Optional[ExecutorChaos] = None,
              resume: bool = False,
              single_flight: bool = True,
              claim_policy: Optional[ClaimPolicy] = None,
              keep_journal: bool = False,
              on_progress: Optional[
                  Callable[[str, Dict[str, Any]], None]] = None,
              ) -> SweepReport:
    """Run a sweep: expand, cache-check, supervise misses, merge.

    ``cache_dir=None`` disables caching entirely; passing an explicit
    ``cache`` overrides ``cache_dir``.  ``json_path`` merges the run's
    records into that versioned store (see
    :func:`~repro.lab.record.merge_records`).  ``preflight=True``
    statically verifies every (app, scheme) placement the grid touches
    (at the analysis gate's small sizes) before spending simulation
    budget; a placement with a proven race or deadlock aborts the sweep
    with :class:`repro.analyze.AnalysisError`.

    Cold cells run under the :class:`SupervisedExecutor`: each record
    is stored to the cache and journaled *as it lands* (paid work
    survives any later crash), a cell past ``cell_timeout`` seconds is
    killed and re-dispatched, failed attempts retry with capped
    exponential backoff up to ``max_retries`` extra tries, and cells
    that exhaust the budget are quarantined into ``report.failed``
    while the rest of the grid finishes.  ``resume=True`` (requires
    the cache) re-enters an interrupted sweep: completed cells come
    back via cache lookup, so zero already-paid cells recompute.
    ``chaos`` injects seeded orchestration faults (worker crash, hang,
    flaky cell, corrupted/oversized result) for testing the above;
    ``on_progress(key, record)`` fires per landed record.

    ``single_flight`` (on by default whenever a cache is in play) makes
    N concurrent sweeps sharing one cache cooperate instead of
    duplicating paid work: each cold cell is claimed via an advisory
    claim file before simulation (:class:`~repro.lab.store.CellClaims`),
    a cell already claimed by a live writer is *waited for* (bounded by
    ``claim_policy.wait_timeout``, with backoff) and served from the
    cache when the claimant lands it, and a claim whose owner died
    (SIGKILL, OOM) goes stale and is taken over.  The merged store and
    every record stay byte-identical to a solo run; only who paid for
    each cell changes -- ``report.simulated_keys`` says what this
    process paid for.  ``keep_journal=True`` preserves the journal
    trail of a fully-successful sweep for post-hoc accounting.
    """
    if isinstance(spec, SweepSpec):
        name, cells = spec.name, spec.cells()
    else:
        name, cells = "custom", list(spec)
    notes: Dict[str, Any] = {}
    if preflight:
        # lazy: repro.analyze imports lab.apps, so importing it at
        # module level here would be circular
        from ..analyze import AnalysisError
        from ..analyze.gate import gate as analysis_gate
        apps = sorted({cell.app for cell in cells})
        schemes = sorted({cell.scheme for cell in cells
                          if cell.scheme != AUTO_SCHEME})
        if apps and schemes:
            verdict = analysis_gate(apps=apps, schemes=schemes)
            if not verdict.ok:
                raise AnalysisError(
                    "pre-flight analysis gate failed: "
                    + "; ".join(verdict.failing))
            notes["preflight"] = (f"{len(verdict.reports)} placement(s) "
                                  f"verified clean")
    if cache is None and cache_dir is not None:
        cache = ResultCache(pathlib.Path(cache_dir))
    if resume and cache is None:
        raise ValueError("resume=True needs the result cache: completed "
                         "cells are recovered by cache/journal lookup")

    records: List[Optional[Dict[str, Any]]] = [None] * len(cells)
    #: (grid index, config, human key, cache key-or-None) per cold cell
    todo: List[Tuple[int, Dict[str, Any], str, Optional[str]]] = []
    cache_keys: List[str] = []
    for index, cell in enumerate(cells):
        config = cell.config()
        cache_key = None
        if cache is not None:
            cache_key = cache.key_for(config)
            cache_keys.append(cache_key)
            cached = cache.load(cache_key)
            if cached is not None:
                records[index] = cached
                continue
        todo.append((index, config, cell.key, cache_key))

    journal = (SweepJournal.for_keys(cache.root, cache_keys)
               if cache is not None else None)
    hits = len(cells) - len(todo)
    if journal is not None:
        if resume:
            notes["resumed"] = (f"{hits} completed cell(s) recovered "
                                f"from cache/journal, {len(todo)} left")
        else:
            # a fresh (non-resume) run starts a fresh trail
            journal.clear()

    claims: Optional[CellClaims] = None
    policy = claim_policy or ClaimPolicy()
    if cache is not None and single_flight and todo:
        # a SIGKILLed predecessor's half-written tmp files are garbage
        # the moment its pid is gone; sweep startup is the natural
        # place to sweep them up
        reap_orphan_tmps(cache.root)
        claims = CellClaims(cache.root, policy)

    simulated: List[str] = []
    failures: List[CellFailure] = []

    def journal_line(entry: Dict[str, Any]) -> None:
        if journal is not None:
            journal.append(entry)

    def serve_shared(index: int, key: str,
                     record: Dict[str, Any]) -> None:
        """Another writer paid for this cell; we just read its entry."""
        records[index] = record
        journal_line({"cell": key, "status": "shared",
                      "pid": os.getpid()})
        if on_progress is not None:
            on_progress(key, record)

    def run_batch(batch: List[Tuple[int, Dict[str, Any], str,
                                    Optional[str]]]) -> None:
        """Simulate one batch of claimed (or unclaimed) cold cells."""
        def on_landed(position: int, key: str,
                      record: Dict[str, Any]) -> None:
            index, config, _key, cache_key = batch[position]
            records[index] = record
            # journal as it lands: store first (the durable result),
            # then release the claim (waiters may now read), then the
            # trail line, then the caller's progress hook -- a crash
            # between any two steps loses bookkeeping, never paid work
            if cache is not None:
                cache.store(cache_key or cache.key_for(config), record)
            if claims is not None and cache_key is not None:
                claims.release(cache_key)
            journal_line({"cell": key, "status": "done",
                          "outcome": record.get("outcome"),
                          "pid": os.getpid(), "simulated": True})
            simulated.append(key)
            if on_progress is not None:
                on_progress(key, record)

        def on_dispatch(_position: int, key: str, attempt: int) -> None:
            journal_line({"cell": key, "status": "start",
                          "attempt": attempt + 1, "pid": os.getpid()})

        executor = SupervisedExecutor(
            _worker, procs=procs, cell_timeout=cell_timeout,
            max_retries=max_retries, chaos=chaos,
            validate=_validate_worker_record)
        outcome = executor.run(
            [(config, key) for _i, config, key, _ck in batch],
            keys=[key for _i, _config, key, _ck in batch],
            on_result=on_landed,
            on_dispatch=(on_dispatch if journal is not None else None))
        for failure in outcome.failures:
            failures.append(failure)
            journal_line({"cell": failure.key, "status": "failed",
                          "reason": failure.reason,
                          "attempts": failure.attempts,
                          "detail": failure.detail, "pid": os.getpid()})
            # a quarantined cell must not stay claimed: other writers
            # would wait out the full staleness horizon for a cell
            # this process has already given up on
            if claims is not None:
                position = next(i for i, item in enumerate(batch)
                                if item[2] == failure.key)
                cache_key = batch[position][3]
                if cache_key is not None:
                    claims.release(cache_key)
        notes["retries"] = notes.get("retries", 0) + outcome.retries
        notes["respawns"] = notes.get("respawns", 0) + outcome.respawns

    try:
        mine: List[Tuple[int, Dict[str, Any], str, Optional[str]]] = []
        theirs: List[Tuple[int, Dict[str, Any], str, Optional[str]]] = []
        shared = 0
        if claims is not None:
            for item in todo:
                index, _config, key, cache_key = item
                if not claims.acquire(cache_key):
                    theirs.append(item)
                    continue
                # double-check under the claim: another writer may have
                # landed the entry between our cache miss and the claim
                record = cache.load(cache_key, count=False)
                if record is not None:
                    claims.release(cache_key)
                    serve_shared(index, key, record)
                    shared += 1
                else:
                    mine.append(item)
        else:
            mine = list(todo)

        if mine:
            run_batch(mine)

        takeovers: List[Tuple[int, Dict[str, Any], str,
                              Optional[str]]] = []
        forced = 0
        if theirs:
            # single-flight wait: another sweep owns these cells.  Poll
            # (bounded, with backoff) for either its landed entry or a
            # stale claim we can take over; past the wait budget we
            # recompute rather than hang -- duplicated work degrades
            # gracefully, a stuck sweep does not.
            pending = list(theirs)
            deadline = time.monotonic() + policy.wait_timeout
            spin = 0
            while pending:
                still: List[Tuple[int, Dict[str, Any], str,
                                  Optional[str]]] = []
                for item in pending:
                    index, _config, key, cache_key = item
                    record = cache.load(cache_key, count=False)
                    if record is not None:
                        serve_shared(index, key, record)
                        shared += 1
                        continue
                    if claims.acquire(cache_key):
                        record = cache.load(cache_key, count=False)
                        if record is not None:
                            claims.release(cache_key)
                            serve_shared(index, key, record)
                            shared += 1
                        else:
                            takeovers.append(item)
                        continue
                    still.append(item)
                pending = still
                if not pending:
                    break
                if time.monotonic() >= deadline:
                    forced = len(pending)
                    takeovers.extend(pending)
                    pending = []
                    break
                spin += 1
                time.sleep(backoff_delay(spin, policy.poll_base,
                                         policy.poll_cap))
        if takeovers:
            run_batch(takeovers)
    finally:
        if claims is not None:
            claims.close()

    paid = len(mine) + len(takeovers)
    if shared:
        notes["shared"] = shared
    if takeovers:
        notes["takeovers"] = len(takeovers) - forced
    if forced:
        notes["forced"] = forced
    for count_key in ("retries", "respawns", "takeovers"):
        if not notes.get(count_key):
            notes.pop(count_key, None)

    failed_keys = {failure.key for failure in failures}
    missing = [key for index, _config, key, _ck in todo
               if records[index] is None and key not in failed_keys]
    if missing:
        raise IncompleteSweepError(missing)

    if journal is not None and not failures and not keep_journal:
        journal.clear()

    done = [record for record in records if record is not None]
    report = SweepReport(
        spec_name=name, records=done, hits=hits + shared,
        misses=paid,
        procs=procs, json_path=json_path,
        notes=dict(notes, **({"fingerprint": cache.fingerprint[:12]}
                             if cache else {})),
        failed=failures, simulated_keys=simulated)
    if json_path is not None:
        merge_records(pathlib.Path(json_path), done)
    return report
