"""Storage integrity for the shared experiment store.

``.repro-cache/`` started life as a private scratch directory: one
sweep process, entries trusted byte-for-byte, tmp files named by bare
pid.  The sweep-as-a-service direction makes it a *shared, crash-prone,
multi-writer database*, and this module is the layer that makes that
safe.  Four mechanisms, each independent:

**Durability** (:func:`durable_write_text`, :func:`durable_append_line`)
    every entry write goes through a uniquely-named tmp file that is
    flushed, fsynced, atomically renamed, and followed by a directory
    fsync; journal appends are flushed and fsynced per line.  "Landed"
    means durable, not merely buffered.

**Checksummed envelopes** (:func:`seal_record`, :func:`open_envelope`)
    cache entries are stored as a small envelope carrying the payload's
    SHA-256.  A bit-flipped or truncated-but-valid-JSON entry fails
    verification and is *quarantined* (moved under
    ``<cache>/quarantine/``), never served as truth and never silently
    treated as a plain miss that hides the damage.

**Single-flight claims** (:class:`CellClaims`)
    a writer about to simulate a cell first creates an advisory claim
    file (``<cache>/claims/<key>.claim``, O_EXCL) recording its pid and
    host; a heartbeat thread refreshes the claim's mtime while the cell
    is in flight.  A second writer that wants the same cell *waits* for
    the claimant instead of duplicating paid work, and takes over if
    the claim goes stale (owner dead, or heartbeat older than
    :attr:`ClaimPolicy.stale_after`).  Claims are advisory: a writer
    that ignores them computes a correct (identical) record -- they
    eliminate duplicated work, not correctness hazards.

**The doctor** (:func:`diagnose`)
    an fsck for the cache: verifies every entry's checksum and schema
    version, reaps orphaned tmp files and stale claims, counts torn
    journal lines, and reports a typed summary (``ok`` / ``stale`` /
    ``corrupt`` / ``orphaned`` / ``quarantined``).  With ``repair=True``
    it deletes-or-quarantines bad entries so the next sweep
    re-simulates exactly the damaged cells.

Lock ordering: the per-cell claim is always taken *before* any store
write for that cell, and the global :class:`StoreLock` around the
merged ``BENCH_sweeps.json`` is taken last and held only across one
read-merge-write; no path ever holds two claims or a claim while
waiting on another writer's claim, so the layer cannot deadlock with
itself.
"""

from __future__ import annotations

import hashlib
import itertools
import json
import os
import pathlib
import socket
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional

from .record import canonical_dumps, record_is_current

#: bump when the on-disk envelope layout changes shape
ENVELOPE_VERSION = 1
#: bump when the doctor report layout changes shape
DOCTOR_SCHEMA_VERSION = 1

#: subdirectories of the cache root owned by this layer
QUARANTINE_DIR = "quarantine"
CLAIMS_DIR = "claims"
JOURNAL_DIR = "journal"
#: durable job specs a draining SweepService leaves behind; a
#: restarted server rescans this directory and resubmits each one
JOBS_DIR = "jobs"

#: marker every in-flight tmp file carries: ``<name>.tmp-<pid>-<n>``
TMP_MARKER = ".tmp-"
#: a tmp file whose owner cannot be proven alive is reaped past this age
TMP_GRACE_SECONDS = 60.0

_HOST = socket.gethostname()
#: per-process counter making tmp names unique across threads too
_TMP_COUNTER = itertools.count()


# -- durability ----------------------------------------------------------


def tmp_path_for(path: pathlib.Path) -> pathlib.Path:
    """A collision-free sibling tmp path for an in-flight write.

    ``<name>.tmp-<pid>-<counter>``: the pid lets reapers test owner
    liveness, the counter keeps concurrent threads of one process from
    clobbering each other (the old bare-pid suffix collided).
    """
    return path.with_name(
        f"{path.name}{TMP_MARKER}{os.getpid()}-{next(_TMP_COUNTER)}")


def _fsync_dir(path: pathlib.Path) -> None:
    """Flush a directory's metadata (the rename itself), best effort."""
    try:
        fd = os.open(path, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def durable_write_text(path: pathlib.Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically *and* durably.

    tmp write -> flush -> fsync -> rename -> directory fsync: a crash
    at any point leaves either the old file or the new one, and once
    this returns the bytes survive power loss, not just process death.
    """
    path = pathlib.Path(path)
    tmp = tmp_path_for(path)
    with open(tmp, "w") as handle:
        handle.write(text)
        handle.flush()
        os.fsync(handle.fileno())
    tmp.replace(path)
    _fsync_dir(path.parent)


def durable_append_line(path: pathlib.Path, line: str) -> None:
    """Append one line to ``path`` and fsync it (O_APPEND semantics).

    A single small write under O_APPEND lands contiguously, so
    concurrent appenders interleave whole lines, and the fsync means an
    acknowledged journal line survives a crash.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a") as handle:
        handle.write(line if line.endswith("\n") else line + "\n")
        handle.flush()
        os.fsync(handle.fileno())


def _pid_alive(pid: int) -> bool:
    """True when ``pid`` is a live process on this host."""
    try:
        os.kill(pid, 0)
    except (ProcessLookupError, OverflowError, ValueError):
        return False
    except PermissionError:
        return True
    return True


def _age_seconds(path: pathlib.Path) -> float:
    try:
        return max(0.0, time.time() - path.stat().st_mtime)
    except OSError:
        return 0.0


def _tmp_owner_pid(name: str) -> Optional[int]:
    """The owner pid encoded in a tmp file name, if parseable.

    Understands both the current ``.tmp-<pid>-<n>`` form and the old
    bare ``.tmp<pid>`` suffix orphans of which may still be on disk.
    """
    _, _, rest = name.partition(".tmp")
    rest = rest.lstrip("-")
    digits = "".join(itertools.takewhile(str.isdigit, rest))
    return int(digits) if digits else None


def reap_orphan_tmps(root: pathlib.Path,
                     grace: float = TMP_GRACE_SECONDS,
                     ) -> List[pathlib.Path]:
    """Delete abandoned in-flight tmp files under ``root``, recursively.

    A tmp file is an orphan when its owner pid is dead (a SIGKILLed
    writer never renames) or unparseable, or when it has outlived
    ``grace`` seconds -- live writes exist for milliseconds.  Our own
    fresh tmp files are never touched.  Returns the reaped paths.
    """
    root = pathlib.Path(root)
    reaped: List[pathlib.Path] = []
    for path in sorted(root.rglob(f"*{TMP_MARKER[:-1]}*")):
        if TMP_MARKER[:-1] not in path.name or path.is_dir():
            continue
        pid = _tmp_owner_pid(path.name)
        if pid == os.getpid() and _age_seconds(path) <= grace:
            continue
        if pid is not None and _pid_alive(pid) \
                and _age_seconds(path) <= grace:
            continue
        try:
            path.unlink()
            reaped.append(path)
        except OSError:
            pass
    return reaped


# -- checksummed envelopes ----------------------------------------------


class EnvelopeError(ValueError):
    """A cache entry failed integrity verification.

    ``kind`` taxonomy: ``json`` (not decodable JSON at all), ``format``
    (JSON but not a current-version envelope -- includes legacy naked
    records), ``checksum`` (envelope intact, payload digest mismatch:
    bit flip or partial overwrite).
    """

    def __init__(self, kind: str, detail: str) -> None:
        super().__init__(f"{kind}: {detail}")
        self.kind = kind
        self.detail = detail


def _payload_digest(record: Mapping[str, Any]) -> str:
    return hashlib.sha256(canonical_dumps(dict(record)).encode()).hexdigest()


def seal_record(record: Mapping[str, Any]) -> str:
    """The durable on-disk form of a record: a checksummed envelope."""
    return canonical_dumps({
        "envelope_version": ENVELOPE_VERSION,
        "sha256": _payload_digest(record),
        "record": dict(record),
    }) + "\n"


def open_envelope(text: str) -> Dict[str, Any]:
    """Verify an envelope and return its payload record.

    Raises :class:`EnvelopeError` instead of returning damaged data;
    callers decide between quarantine (cache lookups) and reporting
    (the doctor).
    """
    try:
        data = json.loads(text)
    except ValueError as err:
        raise EnvelopeError("json", f"undecodable entry: {err}") from None
    if (not isinstance(data, Mapping)
            or data.get("envelope_version") != ENVELOPE_VERSION
            or not isinstance(data.get("record"), Mapping)
            or not isinstance(data.get("sha256"), str)):
        raise EnvelopeError("format", "not a current checksummed envelope")
    record = dict(data["record"])
    digest = _payload_digest(record)
    if digest != data["sha256"]:
        raise EnvelopeError(
            "checksum", f"payload digest {digest[:12]} != recorded "
            f"{str(data['sha256'])[:12]}")
    return record


def quarantine_file(root: pathlib.Path,
                    path: pathlib.Path) -> Optional[pathlib.Path]:
    """Move a damaged file under ``<root>/quarantine/`` for forensics.

    Quarantining instead of deleting keeps the evidence (what *did* the
    bytes look like?) while guaranteeing the entry can never be served;
    the cell simply re-simulates.  Returns the new path, or None when
    the file vanished underneath us (a concurrent quarantine won).
    """
    quarantine = pathlib.Path(root) / QUARANTINE_DIR
    quarantine.mkdir(parents=True, exist_ok=True)
    target = quarantine / path.name
    suffix = 0
    while target.exists():
        suffix += 1
        target = quarantine / f"{path.name}.{suffix}"
    try:
        path.replace(target)
    except OSError:
        return None
    return target


# -- single-flight claims -----------------------------------------------


@dataclass(frozen=True)
class ClaimPolicy:
    """Timing knobs for claim heartbeats, staleness, and waiting."""

    #: how often a claimant refreshes its claims' mtimes
    heartbeat_interval: float = 1.0
    #: a claim whose heartbeat is older than this is up for takeover
    #: (a dead pid on the same host is stale immediately)
    stale_after: float = 15.0
    #: max seconds a sweep waits for another writer's in-flight cell
    #: before giving up on sharing and recomputing it
    wait_timeout: float = 600.0
    #: wait-loop backoff: first sleep, doubling up to the cap
    poll_base: float = 0.05
    poll_cap: float = 0.5


@dataclass(frozen=True)
class ClaimInfo:
    """One observed claim file: who holds it and for how long."""

    path: pathlib.Path
    pid: Optional[int]
    host: Optional[str]
    age: float


class CellClaims:
    """Advisory per-cell claim files giving single-flight semantics.

    One instance per sweep process; ``acquire`` is cross-process
    atomic (O_EXCL create) and a daemon heartbeat thread keeps every
    held claim's mtime fresh so other writers can tell "in flight"
    from "abandoned".  ``close`` releases everything; a SIGKILLed
    owner's claims are reaped by the next acquirer via the staleness
    rules in :meth:`is_stale`.
    """

    def __init__(self, root: pathlib.Path,
                 policy: Optional[ClaimPolicy] = None) -> None:
        self.root = pathlib.Path(root) / CLAIMS_DIR
        self.policy = policy or ClaimPolicy()
        self._held: Dict[str, pathlib.Path] = {}
        self._lock = threading.Lock()
        self._stop = threading.Event()
        self._heartbeat: Optional[threading.Thread] = None

    def path_for(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.claim"

    def acquire(self, key: str) -> bool:
        """Try to claim ``key``; True means this process now owns it.

        An existing *stale* claim (dead or heartbeat-silent owner) is
        reaped and re-contested; exactly one contender wins the O_EXCL
        create.  Never blocks.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        path = self.path_for(key)
        body = json.dumps({"pid": os.getpid(), "host": _HOST, "key": key})
        for _attempt in range(2):
            try:
                fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                info = self.peek(key)
                if info is not None and not self.is_stale(info):
                    return False
                # stale (or vanished mid-peek): reap and re-contest once
                try:
                    path.unlink()
                except OSError:
                    pass
                continue
            with os.fdopen(fd, "w") as handle:
                handle.write(body)
            with self._lock:
                self._held[key] = path
            self._ensure_heartbeat()
            return True
        return False

    def release(self, key: str) -> None:
        """Drop a claim this process holds (no-op for foreign claims)."""
        with self._lock:
            path = self._held.pop(key, None)
        if path is None:
            return
        try:
            path.unlink()
        except OSError:
            pass

    def peek(self, key: str) -> Optional[ClaimInfo]:
        """Observe the current claim on ``key``, if any."""
        return self._info(self.path_for(key))

    def is_stale(self, info: ClaimInfo) -> bool:
        """True when the claim's owner is provably or probably gone.

        Same host + dead pid: stale immediately (SIGKILL takeover is
        fast).  Otherwise the heartbeat decides: an owner that has not
        touched the claim for ``stale_after`` seconds has crashed, hung
        past usefulness, or been suspended -- all grounds for takeover.
        """
        if info.pid is None or info.host is None:
            # torn claim write: give the writer one heartbeat to finish
            return info.age > min(self.policy.stale_after,
                                  2 * self.policy.heartbeat_interval)
        if info.host == _HOST and not _pid_alive(info.pid):
            return True
        return info.age > self.policy.stale_after

    def reap_stale(self) -> List[str]:
        """Remove every stale claim under the root; returns their names."""
        reaped: List[str] = []
        if not self.root.is_dir():
            return reaped
        for path in sorted(self.root.glob("*.claim")):
            info = self._info(path)
            if info is None or not self.is_stale(info):
                continue
            try:
                path.unlink()
                reaped.append(path.stem)
            except OSError:
                pass
        return reaped

    def close(self) -> None:
        """Stop the heartbeat and release every held claim."""
        self._stop.set()
        if self._heartbeat is not None:
            self._heartbeat.join(timeout=2 * self.policy.heartbeat_interval)
            self._heartbeat = None
        with self._lock:
            held = list(self._held)
        for key in held:
            self.release(key)

    def __enter__(self) -> "CellClaims":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()

    # -- internals -------------------------------------------------------

    def _info(self, path: pathlib.Path) -> Optional[ClaimInfo]:
        try:
            age = max(0.0, time.time() - path.stat().st_mtime)
        except OSError:
            return None
        pid = host = None
        try:
            body = json.loads(path.read_text())
            pid = int(body["pid"])
            host = str(body["host"])
        except (OSError, ValueError, KeyError, TypeError):
            pass  # torn or mid-write claim: age alone decides staleness
        return ClaimInfo(path=path, pid=pid, host=host, age=age)

    def _ensure_heartbeat(self) -> None:
        if self._heartbeat is not None and self._heartbeat.is_alive():
            return
        self._stop.clear()
        self._heartbeat = threading.Thread(
            target=self._heartbeat_loop, name="claim-heartbeat",
            daemon=True)
        self._heartbeat.start()

    def _heartbeat_loop(self) -> None:
        while not self._stop.wait(self.policy.heartbeat_interval):
            with self._lock:
                paths = list(self._held.values())
            for path in paths:
                try:
                    os.utime(path)
                except OSError:
                    pass  # released or reaped under us; acquire decides


# -- the global merged-store lock ---------------------------------------


class StoreLockTimeout(TimeoutError):
    """Could not acquire the merged-store lock within the budget."""


class StoreLock:
    """Advisory exclusive lock serializing merged-store read-merge-write.

    Same file-based discipline as claims (O_EXCL create, pid + host in
    the body, stale-break on dead or silent owners) but scoped to one
    short critical section -- no heartbeat thread, just a generous
    staleness horizon relative to how long a merge can possibly take.
    """

    def __init__(self, path: pathlib.Path, *, timeout: float = 60.0,
                 stale_after: float = 30.0, poll: float = 0.02) -> None:
        self.path = pathlib.Path(path)
        self.timeout = timeout
        self.stale_after = stale_after
        self.poll = poll
        self._held = False

    def acquire(self) -> None:
        deadline = time.monotonic() + self.timeout
        body = json.dumps({"pid": os.getpid(), "host": _HOST})
        self.path.parent.mkdir(parents=True, exist_ok=True)
        while True:
            try:
                fd = os.open(self.path,
                             os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                if self._break_stale() or time.monotonic() < deadline:
                    time.sleep(self.poll)
                    continue
                raise StoreLockTimeout(
                    f"gave up on {self.path} after {self.timeout:g}s; "
                    "a dead holder would have been broken as stale -- "
                    "a live one is wedged") from None
            with os.fdopen(fd, "w") as handle:
                handle.write(body)
            self._held = True
            return

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        try:
            self.path.unlink()
        except OSError:
            pass

    def _break_stale(self) -> bool:
        """Unlink the lock if its holder is dead or silent; True if so."""
        try:
            age = time.time() - self.path.stat().st_mtime
        except OSError:
            return True  # vanished: re-contest immediately
        pid = host = None
        try:
            body = json.loads(self.path.read_text())
            pid, host = int(body["pid"]), str(body["host"])
        except (OSError, ValueError, KeyError, TypeError):
            pass
        dead = (pid is not None and host == _HOST
                and not _pid_alive(pid))
        if dead or age > self.stale_after:
            try:
                self.path.unlink()
            except OSError:
                pass
            return True
        return False

    def __enter__(self) -> "StoreLock":
        self.acquire()
        return self

    def __exit__(self, *_exc) -> None:
        self.release()


# -- the doctor ----------------------------------------------------------


@dataclass
class DoctorFinding:
    """One diagnosed file: where, what, and what was done about it."""

    path: str
    status: str
    detail: str = ""
    #: repair action taken: "" (none), deleted, quarantined, rewritten
    action: str = ""

    def to_json(self) -> Dict[str, Any]:
        return {"path": self.path, "status": self.status,
                "detail": self.detail, "action": self.action}


@dataclass
class DoctorReport:
    """The typed outcome of one cache diagnosis pass."""

    root: str
    repair: bool
    counts: Dict[str, int] = field(default_factory=dict)
    findings: List[DoctorFinding] = field(default_factory=list)

    @property
    def healthy(self) -> bool:
        """True when nothing needs (or needed) attention.

        Quarantined files are history, not live damage; they never
        make a cache unhealthy on their own.
        """
        return not any(self.counts.get(status, 0) for status in
                       ("corrupt", "stale", "orphaned", "stale_claims",
                        "torn_journal_lines"))

    def summary(self) -> str:
        parts = [f"{name}={self.counts.get(name, 0)}" for name in
                 ("ok", "stale", "corrupt", "orphaned", "quarantined",
                  "stale_claims", "torn_journal_lines")]
        state = "healthy" if self.healthy else (
            "repaired" if self.repair else "NEEDS REPAIR")
        return f"doctor {self.root}: {state} [{', '.join(parts)}]"

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema_version": DOCTOR_SCHEMA_VERSION,
            "root": self.root,
            "repair": self.repair,
            "healthy": self.healthy,
            "counts": dict(sorted(self.counts.items())),
            "findings": [finding.to_json() for finding in self.findings],
        }


def _count(report: DoctorReport, status: str, amount: int = 1) -> None:
    report.counts[status] = report.counts.get(status, 0) + amount


def diagnose(root: pathlib.Path, *, repair: bool = False,
             policy: Optional[ClaimPolicy] = None,
             key_fn: Optional[Callable[[Mapping[str, Any]], str]] = None,
             grace: float = TMP_GRACE_SECONDS) -> DoctorReport:
    """fsck the cache at ``root``; optionally repair what it finds.

    Always (diagnosis *is* the repair for unambiguous garbage): reaps
    orphaned in-flight tmp files and stale claims.  Entry damage is
    only acted on under ``repair=True``: corrupt entries (undecodable,
    non-envelope, checksum-mismatched) are quarantined, stale entries
    (old schema versions, or -- when ``key_fn`` is given -- a content
    address the current source tree can never look up again) are
    deleted, and journals with torn lines are rewritten without them.
    Either way every touched file comes back as a typed finding, so
    ``repair=False`` is a faithful dry run of ``repair=True``.
    """
    root = pathlib.Path(root)
    report = DoctorReport(root=str(root), repair=repair)
    claims = CellClaims(root, policy)

    for path in sorted(root.glob("*.json")):
        if not path.is_file():
            continue
        try:
            raw = path.read_bytes()
        except OSError as err:
            report.findings.append(DoctorFinding(
                path=path.name, status="corrupt",
                detail=f"unreadable: {err}"))
            _count(report, "corrupt")
            continue
        try:
            record = open_envelope(raw.decode("utf-8"))
        except (EnvelopeError, UnicodeDecodeError) as err:
            detail = (f"{err.kind}: {err.detail}"
                      if isinstance(err, EnvelopeError)
                      else f"encoding: not valid UTF-8 ({err})")
            finding = DoctorFinding(path=path.name, status="corrupt",
                                    detail=detail)
            if repair and quarantine_file(root, path) is not None:
                finding.action = "quarantined"
            report.findings.append(finding)
            _count(report, "corrupt")
            continue
        stale_reason = None
        if not record_is_current(record):
            stale_reason = "schema version mismatch"
        elif key_fn is not None:
            try:
                expected = key_fn(record.get("config") or {})
            except Exception:  # noqa: BLE001 - malformed config
                expected = None
            if expected is not None and expected != path.stem:
                stale_reason = ("unreachable content address "
                                "(source tree changed)")
        if stale_reason is not None:
            finding = DoctorFinding(path=path.name, status="stale",
                                    detail=stale_reason)
            if repair:
                try:
                    path.unlink()
                    finding.action = "deleted"
                except OSError:
                    pass
            report.findings.append(finding)
            _count(report, "stale")
            continue
        _count(report, "ok")

    for path in reap_orphan_tmps(root, grace=grace):
        report.findings.append(DoctorFinding(
            path=str(path.relative_to(root)), status="orphaned",
            detail="abandoned in-flight tmp file", action="deleted"))
        _count(report, "orphaned")

    for name in claims.reap_stale():
        report.findings.append(DoctorFinding(
            path=f"{CLAIMS_DIR}/{name}.claim", status="stale-claim",
            detail="claimant dead or heartbeat silent", action="deleted"))
        _count(report, "stale_claims")

    journal_dir = root / JOURNAL_DIR
    if journal_dir.is_dir():
        for path in sorted(journal_dir.glob("*.jsonl")):
            good: List[str] = []
            torn = 0
            try:
                # replace, not raise: a mangled byte tears one line,
                # never the whole journal
                lines = path.read_bytes().decode(
                    "utf-8", "replace").splitlines()
            except OSError:
                continue
            for line in lines:
                if not line.strip():
                    continue
                try:
                    json.loads(line)
                except ValueError:
                    torn += 1
                    continue
                good.append(line)
            if not torn:
                continue
            finding = DoctorFinding(
                path=f"{JOURNAL_DIR}/{path.name}", status="torn-journal",
                detail=f"{torn} undecodable line(s)")
            if repair:
                durable_write_text(
                    path, "".join(line + "\n" for line in good))
                finding.action = "rewritten"
            report.findings.append(finding)
            _count(report, "torn_journal_lines", torn)

    quarantine = root / QUARANTINE_DIR
    if quarantine.is_dir():
        _count(report, "quarantined",
               sum(1 for entry in quarantine.iterdir() if entry.is_file()))
    jobs_dir = root / JOBS_DIR
    if jobs_dir.is_dir():
        # surfaced, never repaired: an interrupted service job waiting
        # to be resumed is state, not damage
        _count(report, "pending_jobs",
               sum(1 for entry in jobs_dir.glob("*.json")
                   if entry.is_file()))
    report.counts.setdefault("ok", 0)
    report.counts.setdefault("quarantined", 0)
    return report


__all__ = [
    "CLAIMS_DIR", "CellClaims", "ClaimInfo", "ClaimPolicy",
    "DOCTOR_SCHEMA_VERSION", "DoctorFinding", "DoctorReport",
    "ENVELOPE_VERSION", "EnvelopeError", "JOBS_DIR", "JOURNAL_DIR",
    "QUARANTINE_DIR",
    "StoreLock", "StoreLockTimeout", "TMP_GRACE_SECONDS", "diagnose",
    "durable_append_line", "durable_write_text", "open_envelope",
    "quarantine_file", "reap_orphan_tmps", "seal_record", "tmp_path_for",
]
