"""The supervised executor: crash-safe fan-out for sweep cells.

:func:`repro.lab.parallel.parallel_map` is the right tool for clean
grids, but it fails whole: one crashed or hung worker aborts the
``pool.map`` and every already-finished result dies with it.  This
module replaces it under :func:`repro.lab.runner.run_sweep` with a
supervision loop that assumes workers *will* misbehave:

* **streaming** -- each worker holds exactly one in-flight cell;
  completions are delivered to the caller (``on_result``) the moment
  they land, tagged with their submission index, so paid work can be
  journaled immediately and is never lost to a later failure;
* **supervision** -- a per-cell wall-clock timeout kills stuck
  workers; dead workers (pipe EOF / ``Process.exitcode``) are
  detected, respawned, and their in-flight cell re-dispatched;
* **bounded retry** -- a failed attempt (worker death, timeout, raised
  exception, invalid result) re-queues the cell with capped
  exponential backoff until the per-cell retry budget is spent;
* **quarantine** -- cells that exhaust the budget become typed
  :class:`CellFailure` entries and the rest of the grid still
  finishes: graceful degradation instead of an opaque traceback.

The supervisor never re-orders results semantically: they are keyed
by submission index, so callers reassemble deterministic output
regardless of completion order, worker count, or how many times a
cell was retried.  On any exit -- success, quarantine, or an
interrupt propagating through -- the ``finally`` block terminates
every child, so no orphan processes outlive the sweep.
"""

from __future__ import annotations

import os
import signal
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from multiprocessing import connection
from typing import (Any, Callable, Dict, List, Optional, Sequence, Set)

from .chaos import ChaosError, ExecutorChaos
from .parallel import pool_context

#: retries after the first attempt (so 3 attempts total by default)
DEFAULT_MAX_RETRIES = 2
#: first backoff step, seconds; doubles per retry up to the cap
DEFAULT_BACKOFF_BASE = 0.05
DEFAULT_BACKOFF_CAP = 2.0
#: supervisor poll interval, seconds
_TICK = 0.02
#: exit code an injected worker crash dies with (recognizable in logs)
_CHAOS_EXIT = 23


def backoff_delay(attempt: int,
                  base: float = DEFAULT_BACKOFF_BASE,
                  cap: float = DEFAULT_BACKOFF_CAP) -> float:
    """Seconds to wait before dispatching retry ``attempt`` (>= 1).

    Capped exponential: ``min(cap, base * 2**(attempt-1))``.  A pure
    function of the attempt number, so the retry schedule is
    deterministic and testable.
    """
    if attempt < 1:
        return 0.0
    return min(cap, base * (2 ** (attempt - 1)))


@dataclass(frozen=True)
class CellFailure:
    """One quarantined cell: its identity, budget spent, and why.

    ``reason`` taxonomy: ``worker-crash`` (the worker process died),
    ``timeout`` (killed past the cell timeout), ``error`` (the cell
    raised), ``bad-result`` (the returned value failed validation).
    """

    index: int
    key: str
    attempts: int
    reason: str
    detail: str = ""

    def describe(self) -> str:
        text = (f"{self.key}: {self.reason} after {self.attempts} "
                f"attempt(s)")
        return f"{text} -- {self.detail}" if self.detail else text

    def to_json(self) -> Dict[str, Any]:
        return {"index": self.index, "key": self.key,
                "attempts": self.attempts, "reason": self.reason,
                "detail": self.detail}


@dataclass
class ExecutionOutcome:
    """What one supervised run produced, indexed by submission order."""

    results: Dict[int, Any] = field(default_factory=dict)
    failures: List[CellFailure] = field(default_factory=list)
    #: attempts spent per index (1 = succeeded first try)
    attempts: Dict[int, int] = field(default_factory=dict)
    #: workers respawned after a crash, timeout kill, or dead dispatch
    respawns: int = 0
    #: the batch was abandoned (group cancel or pool shutdown) before
    #: every cell landed; partial results/failures are still populated
    cancelled: bool = False

    @property
    def retries(self) -> int:
        """Total extra attempts beyond each cell's first."""
        return sum(count - 1 for count in self.attempts.values())


@dataclass
class _Task:
    index: int
    key: str
    item: Any
    attempt: int = 0
    not_before: float = 0.0


class _Worker:
    """One supervised child process and its dedicated pipe."""

    def __init__(self, ctx, fn: Callable[[Any], Any],
                 chaos: Optional[ExecutorChaos]) -> None:
        self.conn, child_conn = ctx.Pipe()
        self.process = ctx.Process(target=_worker_main,
                                   args=(child_conn, fn, chaos),
                                   daemon=True)
        self.process.start()
        child_conn.close()
        self.task: Optional[_Task] = None
        self.deadline: Optional[float] = None

    def kill(self) -> None:
        """Tear the worker down hard; never leaves a zombie behind."""
        try:
            self.process.terminate()
            self.process.join(0.5)
            if self.process.is_alive():
                self.process.kill()
                self.process.join(0.5)
        finally:
            self.conn.close()


def _worker_main(conn, fn: Callable[[Any], Any],
                 chaos: Optional[ExecutorChaos]) -> None:
    """Child loop: receive (index, key, attempt, item), run, reply.

    The supervisor owns shutdown: SIGINT is ignored here so a Ctrl-C
    in the parent tears workers down through the supervision loop
    instead of racing interrupted children, and SIGTERM is reset to
    its default so ``Process.terminate()`` kills quietly even when
    the parent has remapped it (``repro.cli.graceful_sigterm``).
    Exceptions from the cell function become ``("err", ...)`` replies;
    only worker death or an injected crash breaks the pipe.
    """
    try:
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        signal.signal(signal.SIGTERM, signal.SIG_DFL)
    except ValueError:  # pragma: no cover - non-main-thread harness
        pass
    while True:
        try:
            index, key, attempt, item = conn.recv()
        except (EOFError, OSError):
            return
        kind = chaos.draw(key, attempt) if chaos is not None else None
        if kind == "crash":
            os._exit(_CHAOS_EXIT)
        if kind == "hang":
            time.sleep(chaos.hang_seconds)
        try:
            if kind == "flaky":
                raise ChaosError(f"injected transient failure "
                                 f"(attempt {attempt})")
            if kind == "corrupt":
                result: Any = "\x00chaos-corrupted-result"
            elif kind == "oversize":
                result = {"key": key,
                          "chaos_padding": "x" * chaos.oversize_bytes}
            else:
                result = fn(item)
            conn.send(("ok", index, result))
        except Exception as err:  # noqa: BLE001 - forwarded, not hidden
            conn.send(("err", index, f"{type(err).__name__}: {err}"))


class SupervisedExecutor:
    """Run a function over items with supervision, retry, quarantine.

    ``validate(result, key)`` may return an error string to reject a
    landed result (treated as a failed attempt -- this is how the
    sweep runner turns corrupted or oversized records into retries).
    ``procs <= 1`` with no chaos and no timeout runs inline -- same
    retry and quarantine semantics, zero multiprocessing overhead --
    matching the old serial ``parallel_map`` fast path.
    """

    def __init__(self, fn: Callable[[Any], Any], *, procs: int = 1,
                 cell_timeout: Optional[float] = None,
                 max_retries: int = DEFAULT_MAX_RETRIES,
                 backoff_base: float = DEFAULT_BACKOFF_BASE,
                 backoff_cap: float = DEFAULT_BACKOFF_CAP,
                 chaos: Optional[ExecutorChaos] = None,
                 validate: Optional[
                     Callable[[Any, str], Optional[str]]] = None) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if cell_timeout is not None and cell_timeout <= 0:
            raise ValueError("cell_timeout must be positive, got "
                             f"{cell_timeout}")
        self.fn = fn
        self.procs = procs
        self.cell_timeout = cell_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.chaos = chaos
        self.validate = validate

    # -- public ----------------------------------------------------------

    def run(self, items: Sequence[Any],
            keys: Optional[Sequence[str]] = None,
            on_result: Optional[Callable[[int, str, Any], None]] = None,
            on_dispatch: Optional[Callable[[int, str, int], None]] = None,
            ) -> ExecutionOutcome:
        """Execute every item; stream completions through ``on_result``.

        ``on_result(index, key, result)`` fires as each cell lands (in
        completion order, not submission order); exceptions it raises
        propagate after the children are torn down, so a caller-side
        interrupt cannot orphan workers.  ``on_dispatch(index, key,
        attempt)`` fires as each attempt *starts* (``attempt`` is
        0-based), which is how the sweep runner journals "began paying
        for this cell" before the worker can crash.
        """
        work = list(items)
        if keys is None:
            keys = [str(index) for index in range(len(work))]
        elif len(keys) != len(work):
            raise ValueError(f"{len(work)} item(s) but {len(keys)} "
                             "key(s)")
        outcome = ExecutionOutcome()
        if not work:
            return outcome
        if (self.procs <= 1 and self.chaos is None
                and self.cell_timeout is None):
            self._run_inline(work, keys, on_result, on_dispatch, outcome)
            return outcome
        self._run_supervised(work, keys, on_result, on_dispatch, outcome)
        return outcome

    # -- serial fast path ------------------------------------------------

    def _run_inline(self, work, keys, on_result, on_dispatch,
                    outcome: ExecutionOutcome) -> None:
        for index, (item, key) in enumerate(zip(work, keys)):
            attempt = 0
            while True:
                outcome.attempts[index] = attempt + 1
                if on_dispatch is not None:
                    on_dispatch(index, key, attempt)
                error = None
                try:
                    result = self.fn(item)
                except Exception as err:  # noqa: BLE001 - becomes retry
                    error = ("error", f"{type(err).__name__}: {err}")
                else:
                    detail = (self.validate(result, key)
                              if self.validate else None)
                    if detail is not None:
                        error = ("bad-result", detail)
                if error is None:
                    outcome.results[index] = result
                    if on_result is not None:
                        on_result(index, key, result)
                    break
                if attempt >= self.max_retries:
                    outcome.failures.append(CellFailure(
                        index=index, key=key, attempts=attempt + 1,
                        reason=error[0], detail=error[1]))
                    break
                attempt += 1
                time.sleep(backoff_delay(attempt, self.backoff_base,
                                         self.backoff_cap))

    # -- supervised pool -------------------------------------------------

    def _run_supervised(self, work, keys, on_result, on_dispatch,
                        outcome: ExecutionOutcome) -> None:
        ctx = pool_context()
        pending: List[_Task] = [
            _Task(index=index, key=key, item=item)
            for index, (item, key) in enumerate(zip(work, keys))]
        workers: List[_Worker] = []
        try:
            for _ in range(max(1, min(self.procs, len(pending)))):
                workers.append(_Worker(ctx, self.fn, self.chaos))
            while pending or any(w.task is not None for w in workers):
                now = time.monotonic()
                self._dispatch(workers, pending, outcome, ctx, now,
                               on_dispatch)
                busy = [w for w in workers if w.task is not None]
                if not busy:
                    # nothing in flight: the head of the queue is
                    # backing off; sleep just past its eligibility
                    wake = min(task.not_before for task in pending)
                    time.sleep(max(0.0, min(wake - now, self.backoff_cap))
                               or _TICK)
                    continue
                ready = connection.wait([w.conn for w in busy],
                                        timeout=_TICK)
                for worker in busy:
                    if worker.conn in ready:
                        self._collect(worker, workers, pending, outcome,
                                      ctx, on_result)
                self._reap_timeouts(workers, pending, outcome, ctx)
        finally:
            for worker in workers:
                worker.kill()

    def _spawn_replacement(self, workers: List[_Worker], dead: _Worker,
                           outcome: ExecutionOutcome, ctx) -> None:
        dead.kill()
        workers[workers.index(dead)] = _Worker(ctx, self.fn, self.chaos)
        outcome.respawns += 1

    def _dispatch(self, workers, pending: List[_Task],
                  outcome: ExecutionOutcome, ctx, now: float,
                  on_dispatch=None) -> None:
        for worker in workers:
            if worker.task is not None:
                continue
            eligible = next((task for task in pending
                             if task.not_before <= now), None)
            if eligible is None:
                return
            pending.remove(eligible)
            outcome.attempts[eligible.index] = eligible.attempt + 1
            try:
                worker.conn.send((eligible.index, eligible.key,
                                  eligible.attempt, eligible.item))
            except (BrokenPipeError, OSError):
                # the idle worker died between cells: replace it and
                # put the cell back without charging its budget
                pending.insert(0, eligible)
                self._spawn_replacement(workers, worker, outcome, ctx)
                return
            if on_dispatch is not None:
                on_dispatch(eligible.index, eligible.key, eligible.attempt)
            worker.task = eligible
            worker.deadline = (now + self.cell_timeout
                               if self.cell_timeout is not None else None)

    def _collect(self, worker: _Worker, workers, pending, outcome,
                 ctx, on_result) -> None:
        """Drain one readable worker pipe: a result, an error, or EOF."""
        task = worker.task
        try:
            message = worker.conn.recv()
        except (EOFError, OSError):
            # the worker died mid-cell: pipe EOF first, exitcode for
            # the report detail; respawn and charge the attempt
            worker.process.join(0.5)
            code = worker.process.exitcode
            self._spawn_replacement(workers, worker, outcome, ctx)
            self._retry_or_quarantine(
                task, pending, outcome, reason="worker-crash",
                detail=f"worker exited with code {code}")
            return
        worker.task = None
        worker.deadline = None
        status, index, payload = message
        if index != task.index:  # pragma: no cover - protocol guard
            raise RuntimeError(f"worker answered cell {index}, "
                               f"expected {task.index}")
        if status == "err":
            self._retry_or_quarantine(task, pending, outcome,
                                      reason="error", detail=payload)
            return
        detail = (self.validate(payload, task.key)
                  if self.validate else None)
        if detail is not None:
            self._retry_or_quarantine(task, pending, outcome,
                                      reason="bad-result", detail=detail)
            return
        outcome.results[task.index] = payload
        if on_result is not None:
            on_result(task.index, task.key, payload)

    def _reap_timeouts(self, workers, pending, outcome, ctx) -> None:
        if self.cell_timeout is None:
            return
        now = time.monotonic()
        for worker in list(workers):
            if worker.task is None or worker.deadline is None:
                continue
            if now < worker.deadline:
                continue
            task = worker.task
            self._spawn_replacement(workers, worker, outcome, ctx)
            self._retry_or_quarantine(
                task, pending, outcome, reason="timeout",
                detail=f"killed after {self.cell_timeout:g}s wall clock")

    def _retry_or_quarantine(self, task: _Task, pending: List[_Task],
                             outcome: ExecutionOutcome, *, reason: str,
                             detail: str) -> None:
        if task.attempt >= self.max_retries:
            outcome.failures.append(CellFailure(
                index=task.index, key=task.key,
                attempts=task.attempt + 1, reason=reason, detail=detail))
            return
        task.attempt += 1
        task.not_before = time.monotonic() + backoff_delay(
            task.attempt, self.backoff_base, self.backoff_cap)
        pending.append(task)


# -- shared persistent pool ----------------------------------------------


class _PoolBatch:
    """Bookkeeping for one :meth:`PoolSupervisor.run_batch` ticket."""

    def __init__(self, group: str, total: int,
                 on_result: Optional[Callable[[int, str, Any], None]],
                 on_dispatch: Optional[Callable[[int, str, int], None]],
                 ) -> None:
        self.group = group
        self.on_result = on_result
        self.on_dispatch = on_dispatch
        self.outcome = ExecutionOutcome()
        self.remaining = total
        self.cancelled = False
        self.done = threading.Event()
        #: a callback exception to re-raise in the submitting thread
        self.error: Optional[BaseException] = None


@dataclass
class _PoolTask(_Task):
    batch: Optional[_PoolBatch] = None


class PoolSupervisor:
    """One persistent supervised worker pool shared by concurrent jobs.

    The multi-tenant sibling of :class:`SupervisedExecutor`: the same
    supervision contract (streamed completions, per-cell timeout kill,
    crash respawn, capped backoff-retry, quarantine), but the workers
    outlive any single batch and serve every caller:

    * **dynamic submission** -- :meth:`run_batch` may be called
      concurrently from many job threads; each call blocks until *its*
      cells settle while the pool interleaves everyone's work;
    * **fair interleaving** -- pending cells queue per group (job id)
      and dispatch round-robin across groups, so a thousand-cell job
      cannot starve a two-cell one;
    * **group cancellation** -- :meth:`cancel_group` drops a group's
      queued cells immediately and discards its in-flight results as
      they land; affected batches return with ``outcome.cancelled``.

    One background thread owns the workers and all supervision;
    submitting threads only enqueue tasks and wait on their batch
    ticket, so no lock is held across a blocking operation.
    """

    def __init__(self, fn: Callable[[Any], Any], *, procs: int = 1,
                 cell_timeout: Optional[float] = None,
                 max_retries: int = DEFAULT_MAX_RETRIES,
                 backoff_base: float = DEFAULT_BACKOFF_BASE,
                 backoff_cap: float = DEFAULT_BACKOFF_CAP,
                 chaos: Optional[ExecutorChaos] = None,
                 validate: Optional[
                     Callable[[Any, str], Optional[str]]] = None) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if cell_timeout is not None and cell_timeout <= 0:
            raise ValueError("cell_timeout must be positive, got "
                             f"{cell_timeout}")
        self.fn = fn
        self.procs = max(1, procs)
        self.cell_timeout = cell_timeout
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.chaos = chaos
        self.validate = validate
        self._lock = threading.Lock()
        #: group id -> FIFO of queued tasks; dict order is the
        #: round-robin rotation (served group moves to the back)
        self._queues: "OrderedDict[str, List[_PoolTask]]" = OrderedDict()
        self._batches: Set[_PoolBatch] = set()
        self._wake = threading.Event()
        self._stopping = False
        self._thread: Optional[threading.Thread] = None

    # -- public ----------------------------------------------------------

    def start(self) -> "PoolSupervisor":
        """Spawn the workers and the supervision thread (idempotent)."""
        with self._lock:
            if self._thread is not None:
                return self
            if self._stopping:
                raise RuntimeError("pool supervisor already closed")
            self._thread = threading.Thread(
                target=self._run, name="pool-supervisor", daemon=True)
            self._thread.start()
        return self

    def close(self) -> None:
        """Kill the workers; blocked :meth:`run_batch` calls return
        with ``outcome.cancelled`` set."""
        with self._lock:
            self._stopping = True
            thread = self._thread
        self._wake.set()
        if thread is not None:
            thread.join()

    def __enter__(self) -> "PoolSupervisor":
        return self.start()

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    def run_batch(self, items: Sequence[Any],
                  keys: Optional[Sequence[str]] = None, *,
                  group: str = "",
                  on_result: Optional[Callable[[int, str, Any],
                                               None]] = None,
                  on_dispatch: Optional[Callable[[int, str, int],
                                                 None]] = None,
                  ) -> ExecutionOutcome:
        """Run one batch through the shared pool; blocks until settled.

        The per-batch contract matches :meth:`SupervisedExecutor.run`:
        ``on_result(index, key, result)`` streams completions (indexed
        by this batch's submission order), ``on_dispatch(index, key,
        attempt)`` fires as attempts start, and an exception either
        hook raises cancels the rest of the batch and re-raises here,
        in the submitting thread.  ``group`` names the fairness lane
        (one per job); concurrent batches in different groups
        interleave round-robin.
        """
        work = list(items)
        if keys is None:
            keys = [str(index) for index in range(len(work))]
        elif len(keys) != len(work):
            raise ValueError(f"{len(work)} item(s) but {len(keys)} "
                             "key(s)")
        batch = _PoolBatch(group, len(work), on_result, on_dispatch)
        if not work:
            return batch.outcome
        with self._lock:
            if self._stopping or self._thread is None:
                batch.outcome.cancelled = True
                return batch.outcome
            lane = self._queues.setdefault(group, [])
            for index, (item, key) in enumerate(zip(work, keys)):
                lane.append(_PoolTask(index=index, key=key, item=item,
                                      batch=batch))
            self._batches.add(batch)
        self._wake.set()
        batch.done.wait()
        with self._lock:
            self._batches.discard(batch)
        if batch.error is not None:
            raise batch.error
        return batch.outcome

    def cancel_group(self, group: str) -> int:
        """Cancel every batch in ``group``; returns cells dropped
        before dispatch.  In-flight cells finish in their workers but
        land discarded (never delivered to ``on_result``)."""
        finish: List[_PoolBatch] = []
        with self._lock:
            lane = self._queues.pop(group, None) or []
            for batch in self._batches:
                if batch.group == group and not batch.cancelled:
                    batch.cancelled = True
                    batch.outcome.cancelled = True
            for task in lane:
                task.batch.remaining -= 1
            finish = [batch for batch in self._batches
                      if batch.group == group and batch.remaining <= 0]
        for batch in finish:
            batch.done.set()
        return len(lane)

    # -- supervision thread ----------------------------------------------

    def _run(self) -> None:
        ctx = pool_context()
        workers = [_Worker(ctx, self.fn, self.chaos)
                   for _ in range(self.procs)]
        try:
            while not self._stopping:
                now = time.monotonic()
                self._dispatch(workers, ctx, now)
                busy = [w for w in workers if w.task is not None]
                if not busy:
                    self._idle_wait(now)
                    continue
                ready = connection.wait([w.conn for w in busy],
                                        timeout=_TICK)
                for worker in busy:
                    if worker.conn in ready:
                        self._collect(worker, workers, ctx)
                self._reap_timeouts(workers, ctx)
        finally:
            for worker in workers:
                worker.kill()
            # unblock every submitter: whatever had not settled when
            # the pool died is reported cancelled, never hung
            with self._lock:
                self._queues.clear()
                batches = list(self._batches)
            for batch in batches:
                batch.outcome.cancelled = True
                batch.done.set()

    def _idle_wait(self, now: float) -> None:
        """Nothing in flight: sleep until new work or backoff expiry."""
        with self._lock:
            pending = [task for lane in self._queues.values()
                       for task in lane]
        if pending:
            wake = min(task.not_before for task in pending)
            delay = max(0.0, min(wake - now, self.backoff_cap)) or _TICK
        else:
            delay = 0.05
        self._wake.wait(delay)
        self._wake.clear()

    def _next_task(self, now: float) -> Optional[_PoolTask]:
        """Pop the next eligible task, round-robin across groups."""
        with self._lock:
            for group in list(self._queues):
                lane = self._queues[group]
                # purge tasks whose batch was cancelled via a callback
                # error (cancel_group removes whole lanes itself)
                dead = [task for task in lane if task.batch.cancelled]
                for task in dead:
                    lane.remove(task)
                    self._settle_locked(task.batch)
                task = next((task for task in lane
                             if task.not_before <= now), None)
                if task is None:
                    if not lane:
                        del self._queues[group]
                    continue
                lane.remove(task)
                if lane:
                    self._queues.move_to_end(group)
                else:
                    del self._queues[group]
                return task
        return None

    def _settle_locked(self, batch: _PoolBatch) -> None:
        """Account one settled cell; caller holds ``self._lock``."""
        batch.remaining -= 1
        if batch.remaining <= 0:
            batch.done.set()

    def _settle(self, batch: _PoolBatch) -> None:
        with self._lock:
            self._settle_locked(batch)

    def _callback(self, batch: _PoolBatch, hook: Callable[..., None],
                  *args: Any) -> None:
        """Run a batch hook; an exception cancels the batch and is
        re-raised in its submitting thread."""
        try:
            hook(*args)
        except BaseException as err:  # noqa: BLE001 - forwarded
            if batch.error is None:
                batch.error = err
            self._cancel_batch(batch)

    def _cancel_batch(self, batch: _PoolBatch) -> None:
        finish = False
        with self._lock:
            if not batch.cancelled:
                batch.cancelled = True
                batch.outcome.cancelled = True
            lane = self._queues.get(batch.group)
            if lane is not None:
                mine = [task for task in lane if task.batch is batch]
                for task in mine:
                    lane.remove(task)
                    batch.remaining -= 1
                if not lane:
                    del self._queues[batch.group]
            finish = batch.remaining <= 0
        if finish:
            batch.done.set()

    def _spawn_replacement(self, workers: List[_Worker], dead: _Worker,
                           batch: Optional[_PoolBatch], ctx) -> None:
        dead.kill()
        workers[workers.index(dead)] = _Worker(ctx, self.fn, self.chaos)
        if batch is not None:
            batch.outcome.respawns += 1

    def _dispatch(self, workers: List[_Worker], ctx, now: float) -> None:
        for worker in workers:
            if worker.task is not None:
                continue
            task = self._next_task(now)
            if task is None:
                return
            batch = task.batch
            batch.outcome.attempts[task.index] = task.attempt + 1
            try:
                worker.conn.send((task.index, task.key, task.attempt,
                                  task.item))
            except (BrokenPipeError, OSError):
                # idle worker died between cells: replace it and requeue
                # the cell at the front without charging its budget
                with self._lock:
                    self._queues.setdefault(batch.group,
                                            []).insert(0, task)
                self._spawn_replacement(workers, worker, batch, ctx)
                return
            if batch.on_dispatch is not None:
                self._callback(batch, batch.on_dispatch, task.index,
                               task.key, task.attempt)
            worker.task = task
            worker.deadline = (now + self.cell_timeout
                               if self.cell_timeout is not None else None)

    def _collect(self, worker: _Worker, workers: List[_Worker],
                 ctx) -> None:
        task = worker.task
        assert isinstance(task, _PoolTask) and task.batch is not None
        batch = task.batch
        try:
            message = worker.conn.recv()
        except (EOFError, OSError):
            worker.process.join(0.5)
            code = worker.process.exitcode
            self._spawn_replacement(workers, worker, batch, ctx)
            self._settle_failure(task, reason="worker-crash",
                                 detail=f"worker exited with code {code}")
            return
        worker.task = None
        worker.deadline = None
        status, index, payload = message
        if index != task.index:  # pragma: no cover - protocol guard
            raise RuntimeError(f"worker answered cell {index}, "
                               f"expected {task.index}")
        if batch.cancelled:
            self._settle(batch)
            return
        if status == "err":
            self._settle_failure(task, reason="error", detail=payload)
            return
        detail = (self.validate(payload, task.key)
                  if self.validate else None)
        if detail is not None:
            self._settle_failure(task, reason="bad-result", detail=detail)
            return
        batch.outcome.results[task.index] = payload
        if batch.on_result is not None:
            self._callback(batch, batch.on_result, task.index, task.key,
                           payload)
        self._settle(batch)

    def _reap_timeouts(self, workers: List[_Worker], ctx) -> None:
        if self.cell_timeout is None:
            return
        now = time.monotonic()
        for worker in list(workers):
            if worker.task is None or worker.deadline is None:
                continue
            if now < worker.deadline:
                continue
            task = worker.task
            assert isinstance(task, _PoolTask)
            self._spawn_replacement(workers, worker, task.batch, ctx)
            self._settle_failure(
                task, reason="timeout",
                detail=f"killed after {self.cell_timeout:g}s wall clock")

    def _settle_failure(self, task: _PoolTask, *, reason: str,
                        detail: str) -> None:
        batch = task.batch
        if batch.cancelled:
            self._settle(batch)
            return
        if task.attempt >= self.max_retries:
            batch.outcome.failures.append(CellFailure(
                index=task.index, key=task.key,
                attempts=task.attempt + 1, reason=reason, detail=detail))
            self._settle(batch)
            return
        task.attempt += 1
        task.not_before = time.monotonic() + backoff_delay(
            task.attempt, self.backoff_base, self.backoff_cap)
        with self._lock:
            if batch.cancelled:
                self._settle_locked(batch)
                return
            self._queues.setdefault(batch.group, []).append(task)
        self._wake.set()
