"""Typed, schema-versioned sweep events.

One vocabulary for "what just happened in a sweep", consumed the same
way everywhere: batch callbacks (``run_sweep(options.on_event)``),
in-process service subscriptions (:meth:`repro.lab.service.SweepService
.subscribe`), and the newline-delimited JSON stream the ``serve``
daemon sends to ``watch`` clients.  The taxonomy:

``submitted``
    a job was accepted and assigned an id (:class:`JobSubmitted`);
``cell-start``
    an attempt at simulating one cell began (:class:`CellStarted`);
``cell-done``
    a cell landed, paid for by this job (:class:`CellDone`, carrying
    the full record -- the event stream is the progress API);
``cell-shared``
    a cell was served without simulating it here: from the warm cache
    (``via="cache"``) or from another job's or process's in-flight
    work (``via="concurrent"``) (:class:`CellShared`);
``cell-failed``
    a cell exhausted its retry budget and was quarantined
    (:class:`CellFailed`);
``job-done``
    the job finished -- completed, degraded, failed, cancelled, or
    interrupted by a drain (:class:`JobDone`).

Events are frozen dataclasses with a byte-stable canonical JSON form
(:meth:`SweepEvent.to_line` / :func:`event_from_json` round-trip to
identical bytes) and carry :data:`EVENT_SCHEMA_VERSION`, so a client
from a different release detects the mismatch instead of mis-parsing.

The pre-event API -- ``run_sweep(on_progress=callable(key, record))``
-- is kept for one release through :func:`adapt_progress_callback`,
which replays exactly the calls the old hook received.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Callable, ClassVar, Dict, Mapping, Optional, Type

from .record import canonical_dumps

#: bump when the event layout below changes shape
EVENT_SCHEMA_VERSION = 1

#: kind -> event class, populated by ``__init_subclass__``
_EVENT_KINDS: Dict[str, Type["SweepEvent"]] = {}


class EventDecodeError(ValueError):
    """A JSON object could not be decoded into a known sweep event."""


@dataclass(frozen=True, kw_only=True)
class SweepEvent:
    """Base of every sweep event: job identity plus per-job sequence.

    ``seq`` numbers events within one job (0-based, dense), assigned by
    whoever emits them; a subscriber that sees a gap knows its queue
    overflowed and events were dropped.
    """

    kind: ClassVar[str] = ""

    job: str = ""
    seq: int = 0

    def __init_subclass__(cls, **kwargs: Any) -> None:
        super().__init_subclass__(**kwargs)
        if cls.kind:
            _EVENT_KINDS[cls.kind] = cls

    def to_json(self) -> Dict[str, Any]:
        """JSON-able form; the inverse of :func:`event_from_json`."""
        data: Dict[str, Any] = {
            "schema_version": EVENT_SCHEMA_VERSION,
            "event": self.kind,
        }
        for field in fields(self):
            value = getattr(self, field.name)
            data[field.name] = dict(value) if isinstance(value, Mapping) \
                else value
        return data

    def to_line(self) -> str:
        """Canonical single-line encoding (byte-stable round trip)."""
        return canonical_dumps(self.to_json())


@dataclass(frozen=True, kw_only=True)
class JobSubmitted(SweepEvent):
    """A job was accepted: its spec name and how many cells it expands to."""

    kind: ClassVar[str] = "submitted"

    spec: str = ""
    cells: int = 0


@dataclass(frozen=True, kw_only=True)
class CellStarted(SweepEvent):
    """One attempt at simulating a cell began (``attempt`` is 1-based)."""

    kind: ClassVar[str] = "cell-start"

    key: str = ""
    attempt: int = 1


@dataclass(frozen=True, kw_only=True)
class CellDone(SweepEvent):
    """A cell landed, simulated and paid for by this job."""

    kind: ClassVar[str] = "cell-done"

    key: str = ""
    outcome: str = "ok"
    #: the full versioned run record (the event stream is the API)
    record: Optional[Dict[str, Any]] = None


@dataclass(frozen=True, kw_only=True)
class CellShared(SweepEvent):
    """A cell was served without simulating it in this job.

    ``via`` taxonomy: ``cache`` (warm content-addressed entry),
    ``concurrent`` (another job or sweep process simulated it while
    this job waited on its claim).
    """

    kind: ClassVar[str] = "cell-shared"

    key: str = ""
    via: str = "cache"
    record: Optional[Dict[str, Any]] = None


@dataclass(frozen=True, kw_only=True)
class CellFailed(SweepEvent):
    """A cell exhausted its retry budget and was quarantined.

    ``reason`` matches :class:`repro.lab.executor.CellFailure`:
    ``worker-crash`` / ``timeout`` / ``error`` / ``bad-result``.
    """

    kind: ClassVar[str] = "cell-failed"

    key: str = ""
    reason: str = ""
    attempts: int = 0
    detail: str = ""


@dataclass(frozen=True, kw_only=True)
class JobDone(SweepEvent):
    """The job finished; the terminal event of every job stream.

    ``status`` taxonomy: ``done`` (every cell accounted for --
    ``failed > 0`` means it completed *degraded*), ``failed`` (the
    sweep itself errored; ``error`` carries the first line),
    ``cancelled`` (client cancel), ``interrupted`` (server drain: the
    job is journaled and resumes on restart).
    """

    kind: ClassVar[str] = "job-done"

    spec: str = ""
    status: str = "done"
    hits: int = 0
    misses: int = 0
    shared: int = 0
    failed: int = 0
    error: str = ""


def event_from_json(data: Mapping[str, Any]) -> SweepEvent:
    """Decode one event object; the inverse of :meth:`SweepEvent.to_json`.

    Raises :class:`EventDecodeError` on a schema-version mismatch or an
    unknown event kind -- a client from a different release must fail
    loudly, not mis-parse.
    """
    if not isinstance(data, Mapping):
        raise EventDecodeError(f"not an event object: {type(data).__name__}")
    version = data.get("schema_version")
    if version != EVENT_SCHEMA_VERSION:
        raise EventDecodeError(
            f"event schema version {version!r} != supported "
            f"{EVENT_SCHEMA_VERSION}")
    kind = data.get("event")
    cls = _EVENT_KINDS.get(kind)
    if cls is None:
        raise EventDecodeError(f"unknown event kind {kind!r}")
    known = {field.name for field in fields(cls)}
    extras = set(data) - known - {"schema_version", "event"}
    if extras:
        raise EventDecodeError(
            f"{kind} event carries unknown field(s) {sorted(extras)}")
    try:
        return cls(**{name: data[name] for name in known if name in data})
    except TypeError as err:
        raise EventDecodeError(f"bad {kind} event: {err}") from None


def event_from_line(line: str) -> SweepEvent:
    """Decode one newline-delimited-JSON event line."""
    import json

    try:
        data = json.loads(line)
    except ValueError as err:
        raise EventDecodeError(f"undecodable event line: {err}") from None
    return event_from_json(data)


def adapt_progress_callback(
        on_progress: Callable[[str, Dict[str, Any]], None],
        ) -> Callable[[SweepEvent], None]:
    """Wrap a dict-style ``on_progress(key, record)`` hook as an
    event consumer (the one-release migration adapter).

    Replays exactly the calls the old hook received: one per landed
    record (``cell-done``) and one per cell served by a concurrent
    writer (``cell-shared`` via ``concurrent``).  Warm cache hits never
    reached the old hook, so ``via="cache"`` events are skipped.
    """
    def consume(event: SweepEvent) -> None:
        if isinstance(event, CellDone):
            on_progress(event.key, event.record)
        elif isinstance(event, CellShared) and event.via == "concurrent":
            on_progress(event.key, event.record)
    return consume


__all__ = [
    "EVENT_SCHEMA_VERSION", "CellDone", "CellFailed", "CellShared",
    "CellStarted", "EventDecodeError", "JobDone", "JobSubmitted",
    "SweepEvent", "adapt_progress_callback", "event_from_json",
    "event_from_line",
]
