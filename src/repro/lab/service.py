"""Sweep-as-a-service: a long-running, multi-client experiment server.

:class:`SweepService` is the front door the batch CLI never had: it
accepts :class:`~repro.lab.spec.SweepSpec` /
:class:`~repro.lab.spec.SweepCell` submissions from many concurrent
clients, assigns each a job id, and runs every job through the same
grid core batch sweeps use (:func:`repro.lab.runner.execute_grid`).
What the service adds over N independent ``run_sweep`` processes:

* **one shared worker pool** -- cells from all jobs interleave fairly
  (round-robin by job) across a single persistent
  :class:`~repro.lab.executor.PoolSupervisor`, so a large job cannot
  starve a small one and total worker count is bounded regardless of
  client count;
* **in-flight dedup** -- one shared :class:`~repro.lab.store.CellClaims`
  instance extends single-flight from "concurrent processes" to
  "concurrent jobs in this process": a cell another job is already
  simulating is waited on and served as ``cell-shared``, never
  recomputed, so two clients racing overlapping grids pay for the
  union exactly once;
* **typed event streams** -- every job emits schema-versioned
  :mod:`~repro.lab.events` to per-job and global subscribers (bounded
  queues: a slow subscriber drops its *oldest* events and sees the gap
  in ``seq``, it never stalls the sweep);
* **drain and resume** -- each accepted job is journaled durably under
  ``<cache>/jobs/`` until it completes; a SIGTERM drain abandons
  unfinished cells (already-landed ones are cached and journaled) and
  a restarted server rescans the directory and resubmits every
  interrupted job with ``resume=True``, recomputing nothing already
  paid for.

Three surfaces share this one implementation: the in-process Python
API (:meth:`SweepService.submit` -> :class:`JobHandle`), the
``python -m repro serve`` daemon (:class:`ServiceServer`, speaking
newline-delimited JSON over a local unix socket), and the
``submit`` / ``status`` / ``watch`` / ``cancel`` client subcommands
(built on :class:`repro.lab.client.ServiceClient`).
"""

from __future__ import annotations

import collections
import json
import pathlib
import re
import socket as socket_module
import threading
from dataclasses import dataclass, field, replace
from typing import (Any, Dict, Iterator, List, Mapping, Optional,
                    Sequence, Union)

from .cache import ResultCache
from .events import (CellDone, CellFailed, CellShared, JobDone,
                     JobSubmitted, SweepEvent)
from .executor import PoolSupervisor
from .runner import (JobCancelled, SweepOptions, SweepReport,
                     _validate_worker_record, _worker, execute_grid)
from .spec import SweepCell, SweepSpec, make_spec
from .store import (JOBS_DIR, CellClaims, ClaimPolicy, durable_write_text,
                    reap_orphan_tmps)

#: bump when the journaled job-file layout changes shape
JOB_FILE_VERSION = 1
#: bump when the request/response framing below changes shape
PROTOCOL_VERSION = 1
#: default unix-socket path the daemon listens on
DEFAULT_SOCKET = pathlib.Path(".repro-service.sock")
#: default per-subscriber event buffer (drop-oldest past this)
DEFAULT_MAX_PENDING = 1024

#: job lifecycle states (terminal: done / failed / cancelled /
#: interrupted)
JOB_STATES = ("pending", "running", "done", "failed", "cancelled",
              "interrupted")


class ServiceClosed(RuntimeError):
    """The service is not accepting submissions (closed or draining)."""


@dataclass
class _Job:
    """One accepted submission and everything the service knows about it."""

    id: str
    name: str
    cells: List[SweepCell]
    #: True when reconstituted from a journaled job file on restart
    resume: bool = False
    state: str = "pending"
    report: Optional[SweepReport] = None
    error: Optional[BaseException] = None
    #: full ordered event history (replayed to late subscribers)
    events: List[SweepEvent] = field(default_factory=list)
    next_seq: int = 0
    #: progress counters maintained by the emit path
    completed: int = 0
    failed_cells: int = 0
    user_cancelled: bool = False
    cancel: threading.Event = field(default_factory=threading.Event)
    done: threading.Event = field(default_factory=threading.Event)
    thread: Optional[threading.Thread] = None

    def summary(self) -> Dict[str, Any]:
        """The status row the ``status`` op and CLI table show."""
        return {
            "job": self.id,
            "spec": self.name,
            "state": self.state,
            "cells": len(self.cells),
            "completed": self.completed,
            "failed": self.failed_cells,
        }


class Subscription:
    """A bounded event queue feeding one subscriber.

    Backpressure contract: the sweep never waits for a subscriber.
    When more than ``max_pending`` events are waiting, the *oldest* is
    dropped (``dropped`` counts them) -- the subscriber detects the
    loss as a gap in the per-job ``seq`` numbering and can re-fetch
    state via ``status`` rather than stalling every other client.

    Iterating yields events until the stream ends: for a per-job
    subscription, after that job's terminal :class:`JobDone`; for a
    global one, when the subscription is closed.
    """

    def __init__(self, job: Optional[str] = None,
                 max_pending: int = DEFAULT_MAX_PENDING) -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.job = job
        self.max_pending = max_pending
        self.dropped = 0
        self.closed = False
        self._items: "collections.deque[SweepEvent]" = collections.deque()
        self._cond = threading.Condition()

    def push(self, event: SweepEvent) -> None:
        with self._cond:
            if self.closed:
                return
            if len(self._items) >= self.max_pending:
                self._items.popleft()
                self.dropped += 1
            self._items.append(event)
            self._cond.notify_all()

    def get(self, timeout: Optional[float] = None) -> Optional[SweepEvent]:
        """Next event, or None on timeout / closed-and-drained."""
        with self._cond:
            while not self._items and not self.closed:
                if not self._cond.wait(timeout):
                    return None
            if self._items:
                return self._items.popleft()
            return None

    def close(self) -> None:
        with self._cond:
            self.closed = True
            self._cond.notify_all()

    def __iter__(self) -> Iterator[SweepEvent]:
        while True:
            event = self.get()
            if event is None:
                return
            yield event
            if self.job is not None and isinstance(event, JobDone):
                return


class JobHandle:
    """A client's view of one submitted job."""

    def __init__(self, service: "SweepService", job: _Job) -> None:
        self._service = service
        self._job = job

    @property
    def job_id(self) -> str:
        return self._job.id

    @property
    def state(self) -> str:
        return self._job.state

    def done(self) -> bool:
        return self._job.done.is_set()

    def result(self, timeout: Optional[float] = None) -> SweepReport:
        """Block until the job finishes; return its report.

        Raises :class:`~repro.lab.runner.JobCancelled` for a cancelled
        or drain-interrupted job, the job's own exception for a failed
        one, and :class:`TimeoutError` past ``timeout``.
        """
        if not self._job.done.wait(timeout):
            raise TimeoutError(
                f"job {self._job.id} still {self._job.state!r} after "
                f"{timeout:g}s")
        if self._job.state == "done":
            assert self._job.report is not None
            return self._job.report
        if self._job.state == "cancelled":
            raise JobCancelled(f"job {self._job.id} was cancelled")
        if self._job.state == "interrupted":
            raise JobCancelled(
                f"job {self._job.id} was interrupted by a drain; it is "
                "journaled and will resume when a service restarts on "
                "the same cache")
        assert self._job.error is not None
        raise self._job.error

    def events(self, *, replay: bool = True,
               max_pending: int = DEFAULT_MAX_PENDING) -> Subscription:
        """Subscribe to this job's event stream (iterate to consume)."""
        return self._service.subscribe(job=self._job.id, replay=replay,
                                       max_pending=max_pending)

    def cancel(self) -> bool:
        return self._service.cancel(self._job.id)


class SweepService:
    """The long-running sweep server (see the module docstring).

    ``inline=True`` builds the degenerate one-shot service
    :func:`~repro.lab.runner.run_sweep` wraps: no pool, no shared
    claims, no threads -- ``submit`` executes the grid synchronously on
    the caller's thread with exactly the semantics the batch API always
    had (KeyboardInterrupt propagation included), while still flowing
    through the same submit/emit/job-lifecycle code as the server.
    """

    def __init__(self, options: Optional[SweepOptions] = None, *,
                 inline: bool = False) -> None:
        self.options = options or SweepOptions()
        self.cache: Optional[ResultCache] = None
        self._inline = inline
        self._jobs: "collections.OrderedDict[str, _Job]" = \
            collections.OrderedDict()
        self._subs: List[Subscription] = []
        self._lock = threading.RLock()
        self._counter = 1
        self._running = False
        self._draining = False
        self._pool: Optional[PoolSupervisor] = None
        self._claims: Optional[CellClaims] = None

    # -- lifecycle -------------------------------------------------------

    def start(self) -> "SweepService":
        """Bring the service up; resumes any journaled jobs (idempotent)."""
        if self._running:
            return self
        if self._inline:
            self._running = True
            return self
        options = self.options
        cache = options.cache
        if cache is None:
            if options.cache_dir is None:
                raise ValueError(
                    "a SweepService needs the result cache: jobs dedup, "
                    "journal, and resume through it")
            cache = ResultCache(pathlib.Path(options.cache_dir))
        self.cache = cache
        (cache.root / JOBS_DIR).mkdir(parents=True, exist_ok=True)
        reap_orphan_tmps(cache.root)
        if options.single_flight:
            self._claims = CellClaims(cache.root,
                                      options.claim_policy or ClaimPolicy())
        self._pool = PoolSupervisor(
            _worker, procs=options.procs,
            cell_timeout=options.cell_timeout,
            max_retries=options.max_retries, chaos=options.chaos,
            validate=_validate_worker_record).start()
        self._counter = self._next_counter()
        self._running = True
        self._resume_journaled_jobs()
        return self

    def drain(self) -> List[str]:
        """Stop accepting work; interrupt running jobs, keep their
        journaled job files so a restarted service resumes them.
        Returns the interrupted job ids."""
        self._draining = True
        with self._lock:
            jobs = list(self._jobs.values())
        interrupted = []
        for job in jobs:
            if not job.done.is_set():
                interrupted.append(job.id)
                job.cancel.set()
        if self._pool is not None:
            self._pool.close()
        for job in jobs:
            if job.thread is not None:
                job.thread.join(timeout=30)
        return interrupted

    def close(self) -> None:
        """Drain, then release every resource (idempotent)."""
        if not self._running:
            return
        if self._inline:
            self._running = False
            return
        self.drain()
        if self._claims is not None:
            self._claims.close()
            self._claims = None
        with self._lock:
            subs = list(self._subs)
            self._subs.clear()
        for sub in subs:
            sub.close()
        self._running = False

    def __enter__(self) -> "SweepService":
        return self.start()

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    # -- submission ------------------------------------------------------

    def submit(self, spec: Union[SweepSpec, Sequence[SweepCell]], *,
               job_id: Optional[str] = None,
               resume: bool = False) -> JobHandle:
        """Accept one job; returns immediately with its handle.

        ``spec`` is a :class:`SweepSpec` or a bare cell sequence.  The
        job is journaled durably before it runs, so an accepted job
        survives a server crash or drain.
        """
        if not self._running:
            raise ServiceClosed("service is not started")
        if self._draining:
            raise ServiceClosed("service is draining; resubmit to its "
                                "successor")
        if isinstance(spec, SweepSpec):
            name, cells = spec.name, spec.cells()
            spec_json: Dict[str, Any] = spec.to_json()
        else:
            cells = list(spec)
            name = "cells"
            spec_json = {"cells": [cell.config() for cell in cells]}
        with self._lock:
            if job_id is None:
                job_id = f"job-{self._counter:06d}"
                self._counter += 1
            if job_id in self._jobs:
                raise ValueError(f"job id {job_id!r} already exists")
            job = _Job(id=job_id, name=name, cells=cells, resume=resume)
            self._jobs[job_id] = job
        if not self._inline:
            durable_write_text(self._job_path(job_id), json.dumps(
                {"job_file_version": JOB_FILE_VERSION, "job": job_id,
                 "spec": spec_json}, sort_keys=True) + "\n")
        self._emit(job, JobSubmitted(spec=name, cells=len(cells)))
        if self._inline:
            # batch mode: run on the caller's thread, propagate its
            # exceptions (the run_sweep contract)
            self._run_job(job)
            return JobHandle(self, job)
        job.thread = threading.Thread(target=self._run_job, args=(job,),
                                      name=f"sweep-{job_id}", daemon=True)
        job.thread.start()
        return JobHandle(self, job)

    def cancel(self, job_id: str) -> bool:
        """Cancel one job; False if it had already finished."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        if job.done.is_set():
            return False
        job.user_cancelled = True
        job.cancel.set()
        if self._pool is not None:
            self._pool.cancel_group(job_id)
        return True

    def status(self, job_id: Optional[str] = None) -> List[Dict[str, Any]]:
        """Status rows for one job or (None) all, submission order."""
        with self._lock:
            if job_id is not None:
                if job_id not in self._jobs:
                    raise KeyError(f"unknown job {job_id!r}")
                return [self._jobs[job_id].summary()]
            return [job.summary() for job in self._jobs.values()]

    def handle(self, job_id: str) -> JobHandle:
        """The handle of an already-submitted job."""
        with self._lock:
            job = self._jobs.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        return JobHandle(self, job)

    def subscribe(self, job: Optional[str] = None, *, replay: bool = True,
                  max_pending: int = DEFAULT_MAX_PENDING) -> Subscription:
        """Attach an event subscriber: one job's stream, or global.

        ``replay`` (per-job only) first delivers the job's history, so
        a late ``watch`` still sees every event; the global stream is
        live-only.
        """
        sub = Subscription(job, max_pending)
        with self._lock:
            if job is not None:
                target = self._jobs.get(job)
                if target is None:
                    raise KeyError(f"unknown job {job!r}")
                if replay:
                    # under the service lock: emitters also take it to
                    # assign seq, so replay-then-attach cannot skip or
                    # duplicate an event
                    for event in target.events:
                        sub.push(event)
            self._subs.append(sub)
        return sub

    # -- internals -------------------------------------------------------

    def _emit(self, job: _Job, event: SweepEvent) -> None:
        with self._lock:
            event = replace(event, job=job.id, seq=job.next_seq)
            job.next_seq += 1
            job.events.append(event)
            if isinstance(event, (CellDone, CellShared)):
                job.completed += 1
            elif isinstance(event, CellFailed):
                job.failed_cells += 1
            self._subs = [sub for sub in self._subs if not sub.closed]
            subs = [sub for sub in self._subs
                    if sub.job is None or sub.job == job.id]
        for sub in subs:
            sub.push(event)
        hook = self.options.on_event
        if hook is not None:
            # inline mode: a raising hook aborts the sweep exactly as
            # the old on_progress did; server mode: it fails the job
            hook(event)

    def _run_job(self, job: _Job) -> None:
        job.state = "running"
        options = self.options
        if not self._inline:
            # server jobs always share the service's cache, keep their
            # journal trail (the dedup accounting clients read), and
            # resume journaled grids without clearing them
            options = replace(options, cache=self.cache, cache_dir=None,
                              keep_journal=True, resume=job.resume,
                              on_event=None)
        try:
            report = execute_grid(
                job.name, job.cells, options,
                emit=lambda event: self._emit(job, event),
                supervisor=self._pool, claims=self._claims,
                cancel=job.cancel, group=job.id)
        except JobCancelled:
            interrupted = self._draining and not job.user_cancelled
            job.state = "interrupted" if interrupted else "cancelled"
            if not interrupted:
                # a drain keeps the job file (the restart will resume
                # it); an explicit cancel is a client decision, so the
                # file goes too
                self._remove_job_file(job)
            self._emit(job, JobDone(spec=job.name, status=job.state))
            job.done.set()
            if self._inline:
                raise
        except BaseException as err:  # noqa: BLE001 - recorded, re-raised
            job.state = "failed"
            job.error = err
            self._remove_job_file(job)
            text = str(err).splitlines()[0] if str(err) else ""
            self._emit(job, JobDone(spec=job.name, status="failed",
                                    error=text or type(err).__name__))
            job.done.set()
            if self._inline:
                raise
        else:
            job.state = "done"
            job.report = report
            self._remove_job_file(job)
            self._emit(job, JobDone(
                spec=job.name, status="done", hits=report.hits,
                misses=report.misses,
                shared=report.notes.get("shared", 0),
                failed=len(report.failed)))
            job.done.set()

    def _job_path(self, job_id: str) -> pathlib.Path:
        assert self.cache is not None
        return self.cache.root / JOBS_DIR / f"{job_id}.json"

    def _remove_job_file(self, job: _Job) -> None:
        if self._inline or self.cache is None:
            return
        try:
            self._job_path(job.id).unlink()
        except OSError:
            pass

    def _next_counter(self) -> int:
        """Seed job numbering past any journaled job ids, so a resumed
        job and a fresh submission can never collide."""
        assert self.cache is not None
        best = 0
        for path in (self.cache.root / JOBS_DIR).glob("job-*.json"):
            match = re.fullmatch(r"job-(\d+)", path.stem)
            if match:
                best = max(best, int(match.group(1)))
        return best + 1

    def _resume_journaled_jobs(self) -> List[str]:
        """Resubmit every job a previous server journaled but never
        finished; the cache/journal path recomputes nothing paid for."""
        assert self.cache is not None
        resumed = []
        for path in sorted((self.cache.root / JOBS_DIR).glob("*.json")):
            try:
                data = json.loads(path.read_text())
            except (OSError, ValueError):
                continue
            if (not isinstance(data, Mapping)
                    or data.get("job_file_version") != JOB_FILE_VERSION):
                continue
            job_id = data.get("job") or path.stem
            spec_data = data.get("spec") or {}
            spec: Union[SweepSpec, List[SweepCell]]
            try:
                if "cells" in spec_data:
                    spec = [SweepCell.from_config(config)
                            for config in spec_data["cells"]]
                else:
                    spec = SweepSpec.from_json(spec_data)
            except (KeyError, TypeError, ValueError):
                continue
            self.submit(spec, job_id=job_id, resume=True)
            resumed.append(job_id)
        return resumed


class ServiceServer:
    """The daemon's front door: newline-delimited JSON over a local
    unix socket.

    One JSON object per line.  Requests carry ``op``: ``ping``,
    ``submit`` (``spec``: preset name, spec object, or
    ``{"cells": [...]}``), ``status`` (optional ``job``), ``result``
    (``job``, optional ``timeout``), ``cancel`` (``job``), ``watch``
    (optional ``job`` / ``replay``).  Every reply carries ``ok``;
    ``watch`` replies once, then streams raw event lines on the same
    connection until the stream ends.  Protocol breakage is versioned:
    replies and events both carry their schema versions.
    """

    def __init__(self, service: SweepService,
                 socket_path: Union[str, pathlib.Path] = DEFAULT_SOCKET,
                 ) -> None:
        self.service = service
        self.path = pathlib.Path(socket_path)
        self._sock: Optional[socket_module.socket] = None
        self._accept_thread: Optional[threading.Thread] = None
        self._stop = threading.Event()

    def start(self) -> "ServiceServer":
        if self._sock is not None:
            return self
        if self.path.exists():
            # a dead server's socket file; binding over it needs the
            # unlink first (a live server would still hold the bind)
            self.path.unlink()
        sock = socket_module.socket(socket_module.AF_UNIX,
                                    socket_module.SOCK_STREAM)
        sock.bind(str(self.path))
        sock.listen(16)
        sock.settimeout(0.2)
        self._sock = sock
        self._accept_thread = threading.Thread(
            target=self._accept_loop, name="service-accept", daemon=True)
        self._accept_thread.start()
        return self

    def close(self) -> None:
        self._stop.set()
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
            self._accept_thread = None
        if self._sock is not None:
            self._sock.close()
            self._sock = None
        try:
            self.path.unlink()
        except OSError:
            pass

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, *_exc: Any) -> None:
        self.close()

    # -- connection handling ---------------------------------------------

    def _accept_loop(self) -> None:
        assert self._sock is not None
        while not self._stop.is_set():
            try:
                conn, _addr = self._sock.accept()
            except socket_module.timeout:
                continue
            except OSError:
                return
            threading.Thread(target=self._serve_connection, args=(conn,),
                             name="service-conn", daemon=True).start()

    def _serve_connection(self, conn: socket_module.socket) -> None:
        with conn:
            reader = conn.makefile("r", encoding="utf-8", newline="\n")
            writer = conn.makefile("w", encoding="utf-8", newline="\n")
            for line in reader:
                line = line.strip()
                if not line:
                    continue
                try:
                    request = json.loads(line)
                except ValueError:
                    if not self._reply(writer, ok=False,
                                       error="undecodable request line"):
                        return
                    continue
                if not isinstance(request, Mapping):
                    if not self._reply(writer, ok=False,
                                       error="request must be an object"):
                        return
                    continue
                try:
                    streaming = self._handle(dict(request), writer)
                except (BrokenPipeError, OSError):
                    return
                if streaming:
                    # watch owns the connection until its stream ends
                    return

    def _reply(self, writer: Any, **payload: Any) -> bool:
        payload.setdefault("protocol", PROTOCOL_VERSION)
        try:
            writer.write(json.dumps(payload, sort_keys=True) + "\n")
            writer.flush()
            return True
        except (BrokenPipeError, OSError):
            return False

    def _handle(self, request: Dict[str, Any], writer: Any) -> bool:
        """Serve one request; True when the op took over the connection."""
        op = request.get("op")
        try:
            if op == "ping":
                with self.service._lock:
                    jobs = len(self.service._jobs)
                self._reply(writer, ok=True, jobs=jobs,
                            draining=self.service._draining)
            elif op == "submit":
                handle = self.service.submit(
                    self._parse_spec(request.get("spec")))
                self._reply(writer, ok=True, job=handle.job_id,
                            cells=len(handle._job.cells))
            elif op == "status":
                self._reply(writer, ok=True,
                            jobs=self.service.status(request.get("job")))
            elif op == "cancel":
                cancelled = self.service.cancel(str(request["job"]))
                self._reply(writer, ok=True, cancelled=cancelled)
            elif op == "result":
                job_id = str(request["job"])
                handle = self.service.handle(job_id)
                timeout = request.get("timeout")
                if not handle._job.done.wait(
                        float(timeout) if timeout is not None else None):
                    self._reply(writer, ok=False, job=job_id,
                                error=f"job {job_id} still "
                                      f"{handle.state!r}")
                else:
                    self._reply(writer, ok=True,
                                **handle._job.summary())
            elif op == "watch":
                return self._watch(request, writer)
            else:
                self._reply(writer, ok=False,
                            error=f"unknown op {op!r}")
        except (KeyError, TypeError, ValueError, ServiceClosed) as err:
            self._reply(writer, ok=False,
                        error=str(err).strip("'\"") or type(err).__name__)
        return False

    def _watch(self, request: Dict[str, Any], writer: Any) -> bool:
        job = request.get("job")
        sub = self.service.subscribe(
            job=str(job) if job is not None else None,
            replay=bool(request.get("replay", True)))
        if not self._reply(writer, ok=True, watching=job):
            sub.close()
            return True
        try:
            for event in sub:
                try:
                    writer.write(event.to_line() + "\n")
                    writer.flush()
                except (BrokenPipeError, OSError):
                    return True
        finally:
            sub.close()
        self._reply(writer, ok=True, done=True, dropped=sub.dropped)
        return True

    @staticmethod
    def _parse_spec(data: Any) -> Union[SweepSpec, List[SweepCell]]:
        if isinstance(data, str):
            return make_spec(data)
        if isinstance(data, Mapping):
            if "cells" in data:
                return [SweepCell.from_config(config)
                        for config in data["cells"]]
            return SweepSpec.from_json(dict(data))
        raise ValueError("spec must be a preset name, a spec object, or "
                         "{'cells': [...]}")


__all__ = [
    "DEFAULT_MAX_PENDING", "DEFAULT_SOCKET", "JOB_FILE_VERSION",
    "JOB_STATES", "JobHandle", "PROTOCOL_VERSION", "ServiceClosed",
    "ServiceServer", "Subscription", "SweepService",
]
