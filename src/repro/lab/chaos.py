"""Seeded orchestration-fault injection for the supervised executor.

:mod:`repro.faults` injects faults into the *simulated machine*; this
module injects them one layer up, into the orchestration of sweep
cells across worker processes -- the failure modes the supervisor in
:mod:`repro.lab.executor` exists to survive:

``crash``
    the worker process dies mid-cell (``os._exit``), exactly like an
    OOM kill or a segfault in a native extension;
``hang``
    the worker stops making progress for ``hang_seconds`` -- with a
    cell timeout configured the supervisor kills and re-dispatches;
``flaky``
    the cell raises a transient :class:`ChaosError`;
``corrupt``
    the worker returns garbage instead of a record;
``oversize``
    the worker returns a record bloated past the supervisor's result
    byte limit.

Determinism is the whole design: every draw is a pure function of
(chaos seed, cell key, fault kind, attempt number) -- never of
wall-clock time, worker identity, or arrival order -- so the same grid
under the same chaos spec fails in exactly the same places whether it
runs on 1 worker or 8.  A drawn fault fires on attempts
``0 .. fault_attempts-1`` and then stops, so every finitely-faulty
cell succeeds once the retry budget outlasts ``fault_attempts``; the
executor contract (the merged sweep store is byte-identical to a
fault-free run) follows directly.  ``always_fail`` key fragments
escape that guarantee on purpose: they fail every attempt, which is
how tests and CI exercise the quarantine path.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Tuple

#: draw order; the first kind whose draw fires wins the attempt
FAULT_KINDS = ("crash", "hang", "flaky", "corrupt", "oversize")


class ChaosError(RuntimeError):
    """Transient injected failure raised inside a chaos-wrapped cell."""


def _unit(seed: int, key: str, kind: str) -> float:
    """A uniform [0, 1) draw pinned to (seed, cell key, fault kind)."""
    digest = hashlib.sha256(f"{seed}|{kind}|{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2 ** 64


@dataclass(frozen=True)
class ExecutorChaos:
    """Seeded description of the orchestration faults to inject."""

    seed: int = 0
    #: per-cell chance the worker process dies mid-cell
    crash_prob: float = 0.0
    #: per-cell chance the worker hangs for ``hang_seconds``
    hang_prob: float = 0.0
    #: per-cell chance the cell raises a transient :class:`ChaosError`
    flaky_prob: float = 0.0
    #: per-cell chance the worker returns a non-record
    corrupt_prob: float = 0.0
    #: per-cell chance the worker returns an oversized record
    oversize_prob: float = 0.0
    #: attempts on which a drawn fault keeps firing (1 = first try only)
    fault_attempts: int = 1
    #: how long an injected hang stalls the cell; with a cell timeout
    #: configured the supervisor kills the worker long before this
    hang_seconds: float = 3600.0
    #: padding bytes of an ``oversize`` record (must exceed the
    #: supervisor's result byte limit to actually trip it)
    oversize_bytes: int = 16 * 2 ** 20
    #: cell-key fragments whose cells raise on *every* attempt -- these
    #: exhaust any finite retry budget and land in quarantine
    always_fail: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for kind in FAULT_KINDS:
            prob = getattr(self, f"{kind}_prob")
            if not 0.0 <= prob <= 1.0:
                raise ValueError(f"{kind}_prob must be in [0, 1], "
                                 f"got {prob}")
        if self.fault_attempts < 1:
            raise ValueError("fault_attempts must be >= 1, got "
                             f"{self.fault_attempts}")
        if self.hang_seconds < 0 or self.oversize_bytes < 0:
            raise ValueError("hang_seconds and oversize_bytes must be "
                             ">= 0")

    def draw(self, key: str, attempt: int) -> Optional[str]:
        """The fault kind to inject for this (cell, attempt), if any.

        Pure in (seed, key, kind): re-drawing the same cell gives the
        same answer regardless of worker count or dispatch order.
        """
        for fragment in self.always_fail:
            if fragment in key:
                return "flaky"
        if attempt >= self.fault_attempts:
            return None
        for kind in FAULT_KINDS:
            if _unit(self.seed, key, kind) < getattr(self, f"{kind}_prob"):
                return kind
        return None

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "ExecutorChaos":
        """Build a spec from CLI syntax, e.g. ``crash=0.2,flaky=0.5``.

        Keys are the fault kinds (probabilities), ``attempts``
        (``fault_attempts``), ``hang-seconds``, and ``always-fail`` (a
        cell-key fragment; repeatable).
        """
        kwargs: dict = {"seed": seed}
        fragments = []
        for token in filter(None, (t.strip() for t in text.split(","))):
            name, sep, value = token.partition("=")
            if not sep or not value:
                raise ValueError(f"bad chaos token {token!r}: expected "
                                 "KIND=VALUE")
            if name in FAULT_KINDS:
                kwargs[f"{name}_prob"] = float(value)
            elif name == "attempts":
                kwargs["fault_attempts"] = int(value)
            elif name == "hang-seconds":
                kwargs["hang_seconds"] = float(value)
            elif name == "always-fail":
                fragments.append(value)
            else:
                raise ValueError(
                    f"unknown chaos knob {name!r}; known: "
                    f"{', '.join(FAULT_KINDS)}, attempts, hang-seconds, "
                    "always-fail")
        if fragments:
            kwargs["always_fail"] = tuple(fragments)
        return cls(**kwargs)

    def describe(self) -> str:
        """One-line summary for reports and CLI headers."""
        parts = [f"{kind}={getattr(self, f'{kind}_prob')}"
                 for kind in FAULT_KINDS
                 if getattr(self, f"{kind}_prob")]
        if self.always_fail:
            parts.append(f"always-fail={','.join(self.always_fail)}")
        return (f"seed {self.seed}: " + ", ".join(parts)) if parts else \
            f"seed {self.seed}: no faults"


#: storage-fault kinds :class:`StoreChaos` can inject, in applied order
STORE_FAULT_KINDS = ("bit-flips", "truncations", "torn-tmps",
                     "dead-claims", "torn-journal-lines")


@dataclass(frozen=True)
class StoreChaos:
    """Seeded injection of *storage* faults into a cache directory.

    :class:`ExecutorChaos` breaks the orchestration of cells;
    this breaks the bytes underneath it -- the failure modes
    :mod:`repro.lab.store` exists to survive:

    ``bit_flips``
        entries with one flipped payload bit -- valid JSON or not, the
        checksum must catch it;
    ``truncations``
        entries cut off mid-file, like a torn write on a full disk;
    ``torn_tmps``
        abandoned half-written ``*.tmp-*`` files from a fictitious
        long-dead writer, exactly what a SIGKILL mid-store leaves;
    ``dead_claims``
        claim files whose owner is gone and whose heartbeat is ancient
        -- a waiter must take these over, never honor them;
    ``torn_journal_lines``
        journal files truncated mid-line.

    Target selection is a pure function of (seed, fault kind, file
    name): the same cache contents under the same spec are damaged in
    exactly the same places, so every doctor/repair test is
    reproducible.  Each entry receives at most one fault kind.
    """

    seed: int = 0
    bit_flips: int = 0
    truncations: int = 0
    torn_tmps: int = 0
    dead_claims: int = 0
    torn_journal_lines: int = 0

    def __post_init__(self) -> None:
        for name in ("bit_flips", "truncations", "torn_tmps",
                     "dead_claims", "torn_journal_lines"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0, got "
                                 f"{getattr(self, name)}")

    def _pick(self, names: "list[str]", kind: str,
              count: int) -> "list[str]":
        ranked = sorted(names, key=lambda name: _unit(self.seed, name,
                                                      kind))
        return ranked[:count]

    def inject(self, root) -> "dict[str, list[str]]":
        """Damage the cache at ``root``; returns kind -> touched files.

        Mutates on-disk state only -- no process is harmed -- so it
        composes with live sweeps in tests and CI.
        """
        import json
        import os
        import pathlib
        import time

        from .store import CLAIMS_DIR, JOURNAL_DIR

        root = pathlib.Path(root)
        touched: "dict[str, list[str]]" = {kind: []
                                           for kind in STORE_FAULT_KINDS}
        entries = sorted(path.name for path in root.glob("*.json")
                         if path.is_file())
        taken: "set[str]" = set()

        for name in self._pick(entries, "bit-flip", self.bit_flips):
            path = root / name
            data = bytearray(path.read_bytes())
            if not data:
                continue
            offset = int(_unit(self.seed, name, "bit-flip-at")
                         * len(data))
            data[offset] ^= 1 << int(
                _unit(self.seed, name, "bit-flip-bit") * 8)
            path.write_bytes(bytes(data))
            taken.add(name)
            touched["bit-flips"].append(name)

        candidates = [name for name in entries if name not in taken]
        for name in self._pick(candidates, "truncate", self.truncations):
            path = root / name
            data = path.read_bytes()
            keep = max(1, int(_unit(self.seed, name, "truncate-at")
                              * max(1, len(data) - 1)))
            path.write_bytes(data[:keep])
            taken.add(name)
            touched["truncations"].append(name)

        ancient = time.time() - 7 * 24 * 3600
        for index, name in enumerate(
                self._pick(entries, "torn-tmp", self.torn_tmps)):
            tmp = root / f"{name}.tmp-{os.getpid()}-chaos{index}"
            tmp.write_text('{"torn": "half-written entr')
            os.utime(tmp, (ancient, ancient))
            touched["torn-tmps"].append(tmp.name)

        if self.dead_claims:
            claims_dir = root / CLAIMS_DIR
            claims_dir.mkdir(parents=True, exist_ok=True)
            for name in self._pick(entries, "dead-claim",
                                   self.dead_claims):
                claim = claims_dir / f"{pathlib.Path(name).stem}.claim"
                claim.write_text(json.dumps(
                    {"pid": 2 ** 22 + 1, "host": "long-gone-host",
                     "key": pathlib.Path(name).stem}))
                os.utime(claim, (ancient, ancient))
                touched["dead-claims"].append(claim.name)

        if self.torn_journal_lines:
            journal_dir = root / JOURNAL_DIR
            journals = (sorted(path.name
                               for path in journal_dir.glob("*.jsonl"))
                        if journal_dir.is_dir() else [])
            for name in self._pick(journals, "torn-journal",
                                   self.torn_journal_lines):
                path = journal_dir / name
                text = path.read_text()
                if len(text) < 2:
                    continue
                path.write_text(text[:int(len(text) * 0.6)].rstrip("\n")
                                + '\n{"cell": "torn mid-app')
                touched["torn-journal-lines"].append(name)

        return touched

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "StoreChaos":
        """Build a spec from CLI syntax, e.g. ``bit-flips=3,torn-tmps=2``.

        Keys are the :data:`STORE_FAULT_KINDS`, each taking an integer
        count of files to damage.
        """
        kwargs: dict = {"seed": seed}
        for token in filter(None, (t.strip() for t in text.split(","))):
            name, sep, value = token.partition("=")
            if not sep or not value:
                raise ValueError(f"bad store-chaos token {token!r}: "
                                 "expected KIND=COUNT")
            if name not in STORE_FAULT_KINDS:
                raise ValueError(
                    f"unknown store-chaos kind {name!r}; known: "
                    f"{', '.join(STORE_FAULT_KINDS)}")
            kwargs[name.replace("-", "_")] = int(value)
        return cls(**kwargs)

    def describe(self) -> str:
        """One-line summary for reports and CLI headers."""
        parts = [f"{kind}={getattr(self, kind.replace('-', '_'))}"
                 for kind in STORE_FAULT_KINDS
                 if getattr(self, kind.replace("-", "_"))]
        return (f"seed {self.seed}: " + ", ".join(parts)) if parts else \
            f"seed {self.seed}: no store faults"
