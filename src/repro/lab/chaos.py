"""Seeded orchestration-fault injection for the supervised executor.

:mod:`repro.faults` injects faults into the *simulated machine*; this
module injects them one layer up, into the orchestration of sweep
cells across worker processes -- the failure modes the supervisor in
:mod:`repro.lab.executor` exists to survive:

``crash``
    the worker process dies mid-cell (``os._exit``), exactly like an
    OOM kill or a segfault in a native extension;
``hang``
    the worker stops making progress for ``hang_seconds`` -- with a
    cell timeout configured the supervisor kills and re-dispatches;
``flaky``
    the cell raises a transient :class:`ChaosError`;
``corrupt``
    the worker returns garbage instead of a record;
``oversize``
    the worker returns a record bloated past the supervisor's result
    byte limit.

Determinism is the whole design: every draw is a pure function of
(chaos seed, cell key, fault kind, attempt number) -- never of
wall-clock time, worker identity, or arrival order -- so the same grid
under the same chaos spec fails in exactly the same places whether it
runs on 1 worker or 8.  A drawn fault fires on attempts
``0 .. fault_attempts-1`` and then stops, so every finitely-faulty
cell succeeds once the retry budget outlasts ``fault_attempts``; the
executor contract (the merged sweep store is byte-identical to a
fault-free run) follows directly.  ``always_fail`` key fragments
escape that guarantee on purpose: they fail every attempt, which is
how tests and CI exercise the quarantine path.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, Tuple

#: draw order; the first kind whose draw fires wins the attempt
FAULT_KINDS = ("crash", "hang", "flaky", "corrupt", "oversize")


class ChaosError(RuntimeError):
    """Transient injected failure raised inside a chaos-wrapped cell."""


def _unit(seed: int, key: str, kind: str) -> float:
    """A uniform [0, 1) draw pinned to (seed, cell key, fault kind)."""
    digest = hashlib.sha256(f"{seed}|{kind}|{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big") / 2 ** 64


@dataclass(frozen=True)
class ExecutorChaos:
    """Seeded description of the orchestration faults to inject."""

    seed: int = 0
    #: per-cell chance the worker process dies mid-cell
    crash_prob: float = 0.0
    #: per-cell chance the worker hangs for ``hang_seconds``
    hang_prob: float = 0.0
    #: per-cell chance the cell raises a transient :class:`ChaosError`
    flaky_prob: float = 0.0
    #: per-cell chance the worker returns a non-record
    corrupt_prob: float = 0.0
    #: per-cell chance the worker returns an oversized record
    oversize_prob: float = 0.0
    #: attempts on which a drawn fault keeps firing (1 = first try only)
    fault_attempts: int = 1
    #: how long an injected hang stalls the cell; with a cell timeout
    #: configured the supervisor kills the worker long before this
    hang_seconds: float = 3600.0
    #: padding bytes of an ``oversize`` record (must exceed the
    #: supervisor's result byte limit to actually trip it)
    oversize_bytes: int = 16 * 2 ** 20
    #: cell-key fragments whose cells raise on *every* attempt -- these
    #: exhaust any finite retry budget and land in quarantine
    always_fail: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        for kind in FAULT_KINDS:
            prob = getattr(self, f"{kind}_prob")
            if not 0.0 <= prob <= 1.0:
                raise ValueError(f"{kind}_prob must be in [0, 1], "
                                 f"got {prob}")
        if self.fault_attempts < 1:
            raise ValueError("fault_attempts must be >= 1, got "
                             f"{self.fault_attempts}")
        if self.hang_seconds < 0 or self.oversize_bytes < 0:
            raise ValueError("hang_seconds and oversize_bytes must be "
                             ">= 0")

    def draw(self, key: str, attempt: int) -> Optional[str]:
        """The fault kind to inject for this (cell, attempt), if any.

        Pure in (seed, key, kind): re-drawing the same cell gives the
        same answer regardless of worker count or dispatch order.
        """
        for fragment in self.always_fail:
            if fragment in key:
                return "flaky"
        if attempt >= self.fault_attempts:
            return None
        for kind in FAULT_KINDS:
            if _unit(self.seed, key, kind) < getattr(self, f"{kind}_prob"):
                return kind
        return None

    @classmethod
    def parse(cls, text: str, seed: int = 0) -> "ExecutorChaos":
        """Build a spec from CLI syntax, e.g. ``crash=0.2,flaky=0.5``.

        Keys are the fault kinds (probabilities), ``attempts``
        (``fault_attempts``), ``hang-seconds``, and ``always-fail`` (a
        cell-key fragment; repeatable).
        """
        kwargs: dict = {"seed": seed}
        fragments = []
        for token in filter(None, (t.strip() for t in text.split(","))):
            name, sep, value = token.partition("=")
            if not sep or not value:
                raise ValueError(f"bad chaos token {token!r}: expected "
                                 "KIND=VALUE")
            if name in FAULT_KINDS:
                kwargs[f"{name}_prob"] = float(value)
            elif name == "attempts":
                kwargs["fault_attempts"] = int(value)
            elif name == "hang-seconds":
                kwargs["hang_seconds"] = float(value)
            elif name == "always-fail":
                fragments.append(value)
            else:
                raise ValueError(
                    f"unknown chaos knob {name!r}; known: "
                    f"{', '.join(FAULT_KINDS)}, attempts, hang-seconds, "
                    "always-fail")
        if fragments:
            kwargs["always_fail"] = tuple(fragments)
        return cls(**kwargs)

    def describe(self) -> str:
        """One-line summary for reports and CLI headers."""
        parts = [f"{kind}={getattr(self, f'{kind}_prob')}"
                 for kind in FAULT_KINDS
                 if getattr(self, f"{kind}_prob")]
        if self.always_fail:
            parts.append(f"always-fail={','.join(self.always_fail)}")
        return (f"seed {self.seed}: " + ", ".join(parts)) if parts else \
            f"seed {self.seed}: no faults"
