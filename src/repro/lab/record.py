"""Versioned run records and the merged ``BENCH_sweeps.json`` store.

A *run record* is the durable, JSON-native result of one sweep cell:
the cell's config, an outcome label, and the simulated metrics.  It is
what the cache stores and what ``BENCH_sweeps.json`` accumulates.  Two
schema versions gate mixing:

``schema_version``
    the record layout itself (:data:`RECORD_SCHEMA_VERSION`);
``extra_schema_version``
    the :data:`repro.sim.metrics.EXTRA_SCHEMA_VERSION` of the
    ``RunResult.extra`` payload the metrics were derived from.

Loaders treat any mismatch as *stale* -- the record is dropped and the
cell re-simulated -- so results produced by older code are never
silently mixed into fresh sweeps.

Records deliberately contain **no wall-clock times, hostnames or other
environment facts**: a record is a pure function of (source tree,
config), which is what makes the merged JSON byte-identical across
serial, parallel and cached executions of the same grid.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, Mapping, Optional, Sequence

from ..sim.metrics import EXTRA_SCHEMA_VERSION, RunResult

#: bump when the record layout below changes shape
RECORD_SCHEMA_VERSION = 1


def canonical_dumps(value: Any) -> str:
    """Deterministic JSON encoding (sorted keys, fixed separators)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True)


def make_record(key: str, config: Mapping[str, Any], *,
                outcome: str = "ok",
                result: Optional[RunResult] = None,
                serial_cycles: Optional[int] = None,
                compile_info: Optional[Mapping[str, Any]] = None,
                error: Optional[str] = None,
                elimination: Optional[Mapping[str, Any]] = None,
                ) -> Dict[str, Any]:
    """Build the versioned record for one executed cell.

    ``result`` is None when the run died (diagnosed hazard) or the
    compiler decided the loop runs serially; ``error`` then carries the
    first line of the diagnosis.
    """
    record: Dict[str, Any] = {
        "schema_version": RECORD_SCHEMA_VERSION,
        "extra_schema_version": EXTRA_SCHEMA_VERSION,
        "key": key,
        "config": dict(config),
        "outcome": outcome,
    }
    if compile_info is not None:
        record["compile"] = dict(compile_info)
    if error is not None:
        record["error"] = error
    if result is None:
        record["metrics"] = None
        if serial_cycles is not None:
            record["metrics"] = {"serial_cycles": serial_cycles}
        if elimination is not None and record["metrics"] is not None:
            record["metrics"]["elimination"] = dict(elimination)
        return record
    metrics: Dict[str, Any] = dict(result.summary())
    if elimination is not None:
        metrics["elimination"] = dict(elimination)
    if serial_cycles is not None:
        metrics["serial_cycles"] = serial_cycles
        metrics["speedup"] = round(result.speedup_over(serial_cycles), 6)
    if result.faults:
        metrics["faults"] = dict(result.faults)
    if result.recovery:
        metrics["recovery"] = dict(result.recovery)
    record["metrics"] = metrics
    return record


def record_is_current(record: Mapping[str, Any]) -> bool:
    """True when ``record`` was produced by the current schemas."""
    return (isinstance(record, Mapping)
            and record.get("schema_version") == RECORD_SCHEMA_VERSION
            and record.get("extra_schema_version") == EXTRA_SCHEMA_VERSION)


def merge_records(path: pathlib.Path,
                  records: Sequence[Mapping[str, Any]]) -> Dict[str, Any]:
    """Merge ``records`` into the versioned store at ``path``.

    The store maps record key -> record.  Existing records with a stale
    schema version are dropped (detected, not mixed); fresh records
    replace same-key predecessors.  The file is written with sorted
    keys and a trailing newline, so identical record sets produce
    byte-identical files regardless of how the sweep was executed.

    The whole read-merge-write runs under the advisory
    :class:`~repro.lab.store.StoreLock` at ``<path>.lock``, so N
    concurrent sweeps merging into one store serialize instead of
    losing each other's records to a read-modify-write race; the write
    itself goes through a unique tmp file + fsync + atomic rename, so
    a sweep killed mid-merge (Ctrl-C, SIGTERM, OOM) leaves either the
    old store or the new one on disk, never a torn half-written JSON
    document.
    """
    # lazy: store.py imports this module's canonical helpers, so a
    # module-level import here would be circular
    from .store import StoreLock, durable_write_text

    path = pathlib.Path(path)
    store: Dict[str, Any] = {"schema_version": RECORD_SCHEMA_VERSION,
                             "records": {}}
    with StoreLock(path.with_name(path.name + ".lock")):
        if path.exists():
            try:
                previous = json.loads(path.read_text())
            except (ValueError, OSError):
                previous = {}
            for key, record in previous.get("records", {}).items():
                if record_is_current(record):
                    store["records"][key] = record
        for record in records:
            store["records"][record["key"]] = dict(record)
        durable_write_text(path, json.dumps(store, sort_keys=True, indent=1,
                                            ensure_ascii=True) + "\n")
    return store
