"""repro.lab: the declarative experiment subsystem.

The repository's evidence is ~20 benchmark sweeps over
(scheme x loop x machine x seed) grids.  This package turns those
hand-rolled nested loops into data:

* :class:`SweepSpec` declares a grid; presets cover the standing
  benchmark figures (``fig3.1``, ``fig3.2``, ``scheme-comparison``,
  ``speedup``, ``kernels``, ``smoke``);
* :func:`run_sweep` expands it, serves warm cells from a
  content-addressed on-disk cache (keyed by a source fingerprint of
  ``repro`` plus the cell's canonical config), fans cold cells across a
  supervised process pool, and merges versioned records into
  ``BENCH_sweeps.json``;
* :class:`SweepService` is the long-running form: many clients submit
  jobs to one server sharing a worker pool and in-flight dedup, with
  typed :class:`SweepEvent` streams (``python -m repro serve`` /
  ``submit`` / ``watch``);
* :class:`RunConfig` (re-exported from :mod:`repro.schemes`) is the
  single-object form of one run's knobs, :class:`SweepOptions` of one
  sweep's.

Quick start::

    from repro.lab import SweepOptions, make_spec, run_sweep
    report = run_sweep(make_spec("scheme-comparison"),
                       options=SweepOptions(procs=8))
    rows = report.metrics_by("scheme")

or from the shell::

    python -m repro sweep --spec fig3.1 --procs 8 --json BENCH_sweeps.json

Names exported here are the supported API (see
``docs/architecture.md``).  Internals -- executor backoff math,
canonical JSON encoding, envelope sealing, journal plumbing -- live in
their own modules (``repro.lab.executor``, ``repro.lab.record``,
``repro.lab.store``, ...) and are deliberately *not* re-exported at
package top level.
"""

from ..schemes.base import RunConfig
from .apps import APP_BUILDERS, app_names, build_app
from .cache import DEFAULT_CACHE_DIR, ResultCache
from .chaos import ChaosError, ExecutorChaos, StoreChaos
from .client import ServiceClient, ServiceError
from .events import (EVENT_SCHEMA_VERSION, CellDone, CellFailed,
                     CellShared, CellStarted, EventDecodeError, JobDone,
                     JobSubmitted, SweepEvent, adapt_progress_callback,
                     event_from_json, event_from_line)
from .executor import (DEFAULT_MAX_RETRIES, CellFailure, ExecutionOutcome,
                       PoolSupervisor, SupervisedExecutor)
from .record import RECORD_SCHEMA_VERSION, merge_records
from .runner import (IncompleteSweepError, JobCancelled, SweepOptions,
                     SweepReport, execute_cell, execute_grid, run_sweep)
from .service import (DEFAULT_SOCKET, JobHandle, ServiceClosed,
                      ServiceServer, Subscription, SweepService)
from .spec import (AUTO_SCHEME, PRESETS, SweepCell, SweepSpec, make_spec,
                   sweep_presets)
from .store import (CellClaims, ClaimPolicy, DoctorReport, diagnose)

__all__ = [
    "APP_BUILDERS", "AUTO_SCHEME", "CellClaims", "CellDone", "CellFailed",
    "CellFailure", "CellShared", "CellStarted", "ChaosError",
    "ClaimPolicy", "DEFAULT_CACHE_DIR", "DEFAULT_MAX_RETRIES",
    "DEFAULT_SOCKET", "DoctorReport", "EVENT_SCHEMA_VERSION",
    "EventDecodeError", "ExecutionOutcome", "ExecutorChaos",
    "IncompleteSweepError", "JobCancelled", "JobDone", "JobHandle",
    "JobSubmitted", "PRESETS", "PoolSupervisor", "RECORD_SCHEMA_VERSION",
    "ResultCache", "RunConfig", "ServiceClient", "ServiceClosed",
    "ServiceError", "ServiceServer", "StoreChaos", "Subscription",
    "SupervisedExecutor", "SweepCell", "SweepEvent", "SweepOptions",
    "SweepReport", "SweepService", "SweepSpec", "adapt_progress_callback",
    "app_names", "build_app", "diagnose", "event_from_json",
    "event_from_line", "execute_cell", "execute_grid", "make_spec",
    "merge_records", "run_sweep", "sweep_presets",
]
