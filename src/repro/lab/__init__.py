"""repro.lab: the declarative experiment subsystem.

The repository's evidence is ~20 benchmark sweeps over
(scheme x loop x machine x seed) grids.  This package turns those
hand-rolled nested loops into data:

* :class:`SweepSpec` declares a grid; presets cover the standing
  benchmark figures (``fig3.1``, ``fig3.2``, ``scheme-comparison``,
  ``speedup``, ``kernels``, ``smoke``);
* :func:`run_sweep` expands it, serves warm cells from a
  content-addressed on-disk cache (keyed by a source fingerprint of
  ``repro`` plus the cell's canonical config), fans cold cells across a
  process pool, and merges versioned records into
  ``BENCH_sweeps.json``;
* :class:`RunConfig` (re-exported from :mod:`repro.schemes`) is the
  single-object form of one run's knobs.

Quick start::

    from repro.lab import make_spec, run_sweep
    report = run_sweep(make_spec("scheme-comparison"), procs=8)
    rows = report.metrics_by("scheme")

or from the shell::

    python -m repro sweep --spec fig3.1 --procs 8 --json BENCH_sweeps.json
"""

from ..schemes.base import RunConfig
from .apps import APP_BUILDERS, app_names, build_app
from .cache import (DEFAULT_CACHE_DIR, ResultCache, SweepJournal,
                    source_fingerprint)
from .chaos import ChaosError, ExecutorChaos, StoreChaos
from .executor import (DEFAULT_MAX_RETRIES, CellFailure, ExecutionOutcome,
                       SupervisedExecutor, backoff_delay)
from .parallel import parallel_map
from .record import (RECORD_SCHEMA_VERSION, canonical_dumps, make_record,
                     merge_records, record_is_current)
from .runner import (IncompleteSweepError, SweepReport, execute_cell,
                     run_sweep)
from .spec import (AUTO_SCHEME, PRESETS, SweepCell, SweepSpec, make_spec,
                   sweep_presets)
from .store import (CellClaims, ClaimPolicy, DoctorReport, EnvelopeError,
                    StoreLock, StoreLockTimeout, diagnose, open_envelope,
                    reap_orphan_tmps, seal_record)

__all__ = [
    "APP_BUILDERS", "AUTO_SCHEME", "CellClaims", "CellFailure",
    "ChaosError", "ClaimPolicy", "DEFAULT_CACHE_DIR",
    "DEFAULT_MAX_RETRIES", "DoctorReport", "EnvelopeError",
    "ExecutionOutcome", "ExecutorChaos", "IncompleteSweepError", "PRESETS",
    "RECORD_SCHEMA_VERSION", "ResultCache", "RunConfig", "StoreChaos",
    "StoreLock", "StoreLockTimeout", "SupervisedExecutor", "SweepCell",
    "SweepJournal", "SweepReport", "SweepSpec", "app_names",
    "backoff_delay", "build_app", "canonical_dumps", "diagnose",
    "execute_cell", "make_record", "make_spec", "merge_records",
    "open_envelope", "parallel_map", "reap_orphan_tmps",
    "record_is_current", "run_sweep", "seal_record", "source_fingerprint",
    "sweep_presets",
]
