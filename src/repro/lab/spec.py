"""Declarative sweep specifications: what to run, as data.

A :class:`SweepSpec` names a grid -- apps x schemes x machine shapes x
seeds x wait bounds (x optional fault plans) -- and expands it into
:class:`SweepCell` values.  A cell is the atomic unit of work the
:mod:`repro.lab.runner` executes: it is frozen, hashable, and converts
to a canonical JSON-able ``config`` dict that both keys the on-disk
cache and ships to pool workers.

Specs come from three places:

* the named presets here (``sweep_presets()``), which encode the
  repository's standing benchmark grids (Fig 3.1, Fig 3.2, the scheme
  comparison, the speedup curves, the kernel suite);
* a JSON file (``SweepSpec.from_json``), for ad-hoc grids from the
  command line;
* code, for tests and custom harnesses.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..schemes.registry import scheme_names
from .apps import APP_BUILDERS

#: scheme name meaning "let the compiler pipeline pick"
AUTO_SCHEME = "auto"


@dataclass(frozen=True)
class SweepCell:
    """One point of a sweep grid: a single simulated run, as data.

    ``app_params`` is a sorted tuple of ``(name, value)`` pairs so the
    cell stays hashable; :meth:`config` rebuilds the dict form.
    """

    app: str
    app_params: Tuple[Tuple[str, Any], ...]
    scheme: str
    processors: int
    schedule: str = "self"
    seed: int = 0
    wait_bound: Optional[int] = None
    validate: bool = True
    #: fault-plan preset name (None: clean run); the cell's ``seed``
    #: seeds the plan, exactly as in ``python -m repro chaos``
    plan: Optional[str] = None
    #: enable the recovery layer under the fault plan
    recover: bool = False
    #: also run the redundant-sync eliminator and record its before /
    #: after sync-op counts in the cell's metrics (analysis only: the
    #: simulated run keeps the scheme's full placement)
    eliminate: bool = False

    def config(self) -> Dict[str, Any]:
        """The cell as a canonical, JSON-able config dict."""
        return {
            "app": self.app,
            "app_params": dict(self.app_params),
            "scheme": self.scheme,
            "processors": self.processors,
            "schedule": self.schedule,
            "seed": self.seed,
            "wait_bound": self.wait_bound,
            "validate": self.validate,
            "plan": self.plan,
            "recover": self.recover,
            "eliminate": self.eliminate,
        }

    @classmethod
    def from_config(cls, config: Mapping[str, Any]) -> "SweepCell":
        """Rebuild a cell from its :meth:`config` dict (the inverse).

        How a restarted :class:`~repro.lab.service.SweepService`
        reconstitutes the cells of a journaled job file.
        """
        return cls(
            app=config["app"],
            app_params=_freeze_params(config.get("app_params") or {}),
            scheme=config["scheme"],
            processors=config["processors"],
            schedule=config.get("schedule", "self"),
            seed=config.get("seed", 0),
            wait_bound=config.get("wait_bound"),
            validate=bool(config.get("validate", True)),
            plan=config.get("plan"),
            recover=bool(config.get("recover", False)),
            eliminate=bool(config.get("eliminate", False)),
        )

    @property
    def key(self) -> str:
        """Stable human-readable identity, used to index merged records."""
        params = ",".join(f"{k}={v}" for k, v in self.app_params)
        parts = [f"{self.app}({params})", self.scheme,
                 f"p{self.processors}", self.schedule, f"seed{self.seed}"]
        if self.wait_bound is not None:
            parts.append(f"wait{self.wait_bound}")
        if self.plan is not None:
            parts.append(f"plan={self.plan}" + ("+recover" if self.recover
                                                else ""))
        if self.eliminate:
            parts.append("elim")
        return "/".join(parts)


def _freeze_params(params: Mapping[str, Any]) -> Tuple[Tuple[str, Any], ...]:
    return tuple(sorted(params.items()))


@dataclass(frozen=True)
class SweepSpec:
    """A named grid of runs: the cross product of every axis below."""

    name: str
    #: (app name, parameter dict) points; not crossed with each other
    apps: Tuple[Tuple[str, Tuple[Tuple[str, Any], ...]], ...]
    #: scheme names, or :data:`AUTO_SCHEME` for compiler selection
    schemes: Tuple[str, ...]
    processors: Tuple[int, ...] = (8,)
    schedules: Tuple[str, ...] = ("self",)
    seeds: Tuple[int, ...] = (0,)
    wait_bounds: Tuple[Optional[int], ...] = (None,)
    #: fault-plan presets ((None,): clean runs only)
    plans: Tuple[Optional[str], ...] = (None,)
    recover: bool = False
    validate: bool = True
    #: run the redundant-sync eliminator alongside every cell (adds an
    #: ``elimination`` column to the metrics; see ``SweepCell.eliminate``)
    eliminate: bool = False

    @staticmethod
    def build(name: str, apps: Sequence[Tuple[str, Mapping[str, Any]]],
              schemes: Sequence[str], **axes: Any) -> "SweepSpec":
        """Convenience constructor taking plain dicts/lists."""
        frozen_apps = tuple((app, _freeze_params(params))
                            for app, params in apps)
        for key in ("processors", "schedules", "seeds", "wait_bounds",
                    "plans"):
            if key in axes:
                axes[key] = tuple(axes[key])
        return SweepSpec(name=name, apps=frozen_apps,
                         schemes=tuple(schemes), **axes)

    def __post_init__(self) -> None:
        for app, _params in self.apps:
            if app not in APP_BUILDERS:
                raise ValueError(f"unknown app {app!r} in spec "
                                 f"{self.name!r}")
        known = set(scheme_names()) | {AUTO_SCHEME}
        for scheme in self.schemes:
            if scheme not in known:
                raise ValueError(f"unknown scheme {scheme!r} in spec "
                                 f"{self.name!r}")
        if not self.apps or not self.schemes:
            raise ValueError(f"spec {self.name!r} has an empty grid")

    def cells(self) -> List[SweepCell]:
        """Expand the grid in deterministic (nested-axis) order."""
        out: List[SweepCell] = []
        for app, params in self.apps:
            for scheme in self.schemes:
                for procs in self.processors:
                    for schedule in self.schedules:
                        for plan in self.plans:
                            for seed in self.seeds:
                                for bound in self.wait_bounds:
                                    out.append(SweepCell(
                                        app=app, app_params=params,
                                        scheme=scheme, processors=procs,
                                        schedule=schedule, seed=seed,
                                        wait_bound=bound,
                                        validate=self.validate,
                                        plan=plan,
                                        recover=self.recover and
                                        plan is not None,
                                        eliminate=self.eliminate))
        return out

    def with_seed_base(self, base: int) -> "SweepSpec":
        """The same grid with every seed shifted by ``base``."""
        if not base:
            return self
        import dataclasses
        return dataclasses.replace(
            self, seeds=tuple(s + base for s in self.seeds))

    def to_json(self) -> Dict[str, Any]:
        """JSON-able form, the inverse of :meth:`from_json`."""
        return {
            "name": self.name,
            "apps": [[app, dict(params)] for app, params in self.apps],
            "schemes": list(self.schemes),
            "processors": list(self.processors),
            "schedules": list(self.schedules),
            "seeds": list(self.seeds),
            "wait_bounds": list(self.wait_bounds),
            "plans": list(self.plans),
            "recover": self.recover,
            "validate": self.validate,
            "eliminate": self.eliminate,
        }

    @classmethod
    def from_json(cls, data: Union[str, pathlib.Path, Mapping[str, Any]],
                  ) -> "SweepSpec":
        """Load a spec from a dict, a JSON string, or a ``.json`` path."""
        if isinstance(data, pathlib.Path):
            data = json.loads(data.read_text())
        elif isinstance(data, str):
            data = json.loads(data)
        axes = {key: data[key] for key in
                ("processors", "schedules", "seeds", "wait_bounds",
                 "plans") if key in data}
        for flag in ("recover", "validate", "eliminate"):
            if flag in data:
                axes[flag] = bool(data[flag])
        return cls.build(data["name"],
                         [(app, params) for app, params in data["apps"]],
                         data["schemes"], **axes)


def _fig31_spec() -> SweepSpec:
    return SweepSpec.build(
        "fig3.1",
        apps=[("fig2.1", {"n": n}) for n in (50, 100, 200, 400)],
        schemes=["reference-based", "instance-based"])


def _fig32_spec() -> SweepSpec:
    n = 96
    apps: List[Tuple[str, Dict[str, Any]]] = [("fig2.1", {"n": n})]
    apps += [("fig2.1-delay", {"n": n, "slow_iteration": n // 3,
                               "slow_cost": cost})
             for cost in (400, 1600, 6400)]
    return SweepSpec.build(
        "fig3.2", apps=apps,
        schemes=["statement-oriented", "process-oriented"])


def _comparison_spec() -> SweepSpec:
    # eliminate=True opts the grid into the redundant-sync column:
    # each record's metrics carry sync-op counts before / after the
    # Midkiff/Padua reduction (fold-chain is the loop where the
    # process-counter fold actually makes an arc redundant).
    return SweepSpec.build(
        "scheme-comparison",
        apps=([("fig2.1", {"n": n}) for n in (120, 240)]
              + [("fold-chain", {"n": 120})]),
        schemes=scheme_names(), eliminate=True)


def _speedup_spec() -> SweepSpec:
    return SweepSpec.build(
        "speedup",
        apps=[("fig2.1", {"n": 80})], schemes=scheme_names(),
        processors=(1, 2, 4, 8, 16), validate=False)


def _kernels_spec() -> SweepSpec:
    apps: List[Tuple[str, Dict[str, Any]]] = [
        (name, {"n": 64, "cost": 30})
        for name in ("hydro", "tridiag", "state", "first-diff", "prefix")]
    apps.append(("adi", {"n": 10, "m": 8, "cost": 30}))
    return SweepSpec.build("kernels", apps=apps, schemes=[AUTO_SCHEME])


def _smoke_spec() -> SweepSpec:
    return SweepSpec.build(
        "smoke",
        apps=[("fig2.1", {"n": n, "cost": 8}) for n in (12, 16)],
        schemes=scheme_names(), processors=(4,))


#: name -> builder for the repository's standing grids
PRESETS = {
    "fig3.1": _fig31_spec,
    "fig3.2": _fig32_spec,
    "scheme-comparison": _comparison_spec,
    "speedup": _speedup_spec,
    "kernels": _kernels_spec,
    "smoke": _smoke_spec,
}


def sweep_presets() -> List[str]:
    """Names of the built-in sweep specifications."""
    return sorted(PRESETS)


def make_spec(name: str) -> SweepSpec:
    """Instantiate a preset spec by name."""
    try:
        return PRESETS[name]()
    except KeyError:
        raise ValueError(f"unknown sweep preset {name!r}; known: "
                         f"{sweep_presets()}") from None
