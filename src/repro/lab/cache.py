"""Content-addressed on-disk result cache for sweep cells.

The cache key of a cell is a SHA-256 over

* the *source fingerprint* of the ``repro`` package -- a digest of
  every ``.py`` file's path and bytes, so **any** code change (a cost
  model tweak, an engine fix) invalidates every cached result at once;
* the cell's canonical-JSON config;
* the record and ``RunResult.extra`` schema versions.

A warm cache therefore returns instantly and is always either exactly
what a fresh simulation would produce, or a miss.  Entries are single
JSON files named by their key, each a checksummed envelope (see
:mod:`repro.lab.store`): writes go through a uniquely-named temp file,
fsync, and atomic rename, so a killed sweep never leaves a torn entry
behind and "stored" means durable; loads verify the payload SHA-256
and *quarantine* damaged entries instead of serving them.
"""

from __future__ import annotations

import hashlib
import json
import pathlib
from typing import Any, Dict, Mapping, Optional, Tuple

from ..sim.metrics import EXTRA_SCHEMA_VERSION
from .record import RECORD_SCHEMA_VERSION, canonical_dumps, record_is_current
from .store import (EnvelopeError, JOURNAL_DIR, durable_append_line,
                    durable_write_text, open_envelope, quarantine_file,
                    seal_record)

#: default cache location, relative to the invoking directory
DEFAULT_CACHE_DIR = pathlib.Path(".repro-cache")

_FINGERPRINT: Optional[str] = None


def source_fingerprint(root: Optional[pathlib.Path] = None,
                       refresh: bool = False) -> str:
    """Digest of the ``repro`` source tree (or ``root``), hex-encoded.

    Hashes relative paths and file bytes of every ``*.py`` under the
    package in sorted order; memoized per process since the tree cannot
    change under a running sweep.
    """
    global _FINGERPRINT
    if root is None and _FINGERPRINT is not None and not refresh:
        return _FINGERPRINT
    if root is None:
        package_root = pathlib.Path(__file__).resolve().parent.parent
    else:
        package_root = pathlib.Path(root)
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    value = digest.hexdigest()
    if root is None:
        _FINGERPRINT = value
    return value


class ResultCache:
    """Content-addressed store of run records under one directory."""

    def __init__(self, root: pathlib.Path,
                 fingerprint: Optional[str] = None) -> None:
        self.root = pathlib.Path(root)
        self.fingerprint = fingerprint or source_fingerprint()
        self.hits = 0
        self.misses = 0
        #: corrupt entries moved to ``<root>/quarantine/`` by lookups
        self.quarantined = 0

    def key_for(self, config: Mapping[str, Any]) -> str:
        """The cell's content address (hex SHA-256)."""
        material = canonical_dumps({
            "fingerprint": self.fingerprint,
            "config": dict(config),
            "record_schema": RECORD_SCHEMA_VERSION,
            "extra_schema": EXTRA_SCHEMA_VERSION,
        })
        return hashlib.sha256(material.encode()).hexdigest()

    def _path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.json"

    def _lookup(self, key: str) -> Tuple[str, Optional[Dict[str, Any]]]:
        """Read + verify the entry for ``key``: the one parse path.

        Returns ``(status, record)`` with status in ``miss`` (no file),
        ``corrupt`` (undecodable, non-envelope, or checksum-mismatched
        -- the file is quarantined as a side effect), ``stale``
        (produced by older schemas: detected and invalidated, never
        silently mixed into a fresh sweep), or ``ok``.  Both
        :meth:`load` and :meth:`contains` go through here, so integrity
        verification lives in exactly one place.
        """
        path = self._path(key)
        try:
            raw = path.read_bytes()
        except OSError:
            return "miss", None
        try:
            record = open_envelope(raw.decode("utf-8"))
        except (EnvelopeError, UnicodeDecodeError):
            # damaged bytes must neither be served as truth nor linger
            # as a silent re-miss every sweep: move them aside
            if quarantine_file(self.root, path) is not None:
                self.quarantined += 1
            return "corrupt", None
        if not record_is_current(record):
            return "stale", None
        return "ok", record

    def load(self, key: str, *,
             count: bool = True) -> Optional[Dict[str, Any]]:
        """The verified record for ``key``, or None on any non-hit.

        ``count=False`` skips the hit/miss counters -- for single-flight
        re-checks and waits, which poll the same cell many times but
        must charge it to the stats at most once.
        """
        status, record = self._lookup(key)
        if status == "ok":
            if count:
                self.hits += 1
            return record
        if count:
            self.misses += 1
        return None

    def store(self, key: str, record: Mapping[str, Any]) -> None:
        """Persist ``record`` durably under ``key``.

        The entry is a checksummed envelope written via unique tmp file
        + fsync + atomic rename: concurrent writers (threads or
        processes) cannot collide on the tmp name, and once this
        returns the record survives a crash.
        """
        self.root.mkdir(parents=True, exist_ok=True)
        durable_write_text(self._path(key), seal_record(record))

    def contains(self, key: str) -> bool:
        """True when a current, checksum-verified entry exists.

        Does not touch the hit/miss counters: this is a peek, used by
        resume accounting, not a load.
        """
        return self._lookup(key)[0] == "ok"


class SweepJournal:
    """Append-only JSONL trail of one sweep's landed and failed cells.

    The content-addressed cache is the durable *store* (resume
    correctness comes from per-cell cache lookups); the journal is the
    durable *trail*: one line per landed record or quarantined cell,
    flushed as it happens, so an interrupted or degraded sweep leaves
    an inspectable account of exactly what it paid for.  Journals live
    under ``<cache root>/journal/``, named by a digest of the grid's
    cache keys so re-running the same grid continues the same file; a
    fully-successful sweep clears its journal on the way out.

    Lines land in completion order, which under a parallel sweep is
    not deterministic -- the journal is operational evidence, never an
    input to the byte-identical merged store.
    """

    def __init__(self, path: pathlib.Path) -> None:
        self.path = pathlib.Path(path)

    @classmethod
    def for_keys(cls, root: pathlib.Path,
                 cache_keys: "list[str]") -> "SweepJournal":
        """The journal for the grid whose cell cache keys are given."""
        digest = hashlib.sha256(
            "\n".join(sorted(cache_keys)).encode()).hexdigest()[:20]
        return cls(pathlib.Path(root) / JOURNAL_DIR / f"{digest}.jsonl")

    def entries(self) -> "list[Dict[str, Any]]":
        """Every decodable journal line (a torn last line is skipped).

        A sweep killed mid-append leaves at most one partial line;
        tolerating it is what makes the journal safe to read right
        after a SIGKILL.
        """
        try:
            # replace, not raise: a mangled byte loses one line's
            # decode, never the whole trail
            text = self.path.read_bytes().decode("utf-8", "replace")
        except OSError:
            return []
        out = []
        for line in text.splitlines():
            try:
                entry = json.loads(line)
            except ValueError:
                continue
            if isinstance(entry, dict):
                out.append(entry)
        return out

    def append(self, entry: Mapping[str, Any]) -> None:
        """Flush + fsync one cell-event line to the trail.

        The fsync is what lets a journal line mean "this work is
        durably accounted for" to a reader arriving right after the
        writer was SIGKILLed; O_APPEND keeps concurrent writers'
        lines whole.
        """
        durable_append_line(self.path, canonical_dumps(dict(entry)))

    def clear(self) -> None:
        """Remove the trail (a finished sweep owes no explanation)."""
        try:
            self.path.unlink()
        except OSError:
            pass
