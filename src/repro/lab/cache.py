"""Content-addressed on-disk result cache for sweep cells.

The cache key of a cell is a SHA-256 over

* the *source fingerprint* of the ``repro`` package -- a digest of
  every ``.py`` file's path and bytes, so **any** code change (a cost
  model tweak, an engine fix) invalidates every cached result at once;
* the cell's canonical-JSON config;
* the record and ``RunResult.extra`` schema versions.

A warm cache therefore returns instantly and is always either exactly
what a fresh simulation would produce, or a miss.  Entries are single
JSON files named by their key; writes go through a temp file + rename
so a killed sweep never leaves a torn entry behind.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
from typing import Any, Dict, Mapping, Optional

from ..sim.metrics import EXTRA_SCHEMA_VERSION
from .record import RECORD_SCHEMA_VERSION, canonical_dumps, record_is_current

#: default cache location, relative to the invoking directory
DEFAULT_CACHE_DIR = pathlib.Path(".repro-cache")

_FINGERPRINT: Optional[str] = None


def source_fingerprint(root: Optional[pathlib.Path] = None,
                       refresh: bool = False) -> str:
    """Digest of the ``repro`` source tree (or ``root``), hex-encoded.

    Hashes relative paths and file bytes of every ``*.py`` under the
    package in sorted order; memoized per process since the tree cannot
    change under a running sweep.
    """
    global _FINGERPRINT
    if root is None and _FINGERPRINT is not None and not refresh:
        return _FINGERPRINT
    if root is None:
        package_root = pathlib.Path(__file__).resolve().parent.parent
    else:
        package_root = pathlib.Path(root)
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    value = digest.hexdigest()
    if root is None:
        _FINGERPRINT = value
    return value


class ResultCache:
    """Content-addressed store of run records under one directory."""

    def __init__(self, root: pathlib.Path,
                 fingerprint: Optional[str] = None) -> None:
        self.root = pathlib.Path(root)
        self.fingerprint = fingerprint or source_fingerprint()
        self.hits = 0
        self.misses = 0

    def key_for(self, config: Mapping[str, Any]) -> str:
        """The cell's content address (hex SHA-256)."""
        material = canonical_dumps({
            "fingerprint": self.fingerprint,
            "config": dict(config),
            "record_schema": RECORD_SCHEMA_VERSION,
            "extra_schema": EXTRA_SCHEMA_VERSION,
        })
        return hashlib.sha256(material.encode()).hexdigest()

    def _path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.json"

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached record for ``key``, or None on miss/stale entry."""
        path = self._path(key)
        try:
            import json
            record = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not record_is_current(record):
            # produced by older code: detected and invalidated, never
            # silently mixed into a fresh sweep
            self.misses += 1
            return None
        self.hits += 1
        return record

    def store(self, key: str, record: Mapping[str, Any]) -> None:
        """Persist ``record`` under ``key`` (atomic rename)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(canonical_dumps(dict(record)) + "\n")
        tmp.replace(path)
