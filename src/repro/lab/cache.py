"""Content-addressed on-disk result cache for sweep cells.

The cache key of a cell is a SHA-256 over

* the *source fingerprint* of the ``repro`` package -- a digest of
  every ``.py`` file's path and bytes, so **any** code change (a cost
  model tweak, an engine fix) invalidates every cached result at once;
* the cell's canonical-JSON config;
* the record and ``RunResult.extra`` schema versions.

A warm cache therefore returns instantly and is always either exactly
what a fresh simulation would produce, or a miss.  Entries are single
JSON files named by their key; writes go through a temp file + rename
so a killed sweep never leaves a torn entry behind.
"""

from __future__ import annotations

import hashlib
import os
import pathlib
from typing import Any, Dict, Mapping, Optional

from ..sim.metrics import EXTRA_SCHEMA_VERSION
from .record import RECORD_SCHEMA_VERSION, canonical_dumps, record_is_current

#: default cache location, relative to the invoking directory
DEFAULT_CACHE_DIR = pathlib.Path(".repro-cache")

_FINGERPRINT: Optional[str] = None


def source_fingerprint(root: Optional[pathlib.Path] = None,
                       refresh: bool = False) -> str:
    """Digest of the ``repro`` source tree (or ``root``), hex-encoded.

    Hashes relative paths and file bytes of every ``*.py`` under the
    package in sorted order; memoized per process since the tree cannot
    change under a running sweep.
    """
    global _FINGERPRINT
    if root is None and _FINGERPRINT is not None and not refresh:
        return _FINGERPRINT
    if root is None:
        package_root = pathlib.Path(__file__).resolve().parent.parent
    else:
        package_root = pathlib.Path(root)
    digest = hashlib.sha256()
    for path in sorted(package_root.rglob("*.py")):
        digest.update(str(path.relative_to(package_root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    value = digest.hexdigest()
    if root is None:
        _FINGERPRINT = value
    return value


class ResultCache:
    """Content-addressed store of run records under one directory."""

    def __init__(self, root: pathlib.Path,
                 fingerprint: Optional[str] = None) -> None:
        self.root = pathlib.Path(root)
        self.fingerprint = fingerprint or source_fingerprint()
        self.hits = 0
        self.misses = 0

    def key_for(self, config: Mapping[str, Any]) -> str:
        """The cell's content address (hex SHA-256)."""
        material = canonical_dumps({
            "fingerprint": self.fingerprint,
            "config": dict(config),
            "record_schema": RECORD_SCHEMA_VERSION,
            "extra_schema": EXTRA_SCHEMA_VERSION,
        })
        return hashlib.sha256(material.encode()).hexdigest()

    def _path(self, key: str) -> pathlib.Path:
        return self.root / f"{key}.json"

    def load(self, key: str) -> Optional[Dict[str, Any]]:
        """The cached record for ``key``, or None on miss/stale entry."""
        path = self._path(key)
        try:
            import json
            record = json.loads(path.read_text())
        except (OSError, ValueError):
            self.misses += 1
            return None
        if not record_is_current(record):
            # produced by older code: detected and invalidated, never
            # silently mixed into a fresh sweep
            self.misses += 1
            return None
        self.hits += 1
        return record

    def store(self, key: str, record: Mapping[str, Any]) -> None:
        """Persist ``record`` under ``key`` (atomic rename)."""
        self.root.mkdir(parents=True, exist_ok=True)
        path = self._path(key)
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_text(canonical_dumps(dict(record)) + "\n")
        tmp.replace(path)

    def contains(self, key: str) -> bool:
        """True when a current (non-stale) entry exists for ``key``.

        Does not touch the hit/miss counters: this is a peek, used by
        resume accounting, not a load.
        """
        path = self._path(key)
        try:
            import json
            record = json.loads(path.read_text())
        except (OSError, ValueError):
            return False
        return record_is_current(record)


class SweepJournal:
    """Append-only JSONL trail of one sweep's landed and failed cells.

    The content-addressed cache is the durable *store* (resume
    correctness comes from per-cell cache lookups); the journal is the
    durable *trail*: one line per landed record or quarantined cell,
    flushed as it happens, so an interrupted or degraded sweep leaves
    an inspectable account of exactly what it paid for.  Journals live
    under ``<cache root>/journal/``, named by a digest of the grid's
    cache keys so re-running the same grid continues the same file; a
    fully-successful sweep clears its journal on the way out.

    Lines land in completion order, which under a parallel sweep is
    not deterministic -- the journal is operational evidence, never an
    input to the byte-identical merged store.
    """

    def __init__(self, path: pathlib.Path) -> None:
        self.path = pathlib.Path(path)

    @classmethod
    def for_keys(cls, root: pathlib.Path,
                 cache_keys: "list[str]") -> "SweepJournal":
        """The journal for the grid whose cell cache keys are given."""
        digest = hashlib.sha256(
            "\n".join(sorted(cache_keys)).encode()).hexdigest()[:20]
        return cls(pathlib.Path(root) / "journal" / f"{digest}.jsonl")

    def entries(self) -> "list[Dict[str, Any]]":
        """Every decodable journal line (a torn last line is skipped).

        A sweep killed mid-append leaves at most one partial line;
        tolerating it is what makes the journal safe to read right
        after a SIGKILL.
        """
        import json
        try:
            text = self.path.read_text()
        except OSError:
            return []
        out = []
        for line in text.splitlines():
            try:
                entry = json.loads(line)
            except ValueError:
                continue
            if isinstance(entry, dict):
                out.append(entry)
        return out

    def append(self, entry: Mapping[str, Any]) -> None:
        """Flush one completed/failed-cell line to the trail."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as handle:
            handle.write(canonical_dumps(dict(entry)) + "\n")

    def clear(self) -> None:
        """Remove the trail (a finished sweep owes no explanation)."""
        try:
            self.path.unlink()
        except OSError:
            pass
