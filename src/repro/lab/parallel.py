"""Process-pool fan-out shared by the sweep engine and the chaos CLI.

Kept free of any ``repro`` imports so every harness (``repro sweep``,
``repro chaos``) can use it without import cycles.  Workers receive
plain picklable items and the mapped function must be a module-level
callable; results come back in submission order, so a parallel map is a
drop-in replacement for the serial list comprehension and downstream
output stays deterministic regardless of worker count.
"""

from __future__ import annotations

import multiprocessing
from typing import Callable, Iterable, List, Sequence, TypeVar

Item = TypeVar("Item")
Result = TypeVar("Result")


def pool_context() -> multiprocessing.context.BaseContext:
    """The cheapest safe start method: fork where available."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def parallel_map(fn: Callable[[Item], Result], items: Iterable[Item],
                 procs: int = 1) -> List[Result]:
    """Map ``fn`` over ``items`` with ``procs`` workers, keeping order.

    ``procs <= 1`` (or a single item) runs inline -- no pool, no fork --
    so the serial path has zero multiprocessing overhead and identical
    semantics.  Items are handed out one at a time (``chunksize=1``)
    because sweep cells have widely varying simulation costs; batching
    would serialize a cheap cell behind an expensive one.
    """
    work: Sequence[Item] = list(items)
    if procs <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    with pool_context().Pool(processes=min(procs, len(work))) as pool:
        return pool.map(fn, work, chunksize=1)
