"""Process-pool fan-out shared by the sweep engine and the chaos CLI.

Kept free of any ``repro`` imports so every harness (``repro sweep``,
``repro chaos``) can use it without import cycles.  Workers receive
plain picklable items and the mapped function must be a module-level
callable; results come back in submission order, so a parallel map is a
drop-in replacement for the serial list comprehension and downstream
output stays deterministic regardless of worker count.

Internally results stream back ``imap_unordered``-style, each tagged
with its submission index and re-slotted on arrival: a cheap cell's
result is collected the moment it lands instead of queueing behind an
expensive earlier cell, and the final reassembly asserts every index
arrived exactly once.  This is the unsupervised fast path; sweeps that
need timeouts, retry, or crash survival go through
:class:`repro.lab.executor.SupervisedExecutor`, which layers a
supervision loop over the same index-tagged streaming idiom.
"""

from __future__ import annotations

import multiprocessing
from typing import Any, Callable, Iterable, List, Sequence, Tuple, TypeVar

Item = TypeVar("Item")
Result = TypeVar("Result")

#: slot marker for "this index has not reported back yet"
_MISSING = object()


def pool_context() -> multiprocessing.context.BaseContext:
    """The cheapest safe start method: fork where available."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn")


def _call_indexed(payload: Tuple[Callable, int, Any]) -> Tuple[int, Any]:
    fn, index, item = payload
    return index, fn(item)


def parallel_map(fn: Callable[[Item], Result], items: Iterable[Item],
                 procs: int = 1) -> List[Result]:
    """Map ``fn`` over ``items`` with ``procs`` workers, keeping order.

    ``procs <= 1`` (or a single item) runs inline -- no pool, no fork --
    so the serial path has zero multiprocessing overhead and identical
    semantics.  Items are handed out one at a time (``chunksize=1``)
    because sweep cells have widely varying simulation costs; batching
    would serialize a cheap cell behind an expensive one.
    """
    work: Sequence[Item] = list(items)
    if procs <= 1 or len(work) <= 1:
        return [fn(item) for item in work]
    slots: List[Any] = [_MISSING] * len(work)
    tagged = [(fn, index, item) for index, item in enumerate(work)]
    with pool_context().Pool(processes=min(procs, len(work))) as pool:
        for index, result in pool.imap_unordered(_call_indexed, tagged,
                                                 chunksize=1):
            slots[index] = result
    missing = [index for index, slot in enumerate(slots)
               if slot is _MISSING]
    if missing:
        raise RuntimeError(
            f"parallel_map lost {len(missing)} of {len(work)} "
            f"result(s); first missing indices: {missing[:8]}")
    return slots
