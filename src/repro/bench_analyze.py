"""Analysis benchmark harness: ``python -m repro bench-analyze``.

The race sanitizer is the analysis stack's inner loop: every mutation
kill, every dynamic gate, every optimizer admission pays one
``check_trace`` over a full event stream.  This module measures that
cost for **both oracles** -- the DePa-style order-maintenance checker
(``om``) and the reference vector clocks (``vc``) -- on counters-mode
traces recorded through the engine's sync tap, at a ladder of trace
sizes so the trajectory pins the *scaling*, not just one point.  It
also times the placement optimizer end to end on a few standing loops.

Results append to a JSON trajectory (``BENCH_analyze.json`` by
convention), one schema-versioned entry per invocation, exactly like
``bench-engine``: every entry carries a host ``calibration`` score
(plus a per-case score taken next to each measurement) and the
regression check flags a case only when both raw and
calibration-normalized throughput drop, so neither a slow CI machine
nor a burst of host load masquerades as a code regression.  Every case
is keyed by a stable label (``sanitize/<app>/n=<n>/<oracle>`` or
``optimize/<app>/<scheme>``) and compared against the most recent
baseline entry measuring the same label, so a small CI run checks
cleanly against a committed full-scale entry.
"""

from __future__ import annotations

import json
import pathlib
import platform
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from .analyze.gate import GATE_PARAMS
from .analyze.optimize import optimize
from .analyze.sanitizer import check_trace, event_stream
from .bench import calibration_score
from .depend.graph import DependenceGraph
from .lab.apps import build_app
from .schemes import make_scheme
from .sim.machine import Machine, MachineConfig

#: bump when the shape of a trajectory entry changes
ANALYZE_BENCH_SCHEMA_VERSION = 1

#: the app whose counters-mode trace feeds the sanitizer ladder
#: (fig2.1 x statement-oriented: ~19 tap events per iteration)
SANITIZER_APP = "fig2.1"
SANITIZER_SCHEME = "statement-oriented"

#: trace-size ladder per --scale; "full" tops out past 10^6 events,
#: which is the acceptance point the committed trajectory pins
SANITIZER_SIZES: Dict[str, Sequence[int]] = {
    "small": (4_000, 16_000),
    "full": (4_000, 16_000, 60_000),
}

DEFAULT_ORACLES = ("om", "vc")

#: (app, scheme) pairs the optimizer is timed on, at GATE_PARAMS sizes
OPTIMIZER_CASES = (
    ("fig2.1", "statement-oriented"),
    ("fold-chain", "process-oriented"),
    ("example3", "process-oriented"),
)


def _record_stream(n: int) -> List[Any]:
    """One counters-mode run of the ladder app; return its tap stream."""
    loop = build_app(SANITIZER_APP, {"n": n})
    scheme = make_scheme(SANITIZER_SCHEME)
    machine = Machine(MachineConfig(processors=8, metrics="counters",
                                    sync_tap=True))
    result = machine.run(scheme.instrument(loop))
    return event_stream(result)


class _Stream:
    """RunResult stand-in: a pre-built stream re-checked per repeat."""

    def __init__(self, events: List[Any]) -> None:
        self.tap = [(kind, where, task) for _seq, kind, where, task
                    in events]
        self.trace: List[Any] = []
        self.sync_trace: List[Any] = []


def bench_cases(scale: str = "small",
                oracles: Sequence[str] = DEFAULT_ORACLES,
                repeats: int = 1) -> Dict[str, Dict[str, Any]]:
    """Measure every case; return ``{label: result}`` dicts.

    Sanitizer cases report ``events`` and ``score_per_s`` (events
    checked per second, best of ``repeats``); optimizer cases report
    ``candidates`` (audit-trail length) and ``score_per_s`` (candidates
    scored per second).  Race counts and candidate counts are
    deterministic; only the wall clock varies.  Every case also
    records its own ``calibration`` score taken immediately after its
    timing samples, so normalization tracks bursty host load at the
    moment the case actually ran rather than one entry-wide snapshot.
    """
    cases: Dict[str, Dict[str, Any]] = {}
    for n in SANITIZER_SIZES[scale]:
        stream = _Stream(_record_stream(n))
        events = len(stream.tap)
        for oracle in oracles:
            best = float("inf")
            races = 0
            for _ in range(max(1, repeats)):
                start = time.perf_counter()
                races = len(check_trace(stream, oracle=oracle))
                best = min(best, time.perf_counter() - start)
            cases[f"sanitize/{SANITIZER_APP}/n={n}/{oracle}"] = {
                "kind": "sanitizer",
                "events": events,
                "races": races,
                "wall_s": round(best, 6),
                "score_per_s": round(events / best, 1),
                "calibration": round(calibration_score(), 1),
            }
    for app, scheme_name in OPTIMIZER_CASES:
        loop = build_app(app, GATE_PARAMS.get(app, {}))
        graph = DependenceGraph(loop)
        best = float("inf")
        candidates = 0
        # optimizer runs are tens of milliseconds: batch several calls
        # per timed sample so timer granularity and allocator state do
        # not swamp the measurement, then report the per-call average
        inner = 5
        for _ in range(max(1, repeats)):
            start = time.perf_counter()
            for _ in range(inner):
                report = optimize(loop, make_scheme(scheme_name),
                                  graph=graph, app=app)
            best = min(best, (time.perf_counter() - start) / inner)
            candidates = len(report.audit)
        cases[f"optimize/{app}/{scheme_name}"] = {
            "kind": "optimizer",
            "candidates": candidates,
            "wall_s": round(best, 6),
            "score_per_s": round(candidates / best, 1),
            "calibration": round(calibration_score(), 1),
        }
    return cases


def make_entry(scale: str = "small",
               oracles: Sequence[str] = DEFAULT_ORACLES,
               note: str = "", repeats: int = 1) -> Dict[str, Any]:
    """One schema-versioned trajectory entry."""
    return {
        "schema_version": ANALYZE_BENCH_SCHEMA_VERSION,
        "note": note,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "calibration": round(calibration_score(), 1),
        "cases": bench_cases(scale, oracles, repeats=repeats),
    }


def load_trajectory(path: pathlib.Path) -> Dict[str, Any]:
    """Read a trajectory file; an absent file is an empty trajectory."""
    if not path.exists():
        return {"schema_version": ANALYZE_BENCH_SCHEMA_VERSION,
                "entries": []}
    data = json.loads(path.read_text())
    if data.get("schema_version") != ANALYZE_BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported analyze-bench schema "
            f"{data.get('schema_version')!r}")
    return data


def append_entry(path: pathlib.Path, entry: Dict[str, Any]) -> None:
    """Append ``entry`` to the trajectory at ``path`` (atomic rewrite)."""
    data = load_trajectory(path)
    data["entries"].append(entry)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    tmp.replace(path)


def check_regression(entry: Dict[str, Any], baseline: Dict[str, Any],
                     min_ratio: float = 0.8) -> List[str]:
    """Compare ``entry`` against the last matching baseline entries.

    For every case label the entry measured, find the most recent
    baseline entry that measured the same label and compare both raw
    and *calibration-normalized* throughput (per-case calibration when
    recorded, the entry-wide score otherwise).  A case regresses only
    when **both** ratios fall below ``min_ratio``: a genuine code
    regression shows up in raw and normalized throughput alike, while
    a burst of host load at either the calibration moment or the case
    moment moves only one of the two.  Returns regression messages
    (empty: nothing fell below ``min_ratio`` of baseline).
    """
    problems: List[str] = []
    cal = float(entry["calibration"])
    for label, current in entry["cases"].items():
        ref = None
        for old in reversed(baseline.get("entries", [])):
            if label in old.get("cases", {}):
                ref = (old["cases"][label], float(old["calibration"]))
                break
        if ref is None:
            continue
        ref_case, ref_cal = ref
        cur_cal = float(current.get("calibration", cal))
        ref_case_cal = float(ref_case.get("calibration", ref_cal))
        raw_ratio = current["score_per_s"] / ref_case["score_per_s"]
        norm_ratio = ((current["score_per_s"] / cur_cal)
                      / (ref_case["score_per_s"] / ref_case_cal))
        if max(raw_ratio, norm_ratio) < min_ratio:
            problems.append(
                f"{label}: throughput fell to {raw_ratio:.2f}x raw / "
                f"{norm_ratio:.2f}x normalized of baseline "
                f"({current['score_per_s']:.0f}/s now vs "
                f"{ref_case['score_per_s']:.0f}/s then; calibration "
                f"{cur_cal:.0f} vs {ref_case_cal:.0f})")
    return problems


def format_entry(entry: Dict[str, Any]) -> str:
    """Human-readable table for one trajectory entry."""
    lines = [f"analyze bench ({entry['timestamp']}, "
             f"python {entry['python']}, "
             f"calibration {entry['calibration']:.0f})"]
    if entry.get("note"):
        lines[0] += f" -- {entry['note']}"
    lines.append(f"{'case':<42} {'size':>9} {'wall s':>9} "
                 f"{'score/s':>11}")
    for label in sorted(entry["cases"]):
        case = entry["cases"][label]
        size = case.get("events", case.get("candidates", 0))
        lines.append(f"{label:<42} {size:>9} {case['wall_s']:>9.3f} "
                     f"{case['score_per_s']:>11.0f}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro bench-analyze``."""
    from .cli import make_parser, add_common_options

    parser = make_parser(
        "repro bench-analyze",
        "Measure sanitizer throughput (events/sec, both oracles) and "
        "optimizer wall-clock, appending to a benchmark trajectory.")
    add_common_options(parser)
    parser.add_argument(
        "--scale", choices=sorted(SANITIZER_SIZES), default="small",
        help="trace-size ladder: 'small' for CI, 'full' adds the "
             ">=10^6-event top rung (default small)")
    parser.add_argument(
        "--oracle", action="append", default=None,
        choices=["om", "vc"],
        help="sanitizer oracle to measure (repeatable; default both)")
    parser.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="time each case N times and keep the best wall clock")
    parser.add_argument(
        "--note", default="", metavar="TEXT",
        help="free-form label stored in the trajectory entry")
    parser.add_argument(
        "--check", type=pathlib.Path, default=None, metavar="PATH",
        help="compare against the trajectory at PATH and exit non-zero "
             "on a calibration-normalized regression")
    parser.add_argument(
        "--min-ratio", type=float, default=0.8, metavar="R",
        help="regression threshold for --check: fail when normalized "
             "throughput drops below R x baseline (default 0.8)")
    args = parser.parse_args(argv)

    oracles = tuple(args.oracle or DEFAULT_ORACLES)
    entry = make_entry(args.scale, oracles, note=args.note,
                       repeats=args.repeat)
    print(format_entry(entry))

    status = 0
    if args.check is not None:
        baseline = load_trajectory(args.check)
        problems = check_regression(entry, baseline,
                                    min_ratio=args.min_ratio)
        for problem in problems:
            print(f"REGRESSION: {problem}", file=sys.stderr)
        if problems:
            status = 1
        else:
            print("regression check: ok "
                  f"(threshold {args.min_ratio:.2f}x, "
                  f"baseline {args.check})")
    if args.json is not None:
        append_entry(args.json, entry)
        print(f"appended entry to {args.json}")
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
