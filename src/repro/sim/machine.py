"""The simulated multiprocessor: processors + memory + sync fabric.

:class:`Machine` glues the pieces together: it builds an engine over a
fresh :class:`~repro.sim.memory.SharedMemory` and the workload's choice of
synchronization fabric, runs the workload's prologue (e.g. key
initialization for data-oriented schemes), then runs one coroutine per
processor which repeatedly grabs a loop iteration from the scheduler and
executes it.  The result is a :class:`~repro.sim.metrics.RunResult`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Protocol, Sequence

from ..faults.injector import FaultInjector
from ..faults.plan import FaultPlan
from ..recovery import RecoveryManager, RecoveryPolicy
from .engine import Engine, HazardError
from .memory import MemoryConfig, SharedMemory
from .metrics import EXTRA_SCHEMA_VERSION, RunResult
from .ops import Address, MemRead
from .scheduler import (ChunkSelfScheduler, GuidedSelfScheduler,
                        Scheduler, SelfScheduler, StaticScheduler)
from .sync_bus import SyncFabric

#: shared self-scheduling counter lives at this address (one hot word)
SCHED_COUNTER: Address = ("__sched__", 0)


class Workload(Protocol):
    """What a synchronization scheme hands to the machine.

    ``iterations`` is the ordered list of process ids; ``make_process``
    turns a process id into an operation generator.  ``prologue``
    generators run to completion (in parallel) before the loop starts and
    model per-run setup such as initializing data-oriented keys.
    """

    iterations: Sequence[int]

    def build_fabric(self, memory: SharedMemory) -> SyncFabric: ...

    def make_process(self, iteration: int) -> Generator: ...

    def prologue(self) -> List[Generator]: ...

    def initial_memory(self) -> Dict[Address, Any]: ...

    @property
    def sync_vars(self) -> int: ...


@dataclass
class MachineConfig:
    """Size and timing of the simulated multiprocessor.

    The defaults sketch a small bus-based shared-memory machine of the
    Alliant FX/8 class (the paper's stated target: "small scale
    multiprocessor systems such as the Cray X-MP, the Alliant FX/8, the
    Encore Multimax").
    """

    processors: int = 8
    memory: MemoryConfig = field(default_factory=MemoryConfig)
    #: "self" | "chunk" | "guided" | "cyclic" | "block"
    schedule: str = "self"
    #: chunk size for schedule="chunk" (Tang & Yew chunked
    #: self-scheduling)
    chunk_size: int = 4
    record_trace: bool = True
    max_cycles: int = 50_000_000
    #: seeded fault plan to inject (None or an empty plan: clean run,
    #: no injector is built and the event sequence is byte-identical)
    fault_plan: Optional[FaultPlan] = None
    #: recovery policy: when set *and* a non-empty fault plan is active,
    #: a RecoveryManager converts recoverable hazards into completed
    #: runs (retransmission, reincarnation, degraded fallback).  With no
    #: injector the layer is never constructed, so configuring recovery
    #: on a clean run changes nothing (zero-overhead pin).
    recovery: Optional[RecoveryPolicy] = None
    #: max consecutive engine events without process progress before a
    #: diagnosed DeadlockError (catches poll-mode livelocks early);
    #: None disables the stagnation watchdog
    stagnation_limit: Optional[int] = None
    #: "full" (default): collect the event stream alongside whatever
    #: record_trace selects.  "counters": opt-in fast path -- only
    #: end-of-run counters are wanted, so per-event collection (trace,
    #: activity, events) is skipped entirely; forces record_trace off.
    metrics: str = "full"
    #: record the lightweight sanitizer stream (``RunResult.tap``):
    #: (kind, where, task) tuples in issue order, three words per event
    #: instead of a full AccessRecord -- works in any metrics mode, and
    #: is how counters-mode runs stay race-checkable
    sync_tap: bool = False

    def __post_init__(self) -> None:
        if self.processors < 1:
            raise ValueError("need at least one processor")
        if self.schedule not in ("self", "chunk", "guided", "cyclic",
                                 "block"):
            raise ValueError(f"unknown schedule {self.schedule!r}")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.stagnation_limit is not None and self.stagnation_limit < 1:
            raise ValueError("stagnation_limit must be >= 1 (or None)")
        if self.metrics not in ("full", "counters"):
            raise ValueError(f"unknown metrics mode {self.metrics!r}")
        if self.metrics == "counters":
            self.record_trace = False


class Machine:
    """A P-processor shared-memory multiprocessor simulator."""

    def __init__(self, config: Optional[MachineConfig] = None) -> None:
        self.config = config or MachineConfig()
        #: side-channel diagnostics from the most recent :meth:`run`
        #: (e.g. ``events_processed``); not part of the RunResult, so
        #: result files and their schema are unaffected
        self.last_run_info: Dict[str, Any] = {}

    def _make_scheduler(self, iterations: Sequence[int]) -> Scheduler:
        if self.config.schedule == "self":
            return SelfScheduler(iterations)
        if self.config.schedule == "chunk":
            return ChunkSelfScheduler(iterations,
                                      chunk=self.config.chunk_size)
        if self.config.schedule == "guided":
            return GuidedSelfScheduler(iterations,
                                       self.config.processors)
        return StaticScheduler(iterations, self.config.processors,
                               policy=self.config.schedule)

    def _processor(self, pid: int, scheduler: Scheduler,
                   workload: Workload, recovery=None) -> Generator:
        name = f"cpu{pid}"
        while True:
            if scheduler.needs_shared_grab(pid):
                # fetch&add on the shared iteration counter
                yield MemRead(SCHED_COUNTER)
            iteration = scheduler.next_for(pid)
            if iteration is None:
                return
            if recovery is not None:
                # In-flight tracking: a crash mid-iteration turns into a
                # replay job from the journalled checkpoint.
                recovery.iteration_started(name, iteration)
            yield from workload.make_process(iteration)
            if recovery is not None:
                recovery.iteration_finished(name)

    def run(self, workload: Workload) -> RunResult:
        """Simulate ``workload`` to completion and return its metrics."""
        memory = SharedMemory(self.config.memory)
        memory.preload(workload.initial_memory())
        fabric = workload.build_fabric(memory)
        injector = None
        plan = self.config.fault_plan
        if plan is not None and not plan.is_empty:
            injector = FaultInjector(plan)
        engine = Engine(memory, fabric,
                        max_cycles=self.config.max_cycles,
                        record_trace=self.config.record_trace,
                        injector=injector,
                        stagnation_limit=self.config.stagnation_limit,
                        collect_events=(self.config.metrics != "counters"),
                        sync_tap=self.config.sync_tap)
        recovery = None
        if injector is not None and self.config.recovery is not None:
            recovery = RecoveryManager(self.config.recovery, plan)
            recovery.attach(engine, workload)
            recovery._grab_op = MemRead(SCHED_COUNTER)
            enable = getattr(workload, "enable_checkpoints", None)
            if enable is not None:
                enable()

        # Prologue: run setup processes (e.g. key initialization) spread
        # over the machine's processors before the loop begins.
        prologue = workload.prologue()
        if prologue:
            for index, gen in enumerate(prologue):
                engine.spawn(gen, name=f"init{index}")
                if recovery is not None:
                    recovery.register_worker(f"init{index}", index,
                                             f"init{index}")
            engine.run()
        init_cycles = engine.now

        scheduler = self._make_scheduler(workload.iterations)
        if recovery is not None:
            recovery.set_scheduler(scheduler)
        stats = [
            engine.spawn(self._processor(pid, scheduler, workload,
                                         recovery),
                         name=f"cpu{pid}")
            for pid in range(self.config.processors)
        ]
        if recovery is not None:
            for pid in range(self.config.processors):
                recovery.register_worker(f"cpu{pid}", pid, f"cpu{pid}")
        try:
            makespan = engine.run()
        except HazardError as err:
            # Enrich the diagnosis with scheduler state: how much loop
            # work was never even handed out when the run died.
            if err.report is not None:
                err.report.unclaimed_iterations = scheduler.remaining()
            raise

        covered = getattr(fabric, "covered_writes", 0)
        self.last_run_info = {"events_processed": engine.events_processed}
        extra: Dict[str, Any] = {"schema_version": EXTRA_SCHEMA_VERSION,
                                 "events": engine.events,
                                 "activity": engine.activity}
        if injector is not None:
            extra["faults"] = dict(injector.counters)
        if recovery is not None:
            extra["recovery"] = dict(recovery.counters)
        return RunResult(
            makespan=makespan,
            processors=stats,
            memory_transactions=memory.transactions,
            memory_hotspot=memory.max_module_traffic(),
            sync_transactions=fabric.transactions,
            covered_writes=covered,
            sync_vars=workload.sync_vars,
            sync_storage_words=fabric.storage_words,
            init_cycles=init_cycles,
            trace=engine.trace,
            sync_trace=engine.sync_trace,
            final_memory=memory.snapshot(),
            extra=extra,
            tap=engine.tap,
        )
