"""Operation vocabulary for simulated processes.

A simulated *process* (for example one iteration of a ``DOACROSS`` loop) is
a Python generator.  Each value it yields is one of the operation records
defined here; the :class:`~repro.sim.engine.Engine` interprets the record,
advances simulated time, charges the appropriate hardware resources, and
resumes the generator (sending back a result for value-producing
operations such as :class:`MemRead`).

The vocabulary is deliberately small -- it is the contract between the
synchronization schemes (which *emit* operations) and the hardware
substrate (which *executes* them):

``Compute``
    Local computation; occupies the processor, touches nothing shared.
``MemRead`` / ``MemWrite``
    Shared-memory data accesses.  They go through the interleaved memory
    model, so they observe module latency and contention (hot spots).
``SyncRead`` / ``SyncWrite``
    Accesses to a synchronization variable through a
    :class:`~repro.sim.sync_bus.SyncFabric`.  Depending on the fabric the
    variable may live in shared memory (data-oriented keys) or in
    broadcast registers with free local reads (statement/process
    counters).
``WaitUntil``
    Busy-wait until a predicate over a synchronization variable becomes
    true.  The engine accounts the elapsed time as *spin* cycles and, when
    the fabric requires it, charges one transaction per poll.
``Fence``
    Marks the point where a process's previous writes are globally
    visible; schemes issue it before signalling completion of a source
    statement (requirement (1) of section 2.2 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Tuple

#: A shared-memory address: an (array name, flat element index) pair.
Address = Tuple[str, int]


@dataclass(frozen=True, slots=True)
class Compute:
    """Occupy the processor for ``cycles`` cycles of local work."""

    cycles: int

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise ValueError(f"negative compute time: {self.cycles}")


@dataclass(frozen=True, slots=True)
class MemRead:
    """Read one word from shared memory; the engine sends the value back."""

    addr: Address


@dataclass(frozen=True, slots=True)
class MemWrite:
    """Write one word to shared memory."""

    addr: Address
    value: Any


@dataclass(frozen=True, slots=True)
class SyncRead:
    """Read a synchronization variable; the engine sends the value back."""

    var: int


@dataclass(frozen=True, slots=True)
class SyncWrite:
    """Write a synchronization variable.

    ``coverable`` marks writes that a later write to the same variable may
    overwrite while still queued for the broadcast bus (the write-coverage
    optimization of section 6: "an issued write need not be sent out if a
    second write to the same PC arrives before the former has gained the
    bus access").

    ``checkpoint`` optionally carries a recovery journal entry that the
    engine records *atomically with the issue of this write*: either both
    the signal and its journal entry happen, or neither.  A checkpoint on
    a separate, later op would open a crash window in which a
    non-idempotent signal had been issued but not journalled, making
    replay re-issue it.  Schemes only attach checkpoints when a
    :class:`~repro.recovery.manager.RecoveryManager` is active.
    """

    var: int
    value: Any
    coverable: bool = False
    checkpoint: Optional[dict] = None


@dataclass(frozen=True, slots=True)
class SyncUpdate:
    """Atomic read-modify-write of a synchronization variable.

    ``fn`` maps the committed value to the new value at commit time; the
    whole update is one fabric transaction.  Models the Cedar-style
    synchronization processor in each global memory module, which can
    test-and-increment a key atomically at the memory side.

    ``checkpoint`` is journalled atomically with the issue, exactly as
    for :class:`SyncWrite`.
    """

    var: int
    fn: Callable[[Any], Any]
    checkpoint: Optional[dict] = None


@dataclass(frozen=True, slots=True)
class WaitUntil:
    """Busy-wait until ``predicate(value_of_var)`` is true.

    The predicate must be monotonic: once true it stays true.  This mirrors
    the paper's primitives, which always wait for a counter to *exceed* a
    value, never to equal one transiently.
    """

    var: int
    predicate: Callable[[Any], bool]
    #: human-readable reason, kept in the trace (e.g. "wait_PC(2,1)").
    reason: str = ""
    #: optional spin budget in cycles: when set, the engine raises a
    #: diagnosed DeadlockError if the wait is still unsatisfied after
    #: this many cycles (bounded wait; see schemes.base.bound_waits).
    max_spin: Optional[int] = None


@dataclass(frozen=True, slots=True)
class Fence:
    """Drain this process's pending shared-memory writes.

    Completion of a source statement may be signalled only after its
    effect is observable by other processes; ``Fence`` models the wait for
    that visibility.
    """


@dataclass(frozen=True, slots=True)
class Annotate:
    """Record a zero-cost marker in the trace (used by the validator)."""

    kind: str
    payload: dict = field(default_factory=dict)


#: Union of every record a process may yield.
Operation = (Compute, MemRead, MemWrite, SyncRead, SyncWrite, SyncUpdate,
             WaitUntil, Fence, Annotate)
