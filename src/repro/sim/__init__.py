"""Simulated shared-memory multiprocessor substrate.

The paper evaluates its synchronization schemes on 1980s shared-memory
machines (Alliant FX/8, Cray X-MP, Cedar).  This package is the
substitute substrate: an event-driven simulator with interleaved memory
modules (hot-spot contention), a broadcast synchronization bus with local
register images and write coverage (section 6 of the paper), dynamic
self-scheduling, and per-processor cycle accounting.
"""

from .engine import (AccessRecord, DeadlockError, Engine, HazardError,
                     SimulationLimitError, TaskStats)
from .machine import Machine, MachineConfig, SCHED_COUNTER, Workload
from .memory import MemoryConfig, SharedMemory
from .metrics import (EXTRA_SCHEMA_VERSION, FaultCounters, RecoveryCounters,
                      RunResult)
from .ops import (Address, Annotate, Compute, Fence, MemRead, MemWrite,
                  SyncRead, SyncUpdate, SyncWrite, WaitUntil)
from .scheduler import Scheduler, SelfScheduler, StaticScheduler
from .cache_fabric import CachedSyncFabric
from .sync_bus import BroadcastSyncFabric, MemorySyncFabric, SyncFabric
from .validate import (DependenceInstance, Tag, ValidationError,
                       check_dependence_instances, check_final_state,
                       check_reads_match_recovered,
                       check_reads_match_sequential, mix, statement_reads)

__all__ = [
    "AccessRecord", "Address", "Annotate", "BroadcastSyncFabric",
    "CachedSyncFabric", "Compute",
    "DeadlockError", "DependenceInstance", "EXTRA_SCHEMA_VERSION", "Engine",
    "FaultCounters", "Fence",
    "HazardError", "Machine",
    "RecoveryCounters",
    "MachineConfig", "MemRead", "MemWrite", "MemoryConfig",
    "MemorySyncFabric", "RunResult", "SCHED_COUNTER", "Scheduler",
    "SelfScheduler", "SharedMemory", "SimulationLimitError", "StaticScheduler",
    "SyncFabric", "SyncRead", "SyncUpdate", "SyncWrite", "Tag", "TaskStats",
    "ValidationError", "WaitUntil", "Workload",
    "check_dependence_instances", "check_final_state",
    "check_reads_match_recovered", "check_reads_match_sequential",
    "mix", "statement_reads",
]
