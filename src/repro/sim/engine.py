"""Event-driven simulation engine.

Simulated processes are Python generators yielding the operation records
of :mod:`repro.sim.ops`.  The engine owns simulated time, interprets each
operation against the shared memory and the synchronization fabric, and
keeps per-task accounting (busy / spin / stall cycles).

Determinism: events are ordered by ``(time, priority, arrival)``.
Commits (memory and fabric value installations) run at priority 0,
process resumptions at priority 1, so a value committed at time *t* is
visible to every process step executing at *t*.  Arrival order breaks
remaining ties FIFO, making every simulation fully reproducible.

The event queue is a bucketed calendar queue: a dict from absolute time
to a ``(commits, resumes)`` list pair, plus a heap of the *distinct*
times.  Scheduling is an append (the common case: one dict lookup and a
list append, no tuple allocation, no sequence counter); draining walks
the two lists with cursors, re-checking the commit list after every
resume so a commit scheduled *at* the current cycle still precedes every
later same-cycle resume -- exactly the old ``(time, priority, seq)``
heap order, at a fraction of the cost.  Resume entries are usually the
:class:`_Task` objects themselves rather than closures; the drain loop
type-dispatches on the entry.

Robustness hooks (all inert by default):

* An optional :class:`~repro.faults.injector.FaultInjector` perturbs the
  run -- per-step stall windows and crashes, memory-latency jitter,
  dropped or duplicated ``SyncUpdate`` commits.  Draws happen in event
  order, so a seeded plan replays byte-for-byte.  With no injector the
  engine steps through :meth:`Engine._step_clean`, which contains no
  fault-probe code at all (the zero-overhead pin).
* Every blocking path records the task's ``wait_state`` so that when the
  simulation gets stuck the engine can hand the whole task table to the
  hazard watchdog (:mod:`repro.faults.watchdog`) and raise a *diagnosed*
  :class:`DeadlockError` / :class:`SimulationLimitError` carrying the
  wait-for graph and its blocking cycle.
* ``stagnation_limit`` bounds the number of consecutive events processed
  without any process stepping forward, catching poll-mode livelocks
  (which keep the event queue busy forever) long before the cycle
  budget; ``WaitUntil.max_spin`` bounds individual waits the same way
  for event-mode parks.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from .memory import SharedMemory
from .ops import (Annotate, Compute, Fence, MemRead, MemWrite, SyncRead,
                  SyncUpdate, SyncWrite, WaitUntil)
from .sync_bus import SyncFabric

#: Event priorities: commits become visible before any same-cycle resume.
_PRIORITY_COMMIT = 0
_PRIORITY_RESUME = 1


class HazardError(RuntimeError):
    """Base for simulation failures carrying a structured diagnosis.

    ``report`` is a :class:`repro.faults.watchdog.HazardReport` (or
    ``None`` for errors raised outside a running engine): per-task
    blocking state, the wait-for graph, and -- when one exists -- the
    blocking cycle.  The report's rendering is appended to the message,
    so ``str(err)`` stays fully informative.
    """

    def __init__(self, message: str, report=None) -> None:
        if report is not None:
            message = f"{message}\n{report.format()}"
        super().__init__(message)
        self.report = report

    @property
    def tasks(self):
        """Per-task diagnoses (empty when no report was attached)."""
        return self.report.tasks if self.report is not None else []

    @property
    def cycle(self):
        """The blocking wait-for cycle as task names, when one exists."""
        return self.report.cycle if self.report is not None else None


class DeadlockError(HazardError):
    """Raised when live tasks remain but no progress can ever happen."""


class SimulationLimitError(HazardError):
    """Raised when the simulation exceeds its cycle budget."""


@dataclass(slots=True)
class TaskStats:
    """Cycle accounting for one task (usually one processor)."""

    name: str = ""
    busy: int = 0          # Compute cycles
    spin: int = 0          # busy-wait cycles inside WaitUntil
    stall: int = 0         # waiting on memory / fabric round trips
    sync_ops: int = 0      # SyncRead/SyncWrite/WaitUntil operations issued
    waits_satisfied_immediately: int = 0
    done_at: int = 0

    @property
    def accounted(self) -> int:
        """Cycles attributed to some activity (rest is idle)."""
        return self.busy + self.spin + self.stall


@dataclass(slots=True)
class AccessRecord:
    """One shared-memory access, as seen by the validator.

    ``commit`` is when the access became globally visible (write) or when
    the value was sampled (read); the engine guarantees commit order is
    value order.
    """

    commit: int
    kind: str            # "R" or "W"
    addr: Tuple[str, int]
    value: Any
    task: str
    tag: Any             # whatever the process last set via Annotate("tag")
    #: global issue-order sequence number, shared with the sync trace so
    #: data and synchronization events merge into one program-order- and
    #: causality-consistent stream (the vector-clock sanitizer's input)
    seq: int = 0


class _Task:
    """Internal per-generator bookkeeping."""

    __slots__ = ("gen", "stats", "tag", "pending_value", "alive",
                 "last_write_commit", "on_done", "store_buffer",
                 "crashed", "ops", "wait_state", "wait_timeout",
                 "stall_resume")

    def __init__(self, gen: Generator, stats: TaskStats,
                 on_done: Optional[Callable[[], None]] = None) -> None:
        self.gen = gen
        self.stats = stats
        self.tag: Any = None
        self.pending_value: Any = None
        self.alive = True
        self.last_write_commit = 0
        self.on_done = on_done
        #: outstanding (uncommitted) writes: addr -> [count, last value];
        #: reads by this task forward from here (store-to-load forwarding)
        self.store_buffer: Dict[Tuple[str, int], list] = {}
        #: killed by fault injection (still counts as never-completed)
        self.crashed = False
        #: operations interpreted so far (crash-targeting, diagnosis)
        self.ops = 0
        #: current blocking state, or None while runnable:
        #: (state, var, reason, since) with state in
        #: "parked" | "polling" | "stalled" | "crashed"
        self.wait_state: Optional[Tuple[str, Optional[int], str, int]] = None
        #: armed bounded-wait timeout event, cancelled when the wait is
        #: satisfied (cancelled events are skipped without advancing time)
        self.wait_timeout: Optional["_Timeout"] = None
        #: next resume continues an injected stall (skip the fault probes)
        self.stall_resume = False


class _Timeout:
    """A cancellable queue entry (armed bounded-wait deadline).

    Only the engine creates these; the drain loop skips a cancelled
    timeout without advancing simulated time, so a satisfied wait never
    stretches the makespan out to its deadline.
    """

    __slots__ = ("fn", "cancelled")

    def __init__(self, fn: Callable[[], None]) -> None:
        self.fn = fn
        self.cancelled = False


class _ReadDone:
    """Completion of a shared-memory read (executed inline by the fast
    drain loop: deliver the value, record the access, queue the next
    step).

    A plain closure would re-capture the same five values per read; a
    slotted record is cheaper to build and the fast drain loop runs it
    without a Python-level call.  :meth:`run` is the out-of-line
    equivalent for the tracked drain.
    """

    __slots__ = ("engine", "task", "addr", "tag", "seq")

    def __init__(self, engine: "Engine", task: "_Task", addr, tag,
                 seq: int) -> None:
        self.engine = engine
        self.task = task
        self.addr = addr
        self.tag = tag
        self.seq = seq

    def run(self) -> None:
        engine = self.engine
        task = self.task
        value = engine.memory.read(self.addr)
        if engine.record_trace:
            engine.trace.append(AccessRecord(
                commit=engine.now, kind="R", addr=self.addr, value=value,
                task=task.stats.name, tag=self.tag, seq=self.seq))
        task.pending_value = value
        engine._open_resumes.append(task)


class _WriteCommit:
    """Global visibility of a posted shared-memory write (commit phase,
    executed inline by the fast drain loop; :meth:`run` for the tracked
    one)."""

    __slots__ = ("engine", "task", "addr", "value", "tag", "seq")

    def __init__(self, engine: "Engine", task: "_Task", addr, value, tag,
                 seq: int) -> None:
        self.engine = engine
        self.task = task
        self.addr = addr
        self.value = value
        self.tag = tag
        self.seq = seq

    def run(self) -> None:
        engine = self.engine
        task = self.task
        addr = self.addr
        engine.memory.write(addr, self.value)
        entry = task.store_buffer.get(addr)
        if entry is not None:
            entry[0] -= 1
            if entry[0] == 0:
                del task.store_buffer[addr]
        if engine.record_trace:
            engine.trace.append(AccessRecord(
                commit=engine.now, kind="W", addr=addr, value=self.value,
                task=task.stats.name, tag=self.tag, seq=self.seq))


class _SyncReadDone:
    """Completion of a SyncRead round trip (slotted, no closure)."""

    __slots__ = ("engine", "task", "var")

    def __init__(self, engine: "Engine", task: "_Task", var: int) -> None:
        self.engine = engine
        self.task = task
        self.var = var

    def __call__(self) -> None:
        engine = self.engine
        task = self.task
        value = engine.fabric.value(self.var)
        # Reading a sync variable is an acquire: the improved PC
        # scheme's ownership check (mark_PC) orders the marker after
        # the release it observed.
        engine._record_sync("acq", self.var, value, task)
        task.pending_value = value
        engine._open_resumes.append(task)


class _UpdateDone:
    """Completion of a SyncUpdate round trip: deliver the RMW result."""

    __slots__ = ("engine", "task", "var", "cell")

    def __init__(self, engine: "Engine", task: "_Task", var: int,
                 cell: dict) -> None:
        self.engine = engine
        self.task = task
        self.var = var
        self.cell = cell

    def __call__(self) -> None:
        engine = self.engine
        task = self.task
        value = self.cell.get("value")
        # An atomic RMW is both an acquire (it observed the old
        # value) and a release (it published the new one).
        engine._record_sync("upd", self.var, value, task)
        task.pending_value = value
        engine._open_resumes.append(task)


class _Poll:
    """One task's polling busy-wait, reused across re-polls.

    Poll-mode waits (sync variables in shared memory) issue a charged
    read every ``poll_interval`` cycles until the predicate holds.  The
    two closures per re-poll the old implementation allocated are the
    dominant cost of spin-heavy runs; this object mutates its own slots
    and re-enqueues itself instead.  ``phase`` alternates between 0
    (issue the next poll read) and 1 (the read completed: test the
    predicate).
    """

    __slots__ = ("engine", "task", "op", "started", "reason", "first",
                 "phase")

    def __init__(self, engine: "Engine", task: "_Task", op: WaitUntil,
                 started: int) -> None:
        self.engine = engine
        self.task = task
        self.op = op
        self.started = started
        self.reason = op.reason or f"poll on var {op.var}"
        self.first = True
        self.phase = 1

    def __call__(self) -> None:
        engine = self.engine
        task = self.task
        op = self.op
        if self.phase == 0:
            # Issue the next poll read (a charged fabric transaction).
            if not task.alive:
                return
            done = engine.fabric.read_cost(op.var, engine.now,
                                           requester=task.stats.name)
            task.wait_state = ("polling", op.var, self.reason,
                               self.started)
            self.phase = 1
            if done == engine._open_time:
                engine._open_resumes.append(self)
                return
            bucket = engine._buckets.get(done)
            if bucket is None:
                bucket = engine._buckets[done] = ([], [])
                heapq.heappush(engine._times, done)
            bucket[1].append(self)
            return
        # The poll read completed: test the predicate.
        now = engine.now
        if op.predicate(engine.fabric.value(op.var)):
            task.wait_state = None
            if self.first:
                task.stats.waits_satisfied_immediately += 1
            else:
                task.stats.spin += now - self.started
                if engine.record_trace and now > self.started:
                    engine.activity.append((task.stats.name, "spin",
                                            self.started, now))
            engine._record_sync("acq", op.var,
                                engine.fabric.value(op.var), task)
            task.pending_value = None
            engine._open_resumes.append(task)
            return
        if op.max_spin is not None and now - self.started > op.max_spin:
            raise DeadlockError(
                f"bounded wait expired: task {task.stats.name!r} "
                f"polled over {op.max_spin} cycles in "
                f"{op.reason or f'poll on var {op.var}'!r}",
                report=engine._diagnose())
        if self.first:
            # Spin accounting starts when the mandatory first read
            # completed, not when it was issued.
            self.started = now
            self.first = False
        self.phase = 0
        time = now + engine.fabric.poll_interval
        if time == engine._open_time:
            engine._open_resumes.append(self)
            return
        bucket = engine._buckets.get(time)
        if bucket is None:
            bucket = engine._buckets[time] = ([], [])
            heapq.heappush(engine._times, time)
        bucket[1].append(self)


class Engine:
    """Interprets process generators against the hardware substrate."""

    def __init__(self, memory: SharedMemory, fabric: SyncFabric,
                 max_cycles: int = 50_000_000, record_trace: bool = True,
                 injector=None,
                 stagnation_limit: Optional[int] = None,
                 collect_events: bool = True,
                 sync_tap: bool = False) -> None:
        self.memory = memory
        self.fabric = fabric
        fabric.attach(self)
        self.now = 0
        self.max_cycles = max_cycles
        self.record_trace = record_trace
        #: collect Annotate markers into :attr:`events`; off in the
        #: counters-only fast path (``metrics="counters"``)
        self.collect_events = collect_events
        #: optional FaultInjector perturbing this run (None = clean)
        self.injector = injector
        #: optional RecoveryManager converting recoverable hazards into
        #: completed runs (None = detect-and-die, PR 1 behaviour)
        self.recovery = None
        #: max consecutive events without a process step before the run
        #: is declared stagnant (None disables the watchdog)
        self.stagnation_limit = stagnation_limit
        self.trace: List[AccessRecord] = []
        #: synchronization events for the dynamic race sanitizer:
        #: (seq, kind, var, value, task) with kind "rel" (SyncWrite
        #: issue), "acq" (wait satisfaction / sync read completion) or
        #: "upd" (atomic read-modify-write completion).  Seq numbers are
        #: shared with AccessRecord.seq: merging both streams by seq
        #: yields an order consistent with per-task program order and
        #: with every release-before-matching-acquire.
        self.sync_trace: List[Tuple[int, str, int, Any, str]] = []
        self._sync_seq = itertools.count()
        #: lightweight sanitizer stream: (kind, where, task) appended at
        #: exactly the program points where the trace recorder allocates
        #: seq numbers, so list index *is* issue order -- available in
        #: any metrics mode, including counters (None when off)
        self.tap: Optional[List[Tuple[str, Any, str]]] = (
            [] if sync_tap else None)
        #: (time, kind, payload) markers from Annotate ops (phase events)
        self.events: List[Tuple[int, str, dict]] = []
        #: (task, kind, start, end) activity segments for timelines;
        #: kind is "busy" or "spin"; only recorded when record_trace is on
        self.activity: List[Tuple[str, str, int, int]] = []
        #: calendar queue: absolute time -> (commit list, resume list)
        self._buckets: Dict[int, Tuple[list, list]] = {}
        #: heap of distinct bucket times (each pushed exactly once)
        self._times: List[int] = []
        #: the bucket currently being drained (its lists stay reachable
        #: so same-cycle scheduling is a plain append)
        self._open_time = -1
        self._open_commits: list = []
        self._open_resumes: list = []
        self._live_tasks = 0
        #: live events executed (commits + resumes), the bench-engine
        #: throughput denominator
        self.events_processed = 0
        #: every task ever spawned (hazard diagnosis walks this)
        self._tasks: List[_Task] = []
        #: tasks parked in WaitUntil, keyed by fabric variable
        self._waiters: Dict[int, List[Tuple[_Task, WaitUntil, int]]] = {}
        self._parked = 0
        #: last task to write/update each sync variable (wait-for edges)
        self.var_writers: Dict[int, str] = {}
        #: task names killed by fault injection
        self.crashed: List[str] = []
        self._idle_events = 0
        #: fault probes live only in the fault-path step; a clean run
        #: pays nothing per event for the injection machinery
        self._step = (self._step_clean if injector is None
                      else self._step_fault)
        #: exact-type -> bound handler; op subclasses fall back to an
        #: isinstance walk (in the old chain's order) and are cached
        self._handlers: Dict[type, Callable[[_Task, Any], None]] = {
            Compute: self._op_compute,
            MemRead: self._op_mem_read,
            MemWrite: self._op_mem_write,
            SyncRead: self._op_sync_read,
            SyncWrite: self._op_sync_write,
            SyncUpdate: self._op_sync_update,
            WaitUntil: self._op_wait_until,
            Fence: self._op_fence,
            Annotate: self._op_annotate,
        }
        self._dispatch_order = (Compute, MemRead, MemWrite, SyncRead,
                                SyncWrite, SyncUpdate, WaitUntil, Fence,
                                Annotate)

    # ------------------------------------------------------------------
    # scheduling primitives (also used by the fabric)
    # ------------------------------------------------------------------

    def schedule_commit(self, time: int, fn: Callable[[], None]) -> None:
        """Run ``fn`` at ``time``, before any process step at that time."""
        if time == self._open_time:
            self._open_commits.append(fn)
        elif time >= self.now:
            bucket = self._buckets.get(time)
            if bucket is None:
                bucket = self._buckets[time] = ([], [])
                heapq.heappush(self._times, time)
            bucket[0].append(fn)
        else:
            raise ValueError(
                f"event scheduled in the past: {time} < {self.now}")

    def schedule(self, time: int, fn: Callable[[], None]) -> None:
        """Run ``fn`` at ``time`` in process-step order."""
        if time == self._open_time:
            self._open_resumes.append(fn)
        elif time >= self.now:
            bucket = self._buckets.get(time)
            if bucket is None:
                bucket = self._buckets[time] = ([], [])
                heapq.heappush(self._times, time)
            bucket[1].append(fn)
        else:
            raise ValueError(
                f"event scheduled in the past: {time} < {self.now}")

    # The resume entry for a task is the task object itself: no closure,
    # no tuple.  ``schedule`` and ``_push_resume`` share one list, so
    # FIFO order between task resumes and scheduled callbacks is exactly
    # the old sequence-number order.
    _push_resume = schedule

    def _resume_at(self, task: _Task, time: int, value: Any = None) -> None:
        task.pending_value = value
        self._push_resume(time, task)

    def notify_var(self, var: int) -> None:
        """A fabric variable changed: wake its parked waiters in one pass.

        The committed value is read once and every parked predicate is
        evaluated against it (commits precede same-cycle resumes, so no
        other commit can interleave); satisfied waiters are appended
        directly to the next cycle's resume bucket in park order --
        batched broadcast delivery, one event per woken task and nothing
        else.
        """
        waiters = self._waiters.pop(var, None)
        if not waiters:
            return
        value = self.fabric.value(var)
        record = self.record_trace
        now = self.now
        wake = None
        for task, op, parked_at in waiters:
            self._parked -= 1
            if op.predicate(value):
                task.wait_state = None
                timeout = task.wait_timeout
                if timeout is not None:
                    timeout.cancelled = True
                    task.wait_timeout = None
                task.stats.spin += now - parked_at
                if record:
                    if now > parked_at:
                        self.activity.append((task.stats.name, "spin",
                                              parked_at, now))
                    self.sync_trace.append((next(self._sync_seq), "acq",
                                            var, value, task.stats.name))
                if self.tap is not None:
                    self.tap.append(("acq", var, task.stats.name))
                task.pending_value = None
                if wake is None:
                    time = now + 1
                    bucket = self._buckets.get(time)
                    if bucket is None:
                        bucket = self._buckets[time] = ([], [])
                        heapq.heappush(self._times, time)
                    wake = bucket[1]
                wake.append(task)
            else:
                self._park(task, op, parked_at)

    # ------------------------------------------------------------------
    # task lifecycle
    # ------------------------------------------------------------------

    def spawn(self, gen: Generator, name: str = "",
              on_done: Optional[Callable[[], None]] = None) -> TaskStats:
        """Add a process; it starts at the current simulated time."""
        stats = TaskStats(name=name)
        task = _Task(gen, stats, on_done)
        self._live_tasks += 1
        self._tasks.append(task)
        self._push_resume(self.now, task)
        return stats

    def run(self) -> int:
        """Drain the event queue; return the final simulated time.

        Raises a diagnosed :class:`SimulationLimitError` when the cycle
        budget is exceeded and a diagnosed :class:`DeadlockError` when
        live tasks remain with an empty queue (classic deadlock) or when
        ``stagnation_limit`` consecutive events fire without any process
        stepping (poll-mode livelock).
        """
        if self.stagnation_limit is not None:
            self._drain_tracked()
        else:
            self._drain_fast()
        if self._live_tasks > 0:
            raise DeadlockError(
                f"{self._live_tasks} task(s) never completed and no "
                f"event can ever fire",
                report=self._diagnose())
        if self.recovery is not None and self.recovery.outstanding() > 0:
            # Crashed tasks were adopted but their replay jobs were
            # abandoned (reincarnation budget exhausted): the run must
            # not pass for complete.
            raise DeadlockError(
                f"{self.recovery.outstanding()} adopted iteration(s) "
                f"abandoned by the recovery layer",
                report=self._diagnose())
        return self.now

    def _drain_fast(self) -> None:
        """The hot drain loop (no stagnation watchdog configured).

        Per-bucket: advance ``self.now`` once (unless the bucket holds
        nothing but cancelled timeouts -- only :class:`_Timeout` entries
        are ever cancellable, so one cheap scan decides), then walk the
        commit and resume lists with cursors, re-checking the commit
        list before every resume so commits scheduled *at* the open
        cycle still precede every later same-cycle resume.  Memory
        read-completion and write-commit records execute inline.
        """
        buckets = self._buckets
        times = self._times
        heappop = heapq.heappop
        max_cycles = self.max_cycles
        step = self._step
        memory = self.memory
        record = self.record_trace
        trace = self.trace
        while times:
            time = heappop(times)
            commits, resumes = buckets.pop(time)
            if not commits:
                for e in resumes:
                    if e.__class__ is not _Timeout or not e.cancelled:
                        break
                else:
                    # Nothing live: do not advance the clock (a bucket
                    # of satisfied-wait deadlines must not stretch the
                    # makespan).
                    continue
            if time > max_cycles:
                raise SimulationLimitError(
                    f"simulation exceeded {max_cycles} cycles",
                    report=self._diagnose())
            self.now = time
            self._open_time = time
            self._open_commits = commits
            self._open_resumes = resumes
            ci = ri = skipped = 0
            try:
                while True:
                    if ci < len(commits):
                        e = commits[ci]
                        ci += 1
                        if e.__class__ is _WriteCommit:
                            task = e.task
                            addr = e.addr
                            memory.write(addr, e.value)
                            entry = task.store_buffer.get(addr)
                            if entry is not None:
                                entry[0] -= 1
                                if entry[0] == 0:
                                    del task.store_buffer[addr]
                            if record:
                                trace.append(AccessRecord(
                                    commit=time, kind="W", addr=addr,
                                    value=e.value, task=task.stats.name,
                                    tag=e.tag, seq=e.seq))
                        else:
                            e()
                        continue
                    if ri >= len(resumes):
                        break
                    e = resumes[ri]
                    ri += 1
                    cls = e.__class__
                    if cls is _Task:
                        step(e)
                        continue
                    if cls is _ReadDone:
                        task = e.task
                        value = memory.read(e.addr)
                        if record:
                            trace.append(AccessRecord(
                                commit=time, kind="R", addr=e.addr,
                                value=value, task=task.stats.name,
                                tag=e.tag, seq=e.seq))
                        task.pending_value = value
                        resumes.append(task)
                        continue
                    if cls is _Timeout:
                        if e.cancelled:
                            skipped += 1
                            continue
                        e.fn()
                        continue
                    e()
            finally:
                self.events_processed += ci + ri - skipped
                self._open_time = -1
                self._open_commits = self._open_resumes = []

    def _drain_tracked(self) -> None:
        """Drain with the stagnation watchdog armed.

        Structurally the old single loop: the stagnation check runs
        before every live event (and before ``self.now`` advances for a
        bucket's first one), and ``_idle_events`` counts every executed
        event until a process step resets it.
        """
        buckets = self._buckets
        times = self._times
        max_cycles = self.max_cycles
        limit = self.stagnation_limit
        while times:
            time = heapq.heappop(times)
            commits, resumes = buckets.pop(time)
            self._open_time = time
            self._open_commits = commits
            self._open_resumes = resumes
            # ``advanced`` stays False until the bucket's first live
            # event: a bucket of nothing but cancelled timeouts must not
            # move ``self.now`` (satisfied waits would stretch the
            # makespan out to their deadlines).
            advanced = False
            ci = ri = 0
            try:
                while True:
                    if ci < len(commits):
                        fn = commits[ci]
                        ci += 1
                        if fn.__class__ is _WriteCommit:
                            fn = fn.run
                    else:
                        if ri >= len(resumes):
                            break
                        fn = resumes[ri]
                        ri += 1
                        cls = fn.__class__
                        if cls is _Task:
                            if not advanced:
                                if time > max_cycles:
                                    raise SimulationLimitError(
                                        f"simulation exceeded "
                                        f"{max_cycles} cycles",
                                        report=self._diagnose())
                                self._check_stagnation(limit)
                                self.now = time
                                advanced = True
                            else:
                                self._check_stagnation(limit)
                            self._idle_events += 1
                            self.events_processed += 1
                            self._step(fn)
                            continue
                        if cls is _Timeout:
                            if fn.cancelled:
                                continue
                            fn = fn.fn
                        elif cls is _ReadDone:
                            fn = fn.run
                    if not advanced:
                        if time > max_cycles:
                            raise SimulationLimitError(
                                f"simulation exceeded {max_cycles} cycles",
                                report=self._diagnose())
                        self._check_stagnation(limit)
                        self.now = time
                        advanced = True
                    else:
                        self._check_stagnation(limit)
                    self._idle_events += 1
                    self.events_processed += 1
                    fn()
            finally:
                self._open_time = -1
                self._open_commits = self._open_resumes = []

    def _check_stagnation(self, limit: Optional[int]) -> None:
        if (limit is not None and self._live_tasks > 0
                and self._idle_events > limit):
            raise DeadlockError(
                f"stagnation: {self._idle_events} consecutive events "
                f"without any process making progress "
                f"(stagnation_limit={limit})",
                report=self._diagnose())

    def _diagnose(self):
        # Imported lazily: repro.faults must stay importable without
        # repro.sim (it duck-types the engine), and vice versa.
        from ..faults.watchdog import diagnose
        return diagnose(self)

    # ------------------------------------------------------------------
    # operation interpretation
    # ------------------------------------------------------------------

    def _step_clean(self, task: _Task) -> None:
        """Advance one task by one operation (no fault injector built)."""
        if not task.alive:
            return
        task.wait_state = None
        self._idle_events = 0
        try:
            op = task.gen.send(task.pending_value)
        except StopIteration:
            task.alive = False
            task.stats.done_at = self.now
            self._live_tasks -= 1
            if task.on_done is not None:
                task.on_done()
            return
        # (task.ops is maintained only by _step_fault: the counter feeds
        # the injector's crash schedule and nothing else.)
        task.pending_value = None
        handler = self._handlers.get(op.__class__)
        if handler is not None:
            handler(task, op)
        else:
            self._dispatch_slow(task, op)

    def _step_fault(self, task: _Task) -> None:
        """As :meth:`_step_clean`, plus the per-step fault probes."""
        if not task.alive:
            return
        if task.stall_resume:
            # Continuing after an injected stall window: probing again
            # would double-draw from the plan.
            task.stall_resume = False
        else:
            injector = self.injector
            if injector.should_crash(task.stats.name, task.ops, self.now):
                task.alive = False
                task.crashed = True
                task.wait_state = (
                    "crashed", None,
                    f"fault-injected crash after {task.ops} ops", self.now)
                self.crashed.append(task.stats.name)
                if (self.recovery is not None
                        and self.recovery.on_crash(task.stats.name)):
                    # The recovery layer adopted the task's obligations
                    # (a rescue task will replay them), so the corpse no
                    # longer blocks completion.
                    self._live_tasks -= 1
                # Otherwise _live_tasks is NOT decremented: the task's
                # work is lost, so the run must end in a diagnosed error
                # rather than complete silently short of iterations.
                return
            extra = injector.stall_cycles(task.stats.name, self.now)
            if extra:
                task.stats.stall += extra
                task.wait_state = (
                    "stalled", None,
                    f"fault-injected stall of {extra} cycles", self.now)
                task.stall_resume = True
                # pending_value is preserved: it is delivered when the
                # stalled step finally runs.
                self._push_resume(self.now + extra, task)
                return
        task.wait_state = None
        self._idle_events = 0
        try:
            op = task.gen.send(task.pending_value)
        except StopIteration:
            task.alive = False
            task.stats.done_at = self.now
            self._live_tasks -= 1
            if task.on_done is not None:
                task.on_done()
            return
        task.ops += 1
        task.pending_value = None
        handler = self._handlers.get(op.__class__)
        if handler is not None:
            handler(task, op)
        else:
            self._dispatch_slow(task, op)

    def _dispatch_slow(self, task: _Task, op: Any) -> None:
        """Handle an op subclass (cached) or reject an unknown op."""
        for cls in self._dispatch_order:
            if isinstance(op, cls):
                handler = self._handlers[cls]
                self._handlers[op.__class__] = handler
                handler(task, op)
                return
        raise TypeError(f"unknown operation {op!r} from task "
                        f"{task.stats.name!r}")

    # -- per-operation handlers ------------------------------------------

    # Handlers only ever run from ``_step`` inside a drain bucket, where
    # ``self._open_time == self.now`` and Compute/access times are
    # validated non-negative, so the hot handlers below inline
    # ``schedule``'s open-bucket/new-bucket split without the past-time
    # branch.

    def _op_compute(self, task: _Task, op: Compute) -> None:
        cycles = op.cycles
        if cycles == 0:
            self._open_resumes.append(task)
            return
        task.stats.busy += cycles
        time = self.now + cycles
        if self.record_trace:
            self.activity.append((task.stats.name, "busy", self.now,
                                  time))
        buckets = self._buckets
        bucket = buckets.get(time)
        if bucket is None:
            bucket = buckets[time] = ([], [])
            heapq.heappush(self._times, time)
        bucket[1].append(task)

    def _op_fence(self, task: _Task, op: Fence) -> None:
        done = task.last_write_commit
        now = self.now
        if done <= now:
            self._open_resumes.append(task)
            return
        task.stats.stall += done - now
        task.wait_state = ("stalled", None,
                           "fence: draining posted writes", now)
        buckets = self._buckets
        bucket = buckets.get(done)
        if bucket is None:
            bucket = buckets[done] = ([], [])
            heapq.heappush(self._times, done)
        bucket[1].append(task)

    def _op_annotate(self, task: _Task, op: Annotate) -> None:
        if op.kind == "tag":
            task.tag = op.payload.get("tag")
        elif self.collect_events:
            self.events.append((self.now, op.kind, dict(op.payload)))
        self._open_resumes.append(task)

    def _op_wait_until(self, task: _Task, op: WaitUntil) -> None:
        # _begin_wait inlined: WaitUntil is the event-path hot op.
        task.stats.sync_ops += 1
        if self.fabric.wait_mode == "poll":
            self._poll_wait(task, op, started=self.now)
            return
        if self.recovery is not None and self.recovery.degraded:
            # Degraded mode: the local register images are losing too
            # many broadcasts to be trusted, so busy-wait by polling the
            # authoritative home copy through shared memory instead
            # (charged reads; liveness bought with cycles).
            self._fallback_wait(task, op, started=self.now)
            return
        # Event-driven wait on the local register image: test now, park
        # until the variable's committed value changes.
        value = self.fabric.value(op.var)
        if op.predicate(value):
            task.stats.waits_satisfied_immediately += 1
            self._record_sync("acq", op.var, value, task)
            task.pending_value = None
            time = self.now + 1
            bucket = self._buckets.get(time)
            if bucket is None:
                bucket = self._buckets[time] = ([], [])
                heapq.heappush(self._times, time)
            bucket[1].append(task)
        else:
            self._park(task, op, self.now)

    def _record_sync(self, kind: str, var: int, value: Any,
                     task: _Task) -> None:
        """Append one sanitizer event (the tap works in any mode)."""
        if self.record_trace:
            self.sync_trace.append((next(self._sync_seq), kind, var,
                                    value, task.stats.name))
        if self.tap is not None:
            self.tap.append((kind, var, task.stats.name))

    # -- shared memory --------------------------------------------------

    def _op_mem_read(self, task: _Task, op: MemRead) -> None:
        addr = op.addr
        buffer = task.store_buffer
        if buffer:
            pending = buffer.get(addr)
            if pending is not None:
                # Store-to-load forwarding: the task sees its own posted
                # write immediately (one cycle, no memory transaction).
                value = pending[1]
                time = self.now + 1
                if self.record_trace:
                    self.trace.append(AccessRecord(
                        commit=time, kind="R", addr=addr,
                        value=value, task=task.stats.name, tag=task.tag,
                        seq=next(self._sync_seq)))
                if self.tap is not None:
                    self.tap.append(("R", addr, task.stats.name))
                task.pending_value = value
                buckets = self._buckets
                bucket = buckets.get(time)
                if bucket is None:
                    bucket = buckets[time] = ([], [])
                    heapq.heappush(self._times, time)
                bucket[1].append(task)
                return
        now = self.now
        done = self.memory.access_time(addr, now)
        if self.injector is not None:
            done += self.injector.memory_extra()
        task.stats.stall += done - now
        task.wait_state = ("stalled", None,
                           f"memory read round trip to {addr}", now)
        # tag/seq are captured at issue: commits run after tag changes
        if self.record_trace:
            seq = next(self._sync_seq)
        else:
            seq = 0
        if self.tap is not None:
            self.tap.append(("R", addr, task.stats.name))
        event = _ReadDone(self, task, addr, task.tag, seq)
        if done == now:
            self._open_resumes.append(event)
            return
        buckets = self._buckets
        bucket = buckets.get(done)
        if bucket is None:
            bucket = buckets[done] = ([], [])
            heapq.heappush(self._times, done)
        bucket[1].append(event)

    def _op_mem_write(self, task: _Task, op: MemWrite) -> None:
        addr = op.addr
        now = self.now
        done = self.memory.access_time(addr, now, kind="W")
        if self.injector is not None:
            done += self.injector.memory_extra()
        if done > task.last_write_commit:
            task.last_write_commit = done
        # tag/seq are captured at issue: commits run after tag changes
        if self.record_trace:
            seq = next(self._sync_seq)
        else:
            seq = 0
        if self.tap is not None:
            self.tap.append(("W", addr, task.stats.name))
        pending = task.store_buffer.get(addr)
        if pending is None:
            task.store_buffer[addr] = [1, op.value]
        else:
            pending[0] += 1
            pending[1] = op.value
        commit = _WriteCommit(self, task, addr, op.value, task.tag, seq)
        buckets = self._buckets
        if done == now:
            self._open_commits.append(commit)
        else:
            bucket = buckets.get(done)
            if bucket is None:
                bucket = buckets[done] = ([], [])
                heapq.heappush(self._times, done)
            bucket[0].append(commit)
        # Posted write: the processor proceeds after handing the write to
        # the memory system; Fence makes it wait for global visibility.
        time = now + 1
        bucket = buckets.get(time)
        if bucket is None:
            bucket = buckets[time] = ([], [])
            heapq.heappush(self._times, time)
        bucket[1].append(task)

    # -- synchronization fabric ------------------------------------------

    def _op_sync_read(self, task: _Task, op: SyncRead) -> None:
        task.stats.sync_ops += 1
        now = self.now
        done = self.fabric.read_cost(op.var, now,
                                     requester=task.stats.name)
        task.stats.stall += done - now
        task.wait_state = ("stalled", op.var,
                           f"sync read of var {op.var}", now)
        event = _SyncReadDone(self, task, op.var)
        if done == now:
            self._open_resumes.append(event)
            return
        bucket = self._buckets.get(done)
        if bucket is None:
            bucket = self._buckets[done] = ([], [])
            heapq.heappush(self._times, done)
        bucket[1].append(event)

    def _op_sync_write(self, task: _Task, op: SyncWrite) -> None:
        task.stats.sync_ops += 1
        self.var_writers[op.var] = task.stats.name
        self._record_sync("rel", op.var, op.value, task)
        if self.recovery is not None and op.checkpoint is not None:
            # Atomic with the issue; with retransmission active an
            # issued broadcast always commits eventually, so the journal
            # never runs ahead of the signal.
            self.recovery.record_checkpoint(op.checkpoint)
        now = self.now
        done = self.fabric.write(op.var, op.value, now, op.coverable,
                                 requester=task.stats.name)
        if done == now:
            self._open_resumes.append(task)
            return
        task.stats.stall += done - now
        buckets = self._buckets
        bucket = buckets.get(done)
        if bucket is None:
            bucket = buckets[done] = ([], [])
            heapq.heappush(self._times, done)
        bucket[1].append(task)

    def _op_sync_update(self, task: _Task, op: SyncUpdate) -> None:
        task.stats.sync_ops += 1
        self.var_writers[op.var] = task.stats.name
        recovery = self.recovery
        if recovery is not None and op.checkpoint is not None:
            # Journalled at issue, atomically with the update: once
            # this dispatch runs, the update will eventually commit
            # (drops are retried below), so journal == signalled.
            recovery.record_checkpoint(op.checkpoint)
        fn = op.fn
        fate = "ok"
        if self.injector is not None:
            fate = self.injector.update_fate(op.var)
        if fate == "drop":
            if recovery is None:
                # The commit is lost: the variable keeps its old
                # value and the issuer reads that old value back.
                def fn(value):
                    return value
            else:
                self._retry_update(task, op)
                return
        elif fate == "dup":
            if recovery is None:
                original = op.fn

                def fn(value):
                    return original(original(value))
            else:
                # The memory-side sync processor deduplicates the
                # replayed commit: apply exactly once.
                recovery.counters["deduplicated_updates"] += 1
        now = self.now
        task.wait_state = ("stalled", op.var,
                           f"sync update round trip on var {op.var}",
                           now)
        done, cell = self.fabric.update(op.var, fn, now)
        task.stats.stall += done - now
        # Commits precede same-cycle resumes, so the cell is filled
        # when the process wakes with the post-update value.
        event = _UpdateDone(self, task, op.var, cell)
        if done == now:
            self._open_resumes.append(event)
            return
        bucket = self._buckets.get(done)
        if bucket is None:
            bucket = self._buckets[done] = ([], [])
            heapq.heappush(self._times, done)
        bucket[1].append(event)

    def _retry_update(self, task: _Task, op: SyncUpdate) -> None:
        """A dropped RMW commit, with recovery: occupy the bus with the
        lost transaction, then retransmit the real update after the
        recovery delay and hand its value to the issuer."""
        recovery = self.recovery
        started = self.now
        task.wait_state = ("stalled", op.var,
                           f"retrying dropped sync update on var {op.var}",
                           started)
        # The lost commit still costs a transaction round trip.
        lost_done, _lost_cell = self.fabric.update(
            op.var, lambda value: value, self.now)
        retry_at = recovery.rmw_retry_at(lost_done)

        def retry() -> None:
            recovery.counters["rmw_retries"] += 1
            recovery.counters["recovery_overhead_cycles"] += \
                self.now - started
            done, cell = self.fabric.update(op.var, op.fn, self.now)
            task.stats.stall += done - started
            self.schedule(done, lambda: self._resume_at(
                task, self.now, cell.get("value")))

        self.schedule(retry_at, retry)

    def _park(self, task: _Task, op: WaitUntil, parked_at: int) -> None:
        waiters = self._waiters.get(op.var)
        if waiters is None:
            waiters = self._waiters[op.var] = []
        waiters.append((task, op, parked_at))
        self._parked += 1
        reason = op.reason or f"wait on var {op.var}"
        task.wait_state = ("parked", op.var, reason, parked_at)
        if op.max_spin is not None and parked_at == self.now:
            # Bounded wait: armed once at first park (re-parks after a
            # failed re-check keep the original parked_at and deadline).
            deadline_state = ("parked", op.var, reason, parked_at)

            def expire() -> None:
                if task.alive and task.wait_state == deadline_state:
                    raise DeadlockError(
                        f"bounded wait expired: task {task.stats.name!r} "
                        f"spent over {op.max_spin} cycles in "
                        f"{reason!r}", report=self._diagnose())

            timeout = _Timeout(expire)
            task.wait_timeout = timeout
            self._push_resume(parked_at + op.max_spin, timeout)

    def _poll_wait(self, task: _Task, op: WaitUntil, started: int) -> None:
        # The first poll is a mandatory read: account it as a memory
        # stall.  Only re-polls count as busy-waiting (see _Poll).
        done = self.fabric.read_cost(op.var, self.now,
                                     requester=task.stats.name)
        task.stats.stall += done - self.now
        poll = _Poll(self, task, op, started)
        task.wait_state = ("polling", op.var, poll.reason, started)
        if done == self._open_time:
            self._open_resumes.append(poll)
            return
        bucket = self._buckets.get(done)
        if bucket is None:
            bucket = self._buckets[done] = ([], [])
            heapq.heappush(self._times, done)
        bucket[1].append(poll)

    def _fallback_wait(self, task: _Task, op: WaitUntil, started: int,
                       first: bool = True) -> None:
        """Degraded-mode busy-wait: charged polls of the home copy.

        Mirrors :meth:`_poll_wait` but reads the fabric's
        *authoritative* value (the home copy that lost broadcasts still
        reach) at the recovery policy's shared-memory cost, so a waiter
        makes progress even when its local register image is stale.
        Returns to the event-driven path once degraded mode ends.
        """
        if not task.alive:
            return
        recovery = self.recovery
        policy = recovery.policy
        done = self.now + policy.fallback_read_cost
        recovery.charge_fallback_poll(policy.fallback_read_cost)
        if first:
            task.stats.stall += done - self.now
        task.wait_state = ("polling", op.var,
                           (op.reason or f"poll on var {op.var}")
                           + " [degraded mode]", started)

        def check() -> None:
            if op.predicate(self.fabric.authoritative_value(op.var)):
                task.wait_state = None
                if first:
                    task.stats.waits_satisfied_immediately += 1
                else:
                    task.stats.spin += self.now - started
                    if self.record_trace and self.now > started:
                        self.activity.append((task.stats.name, "spin",
                                              started, self.now))
                self._record_sync(
                    "acq", op.var,
                    self.fabric.authoritative_value(op.var), task)
                self._resume_at(task, self.now)
                return
            if (op.max_spin is not None
                    and self.now - started > op.max_spin):
                raise DeadlockError(
                    f"bounded wait expired: task {task.stats.name!r} "
                    f"polled over {op.max_spin} cycles (degraded mode) "
                    f"in {op.reason or f'poll on var {op.var}'!r}",
                    report=self._diagnose())
            spin_from = done if first else started
            if not recovery.degraded:
                # Loss rate recovered: re-arm as a normal event wait.
                if op.predicate(self.fabric.value(op.var)):
                    self._record_sync("acq", op.var,
                                      self.fabric.value(op.var), task)
                    self._resume_at(task, self.now + 1)
                else:
                    self._park(task, op, spin_from)
                return
            next_poll = self.now + policy.fallback_poll_interval
            self.schedule(next_poll,
                          lambda: self._fallback_wait(task, op, spin_from,
                                                      first=False))

        self._push_resume(done, check)
