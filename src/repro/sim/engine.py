"""Event-driven simulation engine.

Simulated processes are Python generators yielding the operation records
of :mod:`repro.sim.ops`.  The engine owns simulated time, interprets each
operation against the shared memory and the synchronization fabric, and
keeps per-task accounting (busy / spin / stall cycles).

Determinism: the event queue orders by ``(time, priority, sequence)``.
Commits (memory and fabric value installations) run at priority 0,
process resumptions at priority 1, so a value committed at time *t* is
visible to every process step executing at *t*.  Sequence numbers break
remaining ties FIFO, making every simulation fully reproducible.

Robustness hooks (all inert by default):

* An optional :class:`~repro.faults.injector.FaultInjector` perturbs the
  run -- per-step stall windows and crashes, memory-latency jitter,
  dropped or duplicated ``SyncUpdate`` commits.  Draws happen in event
  order, so a seeded plan replays byte-for-byte.
* Every blocking path records the task's ``wait_state`` so that when the
  simulation gets stuck the engine can hand the whole task table to the
  hazard watchdog (:mod:`repro.faults.watchdog`) and raise a *diagnosed*
  :class:`DeadlockError` / :class:`SimulationLimitError` carrying the
  wait-for graph and its blocking cycle.
* ``stagnation_limit`` bounds the number of consecutive events processed
  without any process stepping forward, catching poll-mode livelocks
  (which keep the event queue busy forever) long before the cycle
  budget; ``WaitUntil.max_spin`` bounds individual waits the same way
  for event-mode parks.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from .memory import SharedMemory
from .ops import (Annotate, Compute, Fence, MemRead, MemWrite, SyncRead,
                  SyncUpdate, SyncWrite, WaitUntil)
from .sync_bus import SyncFabric

#: Event priorities: commits become visible before any same-cycle resume.
_PRIORITY_COMMIT = 0
_PRIORITY_RESUME = 1


class HazardError(RuntimeError):
    """Base for simulation failures carrying a structured diagnosis.

    ``report`` is a :class:`repro.faults.watchdog.HazardReport` (or
    ``None`` for errors raised outside a running engine): per-task
    blocking state, the wait-for graph, and -- when one exists -- the
    blocking cycle.  The report's rendering is appended to the message,
    so ``str(err)`` stays fully informative.
    """

    def __init__(self, message: str, report=None) -> None:
        if report is not None:
            message = f"{message}\n{report.format()}"
        super().__init__(message)
        self.report = report

    @property
    def tasks(self):
        """Per-task diagnoses (empty when no report was attached)."""
        return self.report.tasks if self.report is not None else []

    @property
    def cycle(self):
        """The blocking wait-for cycle as task names, when one exists."""
        return self.report.cycle if self.report is not None else None


class DeadlockError(HazardError):
    """Raised when live tasks remain but no progress can ever happen."""


class SimulationLimitError(HazardError):
    """Raised when the simulation exceeds its cycle budget."""


@dataclass
class TaskStats:
    """Cycle accounting for one task (usually one processor)."""

    name: str = ""
    busy: int = 0          # Compute cycles
    spin: int = 0          # busy-wait cycles inside WaitUntil
    stall: int = 0         # waiting on memory / fabric round trips
    sync_ops: int = 0      # SyncRead/SyncWrite/WaitUntil operations issued
    waits_satisfied_immediately: int = 0
    done_at: int = 0

    @property
    def accounted(self) -> int:
        """Cycles attributed to some activity (rest is idle)."""
        return self.busy + self.spin + self.stall


@dataclass
class AccessRecord:
    """One shared-memory access, as seen by the validator.

    ``commit`` is when the access became globally visible (write) or when
    the value was sampled (read); the engine guarantees commit order is
    value order.
    """

    commit: int
    kind: str            # "R" or "W"
    addr: Tuple[str, int]
    value: Any
    task: str
    tag: Any             # whatever the process last set via Annotate("tag")
    #: global issue-order sequence number, shared with the sync trace so
    #: data and synchronization events merge into one program-order- and
    #: causality-consistent stream (the vector-clock sanitizer's input)
    seq: int = 0


class _Task:
    """Internal per-generator bookkeeping."""

    __slots__ = ("gen", "stats", "tag", "pending_value", "alive",
                 "last_write_commit", "on_done", "store_buffer",
                 "crashed", "ops", "wait_state", "wait_timeout")

    def __init__(self, gen: Generator, stats: TaskStats,
                 on_done: Optional[Callable[[], None]] = None) -> None:
        self.gen = gen
        self.stats = stats
        self.tag: Any = None
        self.pending_value: Any = None
        self.alive = True
        self.last_write_commit = 0
        self.on_done = on_done
        #: outstanding (uncommitted) writes: addr -> [count, last value];
        #: reads by this task forward from here (store-to-load forwarding)
        self.store_buffer: Dict[Tuple[str, int], list] = {}
        #: killed by fault injection (still counts as never-completed)
        self.crashed = False
        #: operations interpreted so far (crash-targeting, diagnosis)
        self.ops = 0
        #: current blocking state, or None while runnable:
        #: (state, var, reason, since) with state in
        #: "parked" | "polling" | "stalled" | "crashed"
        self.wait_state: Optional[Tuple[str, Optional[int], str, int]] = None
        #: armed bounded-wait timeout event, cancelled when the wait is
        #: satisfied (cancelled events are skipped without advancing time)
        self.wait_timeout: Optional[Callable[[], None]] = None


class Engine:
    """Interprets process generators against the hardware substrate."""

    def __init__(self, memory: SharedMemory, fabric: SyncFabric,
                 max_cycles: int = 50_000_000, record_trace: bool = True,
                 injector=None,
                 stagnation_limit: Optional[int] = None) -> None:
        self.memory = memory
        self.fabric = fabric
        fabric.attach(self)
        self.now = 0
        self.max_cycles = max_cycles
        self.record_trace = record_trace
        #: optional FaultInjector perturbing this run (None = clean)
        self.injector = injector
        #: optional RecoveryManager converting recoverable hazards into
        #: completed runs (None = detect-and-die, PR 1 behaviour)
        self.recovery = None
        #: max consecutive events without a process step before the run
        #: is declared stagnant (None disables the watchdog)
        self.stagnation_limit = stagnation_limit
        self.trace: List[AccessRecord] = []
        #: synchronization events for the dynamic race sanitizer:
        #: (seq, kind, var, value, task) with kind "rel" (SyncWrite
        #: issue), "acq" (wait satisfaction / sync read completion) or
        #: "upd" (atomic read-modify-write completion).  Seq numbers are
        #: shared with AccessRecord.seq: merging both streams by seq
        #: yields an order consistent with per-task program order and
        #: with every release-before-matching-acquire.
        self.sync_trace: List[Tuple[int, str, int, Any, str]] = []
        self._sync_seq = itertools.count()
        #: (time, kind, payload) markers from Annotate ops (phase events)
        self.events: List[Tuple[int, str, dict]] = []
        #: (task, kind, start, end) activity segments for timelines;
        #: kind is "busy" or "spin"; only recorded when record_trace is on
        self.activity: List[Tuple[str, str, int, int]] = []
        self._queue: List[Tuple[int, int, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._live_tasks = 0
        #: every task ever spawned (hazard diagnosis walks this)
        self._tasks: List[_Task] = []
        #: tasks parked in WaitUntil, keyed by fabric variable
        self._waiters: Dict[int, List[Tuple[_Task, WaitUntil, int]]] = {}
        self._parked = 0
        #: last task to write/update each sync variable (wait-for edges)
        self.var_writers: Dict[int, str] = {}
        #: task names killed by fault injection
        self.crashed: List[str] = []
        self._idle_events = 0

    # ------------------------------------------------------------------
    # scheduling primitives (also used by the fabric)
    # ------------------------------------------------------------------

    def schedule_commit(self, time: int, fn: Callable[[], None]) -> None:
        """Run ``fn`` at ``time``, before any process step at that time."""
        self._push(time, _PRIORITY_COMMIT, fn)

    def schedule(self, time: int, fn: Callable[[], None]) -> None:
        """Run ``fn`` at ``time`` in process-step order."""
        self._push(time, _PRIORITY_RESUME, fn)

    def _push(self, time: int, priority: int, fn: Callable[[], None]) -> None:
        if time < self.now:
            raise ValueError(f"event scheduled in the past: {time} < {self.now}")
        heapq.heappush(self._queue, (time, priority, next(self._seq), fn))

    def notify_var(self, var: int) -> None:
        """A fabric variable changed: wake its parked waiters to re-check."""
        waiters = self._waiters.pop(var, None)
        if not waiters:
            return
        for task, op, parked_at in waiters:
            self._recheck_wait(task, op, parked_at)

    # ------------------------------------------------------------------
    # task lifecycle
    # ------------------------------------------------------------------

    def spawn(self, gen: Generator, name: str = "",
              on_done: Optional[Callable[[], None]] = None) -> TaskStats:
        """Add a process; it starts at the current simulated time."""
        stats = TaskStats(name=name)
        task = _Task(gen, stats, on_done)
        self._live_tasks += 1
        self._tasks.append(task)
        self.schedule(self.now, lambda: self._step(task))
        return stats

    def run(self) -> int:
        """Drain the event queue; return the final simulated time.

        Raises a diagnosed :class:`SimulationLimitError` when the cycle
        budget is exceeded and a diagnosed :class:`DeadlockError` when
        live tasks remain with an empty queue (classic deadlock) or when
        ``stagnation_limit`` consecutive events fire without any process
        stepping (poll-mode livelock).
        """
        while self._queue:
            time, _priority, _seq, fn = heapq.heappop(self._queue)
            if getattr(fn, "cancelled", False):
                # A disarmed bounded-wait timeout: dropping it without
                # touching ``self.now`` keeps satisfied waits from
                # stretching the makespan out to their deadlines.
                continue
            if time > self.max_cycles:
                raise SimulationLimitError(
                    f"simulation exceeded {self.max_cycles} cycles",
                    report=self._diagnose())
            if (self.stagnation_limit is not None and self._live_tasks > 0
                    and self._idle_events > self.stagnation_limit):
                raise DeadlockError(
                    f"stagnation: {self._idle_events} consecutive events "
                    f"without any process making progress "
                    f"(stagnation_limit={self.stagnation_limit})",
                    report=self._diagnose())
            self.now = time
            self._idle_events += 1
            fn()
        if self._live_tasks > 0:
            raise DeadlockError(
                f"{self._live_tasks} task(s) never completed and no "
                f"event can ever fire",
                report=self._diagnose())
        if self.recovery is not None and self.recovery.outstanding() > 0:
            # Crashed tasks were adopted but their replay jobs were
            # abandoned (reincarnation budget exhausted): the run must
            # not pass for complete.
            raise DeadlockError(
                f"{self.recovery.outstanding()} adopted iteration(s) "
                f"abandoned by the recovery layer",
                report=self._diagnose())
        return self.now

    def _diagnose(self):
        # Imported lazily: repro.faults must stay importable without
        # repro.sim (it duck-types the engine), and vice versa.
        from ..faults.watchdog import diagnose
        return diagnose(self)

    # ------------------------------------------------------------------
    # operation interpretation
    # ------------------------------------------------------------------

    def _step(self, task: _Task, fresh: bool = True) -> None:
        if not task.alive:
            return
        injector = self.injector
        if injector is not None and fresh:
            if injector.should_crash(task.stats.name, task.ops, self.now):
                task.alive = False
                task.crashed = True
                task.wait_state = (
                    "crashed", None,
                    f"fault-injected crash after {task.ops} ops", self.now)
                self.crashed.append(task.stats.name)
                if (self.recovery is not None
                        and self.recovery.on_crash(task.stats.name)):
                    # The recovery layer adopted the task's obligations
                    # (a rescue task will replay them), so the corpse no
                    # longer blocks completion.
                    self._live_tasks -= 1
                # Otherwise _live_tasks is NOT decremented: the task's
                # work is lost, so the run must end in a diagnosed error
                # rather than complete silently short of iterations.
                return
            extra = injector.stall_cycles(task.stats.name, self.now)
            if extra:
                task.stats.stall += extra
                task.wait_state = (
                    "stalled", None,
                    f"fault-injected stall of {extra} cycles", self.now)
                self.schedule(self.now + extra,
                              lambda: self._step(task, fresh=False))
                return
        task.wait_state = None
        self._idle_events = 0
        try:
            op = task.gen.send(task.pending_value)
        except StopIteration:
            task.alive = False
            task.stats.done_at = self.now
            self._live_tasks -= 1
            if task.on_done is not None:
                task.on_done()
            return
        task.ops += 1
        task.pending_value = None
        self._dispatch(task, op)

    def _resume_at(self, task: _Task, time: int, value: Any = None) -> None:
        task.pending_value = value
        self.schedule(time, lambda: self._step(task))

    def _dispatch(self, task: _Task, op: Any) -> None:
        if isinstance(op, Compute):
            task.stats.busy += op.cycles
            if self.record_trace and op.cycles:
                self.activity.append((task.stats.name, "busy", self.now,
                                      self.now + op.cycles))
            self._resume_at(task, self.now + op.cycles)
        elif isinstance(op, MemRead):
            self._mem_read(task, op)
        elif isinstance(op, MemWrite):
            self._mem_write(task, op)
        elif isinstance(op, SyncRead):
            self._sync_read(task, op)
        elif isinstance(op, SyncWrite):
            self._sync_write(task, op)
        elif isinstance(op, SyncUpdate):
            task.stats.sync_ops += 1
            self.var_writers[op.var] = task.stats.name
            recovery = self.recovery
            if recovery is not None and op.checkpoint is not None:
                # Journalled at issue, atomically with the update: once
                # this dispatch runs, the update will eventually commit
                # (drops are retried below), so journal == signalled.
                recovery.record_checkpoint(op.checkpoint)
            fn = op.fn
            fate = "ok"
            if self.injector is not None:
                fate = self.injector.update_fate(op.var)
            if fate == "drop":
                if recovery is None:
                    # The commit is lost: the variable keeps its old
                    # value and the issuer reads that old value back.
                    def fn(value):
                        return value
                else:
                    self._retry_update(task, op)
                    return
            elif fate == "dup":
                if recovery is None:
                    original = op.fn

                    def fn(value):
                        return original(original(value))
                else:
                    # The memory-side sync processor deduplicates the
                    # replayed commit: apply exactly once.
                    recovery.counters["deduplicated_updates"] += 1
            task.wait_state = ("stalled", op.var,
                               f"sync update round trip on var {op.var}",
                               self.now)
            done, cell = self.fabric.update(op.var, fn, self.now)
            task.stats.stall += done - self.now
            # Commits precede same-cycle resumes, so the cell is filled
            # when the process wakes with the post-update value.

            def finish_update() -> None:
                # An atomic RMW is both an acquire (it observed the old
                # value) and a release (it published the new one).
                self._record_sync("upd", op.var, cell.get("value"), task)
                self._resume_at(task, self.now, cell.get("value"))

            self.schedule(done, finish_update)
        elif isinstance(op, WaitUntil):
            task.stats.sync_ops += 1
            self._begin_wait(task, op)
        elif isinstance(op, Fence):
            done = max(self.now, task.last_write_commit)
            task.stats.stall += done - self.now
            if done > self.now:
                task.wait_state = ("stalled", None,
                                   "fence: draining posted writes",
                                   self.now)
            self._resume_at(task, done)
        elif isinstance(op, Annotate):
            if op.kind == "tag":
                task.tag = op.payload.get("tag")
            else:
                self.events.append((self.now, op.kind, dict(op.payload)))
            self._resume_at(task, self.now)
        else:
            raise TypeError(f"unknown operation {op!r} from task "
                            f"{task.stats.name!r}")

    def _record_sync(self, kind: str, var: int, value: Any,
                     task: _Task) -> None:
        """Append one sanitizer event (gated on trace recording)."""
        if self.record_trace:
            self.sync_trace.append((next(self._sync_seq), kind, var,
                                    value, task.stats.name))

    # -- shared memory --------------------------------------------------

    def _mem_read(self, task: _Task, op: MemRead) -> None:
        pending = task.store_buffer.get(op.addr)
        if pending is not None:
            # Store-to-load forwarding: the task sees its own posted
            # write immediately (one cycle, no memory transaction).
            value = pending[1]
            if self.record_trace:
                self.trace.append(AccessRecord(
                    commit=self.now + 1, kind="R", addr=op.addr,
                    value=value, task=task.stats.name, tag=task.tag,
                    seq=next(self._sync_seq)))
            self._resume_at(task, self.now + 1, value)
            return
        done = self.memory.access_time(op.addr, self.now)
        if self.injector is not None:
            done += self.injector.memory_extra()
        task.stats.stall += done - self.now
        task.wait_state = ("stalled", None,
                           f"memory read round trip to {op.addr}", self.now)
        tag = task.tag  # capture at issue: commits run after tag changes
        seq = next(self._sync_seq) if self.record_trace else 0

        def complete() -> None:
            value = self.memory.read(op.addr)
            if self.record_trace:
                self.trace.append(AccessRecord(
                    commit=self.now, kind="R", addr=op.addr, value=value,
                    task=task.stats.name, tag=tag, seq=seq))
            self._resume_at(task, self.now, value)

        self.schedule(done, complete)

    def _mem_write(self, task: _Task, op: MemWrite) -> None:
        done = self.memory.access_time(op.addr, self.now, kind="W")
        if self.injector is not None:
            done += self.injector.memory_extra()
        task.last_write_commit = max(task.last_write_commit, done)
        tag = task.tag  # capture at issue: commits run after tag changes
        seq = next(self._sync_seq) if self.record_trace else 0
        pending = task.store_buffer.setdefault(op.addr, [0, None])
        pending[0] += 1
        pending[1] = op.value

        def commit() -> None:
            self.memory.write(op.addr, op.value)
            entry = task.store_buffer.get(op.addr)
            if entry is not None:
                entry[0] -= 1
                if entry[0] == 0:
                    del task.store_buffer[op.addr]
            if self.record_trace:
                self.trace.append(AccessRecord(
                    commit=self.now, kind="W", addr=op.addr, value=op.value,
                    task=task.stats.name, tag=tag, seq=seq))

        self.schedule_commit(done, commit)
        # Posted write: the processor proceeds after handing the write to
        # the memory system; Fence makes it wait for global visibility.
        self._resume_at(task, self.now + 1)

    # -- synchronization fabric ------------------------------------------

    def _sync_read(self, task: _Task, op: SyncRead) -> None:
        task.stats.sync_ops += 1
        done = self.fabric.read_cost(op.var, self.now,
                                     requester=task.stats.name)
        task.stats.stall += done - self.now
        task.wait_state = ("stalled", op.var,
                           f"sync read of var {op.var}", self.now)

        def finish_read() -> None:
            value = self.fabric.value(op.var)
            # Reading a sync variable is an acquire: the improved PC
            # scheme's ownership check (mark_PC) orders the marker after
            # the release it observed.
            self._record_sync("acq", op.var, value, task)
            self._resume_at(task, self.now, value)

        self.schedule(done, finish_read)

    def _sync_write(self, task: _Task, op: SyncWrite) -> None:
        task.stats.sync_ops += 1
        self.var_writers[op.var] = task.stats.name
        self._record_sync("rel", op.var, op.value, task)
        if self.recovery is not None and op.checkpoint is not None:
            # Atomic with the issue; with retransmission active an
            # issued broadcast always commits eventually, so the journal
            # never runs ahead of the signal.
            self.recovery.record_checkpoint(op.checkpoint)
        done = self.fabric.write(op.var, op.value, self.now, op.coverable,
                                 requester=task.stats.name)
        task.stats.stall += done - self.now
        self._resume_at(task, done)

    def _retry_update(self, task: _Task, op: SyncUpdate) -> None:
        """A dropped RMW commit, with recovery: occupy the bus with the
        lost transaction, then retransmit the real update after the
        recovery delay and hand its value to the issuer."""
        recovery = self.recovery
        started = self.now
        task.wait_state = ("stalled", op.var,
                           f"retrying dropped sync update on var {op.var}",
                           started)
        # The lost commit still costs a transaction round trip.
        lost_done, _lost_cell = self.fabric.update(
            op.var, lambda value: value, self.now)
        retry_at = recovery.rmw_retry_at(lost_done)

        def retry() -> None:
            recovery.counters["rmw_retries"] += 1
            recovery.counters["recovery_overhead_cycles"] += \
                self.now - started
            done, cell = self.fabric.update(op.var, op.fn, self.now)
            task.stats.stall += done - started
            self.schedule(done, lambda: self._resume_at(
                task, self.now, cell.get("value")))

        self.schedule(retry_at, retry)

    def _begin_wait(self, task: _Task, op: WaitUntil) -> None:
        if self.fabric.wait_mode == "poll":
            self._poll_wait(task, op, started=self.now)
            return
        if self.recovery is not None and self.recovery.degraded:
            # Degraded mode: the local register images are losing too
            # many broadcasts to be trusted, so busy-wait by polling the
            # authoritative home copy through shared memory instead
            # (charged reads; liveness bought with cycles).
            self._fallback_wait(task, op, started=self.now)
            return
        # Event-driven wait on the local register image: test now, park
        # until the variable's committed value changes.
        if op.predicate(self.fabric.value(op.var)):
            task.stats.waits_satisfied_immediately += 1
            self._record_sync("acq", op.var, self.fabric.value(op.var),
                              task)
            self._resume_at(task, self.now + 1)
        else:
            self._park(task, op, self.now)

    def _park(self, task: _Task, op: WaitUntil, parked_at: int) -> None:
        self._waiters.setdefault(op.var, []).append((task, op, parked_at))
        self._parked += 1
        reason = op.reason or f"wait on var {op.var}"
        task.wait_state = ("parked", op.var, reason, parked_at)
        if op.max_spin is not None and parked_at == self.now:
            # Bounded wait: armed once at first park (re-parks after a
            # failed re-check keep the original parked_at and deadline).
            deadline_state = ("parked", op.var, reason, parked_at)

            def expire() -> None:
                if task.alive and task.wait_state == deadline_state:
                    raise DeadlockError(
                        f"bounded wait expired: task {task.stats.name!r} "
                        f"spent over {op.max_spin} cycles in "
                        f"{reason!r}", report=self._diagnose())

            task.wait_timeout = expire
            self.schedule(parked_at + op.max_spin, expire)

    def _recheck_wait(self, task: _Task, op: WaitUntil, parked_at: int) -> None:
        self._parked -= 1
        if op.predicate(self.fabric.value(op.var)):
            task.wait_state = None
            if task.wait_timeout is not None:
                task.wait_timeout.cancelled = True  # type: ignore[attr-defined]
                task.wait_timeout = None
            task.stats.spin += self.now - parked_at
            if self.record_trace and self.now > parked_at:
                self.activity.append((task.stats.name, "spin", parked_at,
                                      self.now))
            self._record_sync("acq", op.var, self.fabric.value(op.var),
                              task)
            self._resume_at(task, self.now + 1)
        else:
            self._park(task, op, parked_at)

    def _poll_wait(self, task: _Task, op: WaitUntil, started: int,
                   first: bool = True) -> None:
        if not task.alive:
            return
        done = self.fabric.read_cost(op.var, self.now,
                                     requester=task.stats.name)
        if first:
            # The first poll is a mandatory read: account it as a memory
            # stall.  Only re-polls count as busy-waiting.
            task.stats.stall += done - self.now
        task.wait_state = ("polling", op.var,
                           op.reason or f"poll on var {op.var}", started)

        def check() -> None:
            if op.predicate(self.fabric.value(op.var)):
                task.wait_state = None
                if first:
                    task.stats.waits_satisfied_immediately += 1
                else:
                    task.stats.spin += self.now - started
                    if self.record_trace and self.now > started:
                        self.activity.append((task.stats.name, "spin",
                                              started, self.now))
                self._record_sync("acq", op.var,
                                  self.fabric.value(op.var), task)
                self._resume_at(task, self.now)
            else:
                if (op.max_spin is not None
                        and self.now - started > op.max_spin):
                    raise DeadlockError(
                        f"bounded wait expired: task {task.stats.name!r} "
                        f"polled over {op.max_spin} cycles in "
                        f"{op.reason or f'poll on var {op.var}'!r}",
                        report=self._diagnose())
                next_poll = self.now + self.fabric.poll_interval
                spin_from = done if first else started
                self.schedule(next_poll,
                              lambda: self._poll_wait(task, op, spin_from,
                                                      first=False))

        self.schedule(done, check)

    def _fallback_wait(self, task: _Task, op: WaitUntil, started: int,
                       first: bool = True) -> None:
        """Degraded-mode busy-wait: charged polls of the home copy.

        Mirrors :meth:`_poll_wait` but reads the fabric's
        *authoritative* value (the home copy that lost broadcasts still
        reach) at the recovery policy's shared-memory cost, so a waiter
        makes progress even when its local register image is stale.
        Returns to the event-driven path once degraded mode ends.
        """
        if not task.alive:
            return
        recovery = self.recovery
        policy = recovery.policy
        done = self.now + policy.fallback_read_cost
        recovery.charge_fallback_poll(policy.fallback_read_cost)
        if first:
            task.stats.stall += done - self.now
        task.wait_state = ("polling", op.var,
                           (op.reason or f"poll on var {op.var}")
                           + " [degraded mode]", started)

        def check() -> None:
            if op.predicate(self.fabric.authoritative_value(op.var)):
                task.wait_state = None
                if first:
                    task.stats.waits_satisfied_immediately += 1
                else:
                    task.stats.spin += self.now - started
                    if self.record_trace and self.now > started:
                        self.activity.append((task.stats.name, "spin",
                                              started, self.now))
                self._record_sync(
                    "acq", op.var,
                    self.fabric.authoritative_value(op.var), task)
                self._resume_at(task, self.now)
                return
            if (op.max_spin is not None
                    and self.now - started > op.max_spin):
                raise DeadlockError(
                    f"bounded wait expired: task {task.stats.name!r} "
                    f"polled over {op.max_spin} cycles (degraded mode) "
                    f"in {op.reason or f'poll on var {op.var}'!r}",
                    report=self._diagnose())
            spin_from = done if first else started
            if not recovery.degraded:
                # Loss rate recovered: re-arm as a normal event wait.
                if op.predicate(self.fabric.value(op.var)):
                    self._record_sync("acq", op.var,
                                      self.fabric.value(op.var), task)
                    self._resume_at(task, self.now + 1)
                else:
                    self._park(task, op, spin_from)
                return
            next_poll = self.now + policy.fallback_poll_interval
            self.schedule(next_poll,
                          lambda: self._fallback_wait(task, op, spin_from,
                                                      first=False))

        self.schedule(done, check)
