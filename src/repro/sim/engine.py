"""Event-driven simulation engine.

Simulated processes are Python generators yielding the operation records
of :mod:`repro.sim.ops`.  The engine owns simulated time, interprets each
operation against the shared memory and the synchronization fabric, and
keeps per-task accounting (busy / spin / stall cycles).

Determinism: the event queue orders by ``(time, priority, sequence)``.
Commits (memory and fabric value installations) run at priority 0,
process resumptions at priority 1, so a value committed at time *t* is
visible to every process step executing at *t*.  Sequence numbers break
remaining ties FIFO, making every simulation fully reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from .memory import SharedMemory
from .ops import (Annotate, Compute, Fence, MemRead, MemWrite, SyncRead,
                  SyncUpdate, SyncWrite, WaitUntil)
from .sync_bus import SyncFabric

#: Event priorities: commits become visible before any same-cycle resume.
_PRIORITY_COMMIT = 0
_PRIORITY_RESUME = 1


class DeadlockError(RuntimeError):
    """Raised when live tasks remain but no event can ever fire."""


class SimulationLimitError(RuntimeError):
    """Raised when the simulation exceeds its cycle budget."""


@dataclass
class TaskStats:
    """Cycle accounting for one task (usually one processor)."""

    name: str = ""
    busy: int = 0          # Compute cycles
    spin: int = 0          # busy-wait cycles inside WaitUntil
    stall: int = 0         # waiting on memory / fabric round trips
    sync_ops: int = 0      # SyncRead/SyncWrite/WaitUntil operations issued
    waits_satisfied_immediately: int = 0
    done_at: int = 0

    @property
    def accounted(self) -> int:
        """Cycles attributed to some activity (rest is idle)."""
        return self.busy + self.spin + self.stall


@dataclass
class AccessRecord:
    """One shared-memory access, as seen by the validator.

    ``commit`` is when the access became globally visible (write) or when
    the value was sampled (read); the engine guarantees commit order is
    value order.
    """

    commit: int
    kind: str            # "R" or "W"
    addr: Tuple[str, int]
    value: Any
    task: str
    tag: Any             # whatever the process last set via Annotate("tag")


class _Task:
    """Internal per-generator bookkeeping."""

    __slots__ = ("gen", "stats", "tag", "pending_value", "alive",
                 "last_write_commit", "on_done", "store_buffer")

    def __init__(self, gen: Generator, stats: TaskStats,
                 on_done: Optional[Callable[[], None]] = None) -> None:
        self.gen = gen
        self.stats = stats
        self.tag: Any = None
        self.pending_value: Any = None
        self.alive = True
        self.last_write_commit = 0
        self.on_done = on_done
        #: outstanding (uncommitted) writes: addr -> [count, last value];
        #: reads by this task forward from here (store-to-load forwarding)
        self.store_buffer: Dict[Tuple[str, int], list] = {}


class Engine:
    """Interprets process generators against the hardware substrate."""

    def __init__(self, memory: SharedMemory, fabric: SyncFabric,
                 max_cycles: int = 50_000_000, record_trace: bool = True) -> None:
        self.memory = memory
        self.fabric = fabric
        fabric.attach(self)
        self.now = 0
        self.max_cycles = max_cycles
        self.record_trace = record_trace
        self.trace: List[AccessRecord] = []
        #: (time, kind, payload) markers from Annotate ops (phase events)
        self.events: List[Tuple[int, str, dict]] = []
        #: (task, kind, start, end) activity segments for timelines;
        #: kind is "busy" or "spin"; only recorded when record_trace is on
        self.activity: List[Tuple[str, str, int, int]] = []
        self._queue: List[Tuple[int, int, int, Callable[[], None]]] = []
        self._seq = itertools.count()
        self._live_tasks = 0
        #: tasks parked in WaitUntil, keyed by fabric variable
        self._waiters: Dict[int, List[Tuple[_Task, WaitUntil, int]]] = {}
        self._parked = 0

    # ------------------------------------------------------------------
    # scheduling primitives (also used by the fabric)
    # ------------------------------------------------------------------

    def schedule_commit(self, time: int, fn: Callable[[], None]) -> None:
        """Run ``fn`` at ``time``, before any process step at that time."""
        self._push(time, _PRIORITY_COMMIT, fn)

    def schedule(self, time: int, fn: Callable[[], None]) -> None:
        """Run ``fn`` at ``time`` in process-step order."""
        self._push(time, _PRIORITY_RESUME, fn)

    def _push(self, time: int, priority: int, fn: Callable[[], None]) -> None:
        if time < self.now:
            raise ValueError(f"event scheduled in the past: {time} < {self.now}")
        heapq.heappush(self._queue, (time, priority, next(self._seq), fn))

    def notify_var(self, var: int) -> None:
        """A fabric variable changed: wake its parked waiters to re-check."""
        waiters = self._waiters.pop(var, None)
        if not waiters:
            return
        for task, op, parked_at in waiters:
            self._recheck_wait(task, op, parked_at)

    # ------------------------------------------------------------------
    # task lifecycle
    # ------------------------------------------------------------------

    def spawn(self, gen: Generator, name: str = "",
              on_done: Optional[Callable[[], None]] = None) -> TaskStats:
        """Add a process; it starts at the current simulated time."""
        stats = TaskStats(name=name)
        task = _Task(gen, stats, on_done)
        self._live_tasks += 1
        self.schedule(self.now, lambda: self._step(task))
        return stats

    def run(self) -> int:
        """Drain the event queue; return the final simulated time."""
        while self._queue:
            time, _priority, _seq, fn = heapq.heappop(self._queue)
            if time > self.max_cycles:
                raise SimulationLimitError(
                    f"simulation exceeded {self.max_cycles} cycles")
            self.now = time
            fn()
        if self._live_tasks > 0:
            parked = [
                f"{task.stats.name}: {op.reason or op.predicate}"
                for waiters in self._waiters.values()
                for task, op, _t in waiters
            ]
            raise DeadlockError(
                f"{self._live_tasks} task(s) never completed; "
                f"parked waiters: {parked}")
        return self.now

    # ------------------------------------------------------------------
    # operation interpretation
    # ------------------------------------------------------------------

    def _step(self, task: _Task) -> None:
        if not task.alive:
            return
        try:
            op = task.gen.send(task.pending_value)
        except StopIteration:
            task.alive = False
            task.stats.done_at = self.now
            self._live_tasks -= 1
            if task.on_done is not None:
                task.on_done()
            return
        task.pending_value = None
        self._dispatch(task, op)

    def _resume_at(self, task: _Task, time: int, value: Any = None) -> None:
        task.pending_value = value
        self.schedule(time, lambda: self._step(task))

    def _dispatch(self, task: _Task, op: Any) -> None:
        if isinstance(op, Compute):
            task.stats.busy += op.cycles
            if self.record_trace and op.cycles:
                self.activity.append((task.stats.name, "busy", self.now,
                                      self.now + op.cycles))
            self._resume_at(task, self.now + op.cycles)
        elif isinstance(op, MemRead):
            self._mem_read(task, op)
        elif isinstance(op, MemWrite):
            self._mem_write(task, op)
        elif isinstance(op, SyncRead):
            self._sync_read(task, op)
        elif isinstance(op, SyncWrite):
            self._sync_write(task, op)
        elif isinstance(op, SyncUpdate):
            task.stats.sync_ops += 1
            done, cell = self.fabric.update(op.var, op.fn, self.now)
            task.stats.stall += done - self.now
            # Commits precede same-cycle resumes, so the cell is filled
            # when the process wakes with the post-update value.
            self.schedule(done, lambda: self._resume_at(
                task, self.now, cell.get("value")))
        elif isinstance(op, WaitUntil):
            task.stats.sync_ops += 1
            self._begin_wait(task, op)
        elif isinstance(op, Fence):
            done = max(self.now, task.last_write_commit)
            task.stats.stall += done - self.now
            self._resume_at(task, done)
        elif isinstance(op, Annotate):
            if op.kind == "tag":
                task.tag = op.payload.get("tag")
            else:
                self.events.append((self.now, op.kind, dict(op.payload)))
            self._resume_at(task, self.now)
        else:
            raise TypeError(f"unknown operation {op!r} from task "
                            f"{task.stats.name!r}")

    # -- shared memory --------------------------------------------------

    def _mem_read(self, task: _Task, op: MemRead) -> None:
        pending = task.store_buffer.get(op.addr)
        if pending is not None:
            # Store-to-load forwarding: the task sees its own posted
            # write immediately (one cycle, no memory transaction).
            value = pending[1]
            if self.record_trace:
                self.trace.append(AccessRecord(
                    commit=self.now + 1, kind="R", addr=op.addr,
                    value=value, task=task.stats.name, tag=task.tag))
            self._resume_at(task, self.now + 1, value)
            return
        done = self.memory.access_time(op.addr, self.now)
        task.stats.stall += done - self.now
        tag = task.tag  # capture at issue: commits run after tag changes

        def complete() -> None:
            value = self.memory.read(op.addr)
            if self.record_trace:
                self.trace.append(AccessRecord(
                    commit=self.now, kind="R", addr=op.addr, value=value,
                    task=task.stats.name, tag=tag))
            self._resume_at(task, self.now, value)

        self.schedule(done, complete)

    def _mem_write(self, task: _Task, op: MemWrite) -> None:
        done = self.memory.access_time(op.addr, self.now, kind="W")
        task.last_write_commit = max(task.last_write_commit, done)
        tag = task.tag  # capture at issue: commits run after tag changes
        pending = task.store_buffer.setdefault(op.addr, [0, None])
        pending[0] += 1
        pending[1] = op.value

        def commit() -> None:
            self.memory.write(op.addr, op.value)
            entry = task.store_buffer.get(op.addr)
            if entry is not None:
                entry[0] -= 1
                if entry[0] == 0:
                    del task.store_buffer[op.addr]
            if self.record_trace:
                self.trace.append(AccessRecord(
                    commit=self.now, kind="W", addr=op.addr, value=op.value,
                    task=task.stats.name, tag=tag))

        self.schedule_commit(done, commit)
        # Posted write: the processor proceeds after handing the write to
        # the memory system; Fence makes it wait for global visibility.
        self._resume_at(task, self.now + 1)

    # -- synchronization fabric ------------------------------------------

    def _sync_read(self, task: _Task, op: SyncRead) -> None:
        task.stats.sync_ops += 1
        done = self.fabric.read_cost(op.var, self.now,
                                     requester=task.stats.name)
        task.stats.stall += done - self.now
        self.schedule(done, lambda: self._resume_at(
            task, self.now, self.fabric.value(op.var)))

    def _sync_write(self, task: _Task, op: SyncWrite) -> None:
        task.stats.sync_ops += 1
        done = self.fabric.write(op.var, op.value, self.now, op.coverable,
                                 requester=task.stats.name)
        task.stats.stall += done - self.now
        self._resume_at(task, done)

    def _begin_wait(self, task: _Task, op: WaitUntil) -> None:
        if self.fabric.wait_mode == "poll":
            self._poll_wait(task, op, started=self.now)
            return
        # Event-driven wait on the local register image: test now, park
        # until the variable's committed value changes.
        if op.predicate(self.fabric.value(op.var)):
            task.stats.waits_satisfied_immediately += 1
            self._resume_at(task, self.now + 1)
        else:
            self._park(task, op, self.now)

    def _park(self, task: _Task, op: WaitUntil, parked_at: int) -> None:
        self._waiters.setdefault(op.var, []).append((task, op, parked_at))
        self._parked += 1

    def _recheck_wait(self, task: _Task, op: WaitUntil, parked_at: int) -> None:
        self._parked -= 1
        if op.predicate(self.fabric.value(op.var)):
            task.stats.spin += self.now - parked_at
            if self.record_trace and self.now > parked_at:
                self.activity.append((task.stats.name, "spin", parked_at,
                                      self.now))
            self._resume_at(task, self.now + 1)
        else:
            self._park(task, op, parked_at)

    def _poll_wait(self, task: _Task, op: WaitUntil, started: int,
                   first: bool = True) -> None:
        done = self.fabric.read_cost(op.var, self.now,
                                     requester=task.stats.name)
        if first:
            # The first poll is a mandatory read: account it as a memory
            # stall.  Only re-polls count as busy-waiting.
            task.stats.stall += done - self.now

        def check() -> None:
            if op.predicate(self.fabric.value(op.var)):
                if first:
                    task.stats.waits_satisfied_immediately += 1
                else:
                    task.stats.spin += self.now - started
                    if self.record_trace and self.now > started:
                        self.activity.append((task.stats.name, "spin",
                                              started, self.now))
                self._resume_at(task, self.now)
            else:
                next_poll = self.now + self.fabric.poll_interval
                spin_from = done if first else started
                self.schedule(next_poll,
                              lambda: self._poll_wait(task, op, spin_from,
                                                      first=False))

        self.schedule(done, check)
