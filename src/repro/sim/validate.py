"""Correctness validation of simulated parallel executions.

A synchronization scheme is *correct* when the parallel execution is
indistinguishable from the sequential one: every statement instance reads
the same values it would have read sequentially, and the final contents
of every program array match.  The validators here check exactly that
from the engine's access trace, plus (for schemes that do not rename
storage) that every dependence instance's source access committed before
its sink access.

Statement instances are identified by *tags*: ``(statement_id,
iteration)`` pairs that instrumented processes attach to their accesses
via ``Annotate("tag", ...)``.
"""

from __future__ import annotations

import zlib
from collections import defaultdict
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from .engine import AccessRecord
from .ops import Address

#: identifies one statement instance: (statement id, iteration id)
Tag = Tuple[Any, Any]


class ValidationError(AssertionError):
    """A simulated execution diverged from the sequential semantics."""


def mix(sid: Any, iteration: Any, reads: Sequence[Any]) -> int:
    """Deterministic value a statement instance computes from its reads.

    Both the parallel kernels and the sequential reference use this
    function, so any reordering that changes a read value changes every
    downstream value and is caught by the validators.  Unwritten memory
    reads as ``None`` and contributes a fixed constant.

    Seeded with ``zlib.crc32`` rather than ``hash()`` (which is salted
    per interpreter process) so that traces -- and the golden-trace
    fingerprints pinned from them -- are identical across runs.  The
    per-instance seed is memoized: it is a pure function of the tag,
    and the repr + crc32 otherwise dominate the statement hot path.
    """
    key = (sid, iteration)
    value = _MIX_SEEDS.get(key)
    if value is None:
        value = _MIX_SEEDS[key] = zlib.crc32(
            repr((str(sid), iteration)).encode())
    for read in reads:
        term = 0x9E3779B9 if read is None else int(read)
        value = (value * 31 + term) & 0xFFFFFFFF
    return value


_MIX_SEEDS: Dict[Tag, int] = {}


def statement_reads(trace: Iterable[AccessRecord]) -> Dict[Tag, List[Any]]:
    """Group read *values* by statement-instance tag, in commit order."""
    reads: Dict[Tag, List[Any]] = defaultdict(list)
    for record in trace:
        if record.kind == "R" and record.tag is not None:
            reads[record.tag].append(record.value)
    return dict(reads)


def check_reads_match_sequential(
        trace: Iterable[AccessRecord],
        expected: Dict[Tag, List[Any]],
        ignore_untagged: bool = True) -> None:
    """Every tagged statement instance must read the sequential values.

    ``expected`` comes from the sequential reference executor
    (:meth:`repro.depend.model.Loop.execute_sequential`).  This check is
    scheme-agnostic: it holds even for the instance-based scheme, which
    renames storage.
    """
    observed = statement_reads(trace)
    for tag, expected_values in expected.items():
        got = observed.get(tag, [])
        if got != list(expected_values):
            raise ValidationError(
                f"statement instance {tag} read {got}, "
                f"sequential execution reads {list(expected_values)}")
    if not ignore_untagged:
        extra = set(observed) - set(expected)
        if extra:
            raise ValidationError(f"unexpected tagged reads: {sorted(extra)}")


def check_reads_match_recovered(
        trace: Iterable[AccessRecord],
        expected: Dict[Tag, List[Any]]) -> None:
    """Sequential-read check tolerant of idempotent crash replay.

    A reincarnated task replays the unfinished part of its iteration, so
    a statement instance's tagged reads may appear *twice* in the trace —
    but every occurrence must still carry a sequential value.  We require
    the sequential read sequence to be a subsequence of the observed one
    and the observed value set to introduce nothing new.  This is exactly
    the guarantee replay provides: an un-signalled access's successors
    are still blocked, so re-reads return unchanged (sequential) values.
    """
    observed = statement_reads(trace)
    for tag, expected_values in expected.items():
        got = observed.get(tag, [])
        want = list(expected_values)
        it = iter(got)
        missing = [v for v in want if not any(g == v for g in it)]
        if missing:
            raise ValidationError(
                f"statement instance {tag} read {got}; sequential values "
                f"{want} are not a subsequence (missing {missing} even "
                f"allowing idempotent replay)")
        alien = [g for g in got if g not in want]
        if alien:
            raise ValidationError(
                f"statement instance {tag} read non-sequential values "
                f"{alien} during recovery replay (got {got}, sequential "
                f"{want})")


def check_final_state(final_memory: Dict[Address, Any],
                      expected: Dict[Address, Any],
                      arrays: Sequence[str]) -> None:
    """Final contents of the named arrays must match the sequential run."""
    for addr, value in expected.items():
        if addr[0] not in arrays:
            continue
        got = final_memory.get(addr)
        if got != value:
            raise ValidationError(
                f"final memory mismatch at {addr}: got {got}, "
                f"sequential execution leaves {value}")


#: one enforced ordering obligation: source instance's ``src_kind``
#: ("R"/"W") access to ``addr`` must commit before sink instance's
#: ``dst_kind`` access to the same ``addr``.
DependenceInstance = Tuple[Tag, Tag, Address, str, str]


def check_dependence_instances(
        trace: Iterable[AccessRecord],
        instances: Iterable[DependenceInstance]) -> None:
    """Check source-before-sink commit order on the shared element.

    The access kinds matter: an anti dependence orders a *read* before a
    *write*, and a statement instance may both read and write the same
    element.  Only meaningful for schemes that keep the original storage
    (reference keys, statement counters, process counters); the
    instance-based scheme renames addresses and is validated by value
    checks instead.
    """
    commits: Dict[Tuple[Tag, Address, str], List[Tuple[int, str]]] = \
        defaultdict(list)
    for record in trace:
        if record.tag is not None:
            commits[(record.tag, record.addr, record.kind)].append(
                (record.commit, record.task))

    for src_tag, dst_tag, addr, src_kind, dst_kind in instances:
        src_hits = commits.get((src_tag, addr, src_kind))
        dst_hits = commits.get((dst_tag, addr, dst_kind))
        if not src_hits or not dst_hits:
            raise ValidationError(
                f"missing access for dependence {src_tag} -> {dst_tag} "
                f"on {addr} (src={src_hits}, dst={dst_hits})")
        for src_time, src_task in src_hits:
            for dst_time, dst_task in dst_hits:
                if dst_time < src_time and dst_task != src_task:
                    # Same-task out-of-order commits are legal: program
                    # order plus store-to-load forwarding makes the sink
                    # see the source's value before its global commit.
                    raise ValidationError(
                        f"dependence violated: {src_tag} {src_kind}-"
                        f"accessed {addr} at {src_time} ({src_task}), "
                        f"after sink {dst_tag} {dst_kind} at {dst_time} "
                        f"({dst_task})")
