"""Result records for simulated runs.

A :class:`RunResult` gathers everything the benchmark harness reports:
makespan, per-processor cycle breakdown, memory and synchronization-bus
traffic, and the synchronization-variable footprint.  These are exactly
the quantities the paper argues about (number of synchronization
variables, initialization overhead, busy-wait traffic, bus transactions,
processor utilization), so the benches can print paper-shaped rows
directly from this record.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Dict, List, Mapping

from .engine import AccessRecord, TaskStats

#: Version of the ``RunResult.extra`` payload schema.  The machine
#: stamps every result with it (``extra["schema_version"]``) and cached
#: :mod:`repro.lab` records carry it, so records produced by older code
#: -- whose counter names or nesting may differ -- are *detected and
#: invalidated* instead of silently mixed into fresh sweeps.  Bump it
#: whenever the shape of ``extra`` (key names, counter semantics,
#: nesting) changes.
EXTRA_SCHEMA_VERSION = 1


@dataclass(frozen=True, slots=True)
class FaultCounters:
    """Typed view of ``extra["faults"]`` (zeros when the run was clean).

    Field names mirror the :class:`~repro.faults.injector.FaultInjector`
    counter keys; unknown keys from future injector versions are ignored
    by :meth:`from_extra` (the schema version is what gates mixing).
    """

    injected_stalls: int = 0
    injected_stall_cycles: int = 0
    crashes: int = 0
    jittered_accesses: int = 0
    dropped_updates: int = 0
    duplicated_updates: int = 0
    lost_broadcasts: int = 0
    delayed_broadcasts: int = 0

    @classmethod
    def from_extra(cls, extra: Mapping[str, Any]) -> "FaultCounters":
        """Build the typed view from a result's ``extra`` mapping."""
        raw = extra.get("faults", {})
        names = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in raw.items()
                      if key in names})


@dataclass(frozen=True, slots=True)
class RecoveryCounters:
    """Typed view of ``extra["recovery"]`` (zeros when none ran).

    Field names mirror the :class:`~repro.recovery.RecoveryManager`
    counter keys.
    """

    retransmissions: int = 0
    forced_deliveries: int = 0
    reincarnations: int = 0
    reclaimed_iterations: int = 0
    fallback_epochs: int = 0
    fallback_polls: int = 0
    recovery_overhead_cycles: int = 0

    @classmethod
    def from_extra(cls, extra: Mapping[str, Any]) -> "RecoveryCounters":
        """Build the typed view from a result's ``extra`` mapping."""
        raw = extra.get("recovery", {})
        names = {f.name for f in fields(cls)}
        return cls(**{key: value for key, value in raw.items()
                      if key in names})


@dataclass(slots=True)
class RunResult:
    """Everything measured in one simulated execution."""

    makespan: int
    processors: List[TaskStats]
    #: shared-memory data transactions (reads + writes)
    memory_transactions: int
    #: peak per-module request count (hot-spot indicator)
    memory_hotspot: int
    #: synchronization fabric transactions (charged reads + broadcasts)
    sync_transactions: int
    #: broadcasts avoided by the write-coverage optimization
    covered_writes: int
    #: number of synchronization variables the scheme allocated
    sync_vars: int
    #: words of synchronization storage
    sync_storage_words: int
    #: cycles spent before the loop body started (key initialization etc.)
    init_cycles: int
    trace: List[AccessRecord] = field(default_factory=list)
    #: synchronization events (seq, kind, var, value, task) sharing seq
    #: numbers with ``trace`` -- the race sanitizer's input.  Not part of
    #: ``summary()``, so records and their schema are unaffected.
    sync_trace: List[Any] = field(default_factory=list)
    final_memory: Dict[Any, Any] = field(default_factory=dict)
    extra: Dict[str, Any] = field(default_factory=dict)
    #: lightweight sanitizer stream from the engine's sync tap:
    #: (kind, where, task) tuples whose list index is issue order --
    #: present (possibly empty) when the run had ``sync_tap=True``,
    #: None otherwise.  Recorded in any metrics mode, which is what
    #: makes counters-mode runs race-checkable.
    tap: Any = None

    @property
    def total_busy(self) -> int:
        return sum(p.busy for p in self.processors)

    @property
    def total_spin(self) -> int:
        return sum(p.spin for p in self.processors)

    @property
    def total_stall(self) -> int:
        return sum(p.stall for p in self.processors)

    @property
    def total_sync_ops(self) -> int:
        return sum(p.sync_ops for p in self.processors)

    @property
    def schema_version(self) -> int:
        """Version of the ``extra`` payload this result carries.

        Results produced before the schema was versioned report ``0``;
        the lab cache treats any mismatch with
        :data:`EXTRA_SCHEMA_VERSION` as stale and re-simulates.
        """
        return int(self.extra.get("schema_version", 0))

    @property
    def fault_counters(self) -> FaultCounters:
        """Typed accessor for the fault-injection counters."""
        return FaultCounters.from_extra(self.extra)

    @property
    def recovery_counters(self) -> RecoveryCounters:
        """Typed accessor for the recovery-layer counters."""
        return RecoveryCounters.from_extra(self.extra)

    @property
    def faults(self) -> Dict[str, int]:
        """Fault-injection counters (empty when the run was clean).

        Populated by the machine from the
        :class:`~repro.faults.injector.FaultInjector` when a non-empty
        fault plan was active; keys are counter names such as
        ``injected_stalls`` or ``lost_broadcasts``.
        """
        return self.extra.get("faults", {})

    @property
    def fault_events(self) -> int:
        """Total injected fault events (cycle sums excluded)."""
        return sum(count for key, count in self.faults.items()
                   if not key.endswith("_cycles"))

    @property
    def recovery(self) -> Dict[str, int]:
        """Recovery-layer counters (empty when no recovery ran).

        Populated by the machine from the
        :class:`~repro.recovery.RecoveryManager` when both a non-empty
        fault plan and a recovery policy were configured; keys are
        counter names such as ``retransmissions``, ``reincarnations``
        or ``fallback_epochs``.
        """
        return self.extra.get("recovery", {})

    @property
    def recovery_events(self) -> int:
        """Total recovery actions taken (cycle sums excluded)."""
        return sum(count for key, count in self.recovery.items()
                   if not key.endswith("_cycles"))

    @property
    def utilization(self) -> float:
        """Fraction of processor-cycles doing useful computation."""
        capacity = self.makespan * len(self.processors)
        return self.total_busy / capacity if capacity else 0.0

    @property
    def spin_fraction(self) -> float:
        """Fraction of processor-cycles burnt busy-waiting."""
        capacity = self.makespan * len(self.processors)
        return self.total_spin / capacity if capacity else 0.0

    def speedup_over(self, serial_cycles: int) -> float:
        """Speedup relative to a serial execution taking ``serial_cycles``."""
        return serial_cycles / self.makespan if self.makespan else float("inf")

    def summary(self) -> Dict[str, Any]:
        """Flat dict of headline numbers (for table printing)."""
        return {
            "makespan": self.makespan,
            "utilization": round(self.utilization, 4),
            "spin_fraction": round(self.spin_fraction, 4),
            "sync_vars": self.sync_vars,
            "sync_storage_words": self.sync_storage_words,
            "init_cycles": self.init_cycles,
            "sync_transactions": self.sync_transactions,
            "covered_writes": self.covered_writes,
            "memory_transactions": self.memory_transactions,
            "memory_hotspot": self.memory_hotspot,
            "sync_ops": self.total_sync_ops,
        }
