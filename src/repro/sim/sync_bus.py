"""Synchronization fabrics: where synchronization variables live.

The paper's taxonomy turns on *how synchronization variables are used*,
but its hardware discussion (section 6) turns on *where they are stored*:

* Data-oriented keys (Cedar, HEP) live next to the data in shared global
  memory -- every key operation is a memory transaction and busy-waiting
  pollutes the memory system.  :class:`MemorySyncFabric` models this.
* Statement counters (Alliant) and the proposed process counters live in
  a small register file replicated per processor and kept coherent by a
  dedicated broadcast bus.  Reads and busy-waits hit the *local image*
  for free; only writes occupy the bus.  :class:`BroadcastSyncFabric`
  models this, including the write-coverage optimization ("an issued
  write need not be sent out if a second write to the same PC arrives
  before the former has gained the bus access").

Both fabrics expose the same interface so a synchronization scheme can be
simulated on either storage substrate.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Any, Dict

from .memory import SharedMemory
from .ops import Address


class SyncFabric(ABC):
    """Storage + timing substrate for synchronization variables.

    Variables are integers allocated with :meth:`alloc`; values are
    arbitrary (counters, ``<owner, step>`` tuples, full/empty bits).  The
    engine consults :attr:`wait_mode` to decide how to implement
    ``WaitUntil``:

    ``"event"``
        Spinning is free (local register image); the waiter re-checks
        whenever the variable's committed value changes.
    ``"poll"``
        Every re-check is a charged read (memory transaction), repeated
        every :attr:`poll_interval` cycles.  This is what creates the
        hot-spot on counter barriers.
    """

    wait_mode: str = "event"
    poll_interval: int = 4

    def __init__(self) -> None:
        self._engine = None
        self.storage_words = 0
        self.transactions = 0

    def attach(self, engine) -> None:
        """Bind the fabric to the engine that schedules its commits."""
        self._engine = engine

    def alloc(self, count: int, init: Any = 0, words_per_var: int = 1) -> range:
        """Allocate ``count`` fresh variables, each initialized to ``init``.

        Allocation itself is free; schemes that must *initialize* their
        variables at run time (data-oriented keys) issue explicit writes
        in their prologue instead.
        """
        start = self.storage_words_allocated()
        for var in range(start, start + count):
            self._set_initial(var, init)
        self.storage_words += count * words_per_var
        return range(start, start + count)

    @abstractmethod
    def storage_words_allocated(self) -> int:
        """Number of variables allocated so far (next free id)."""

    @abstractmethod
    def _set_initial(self, var: int, value: Any) -> None:
        """Install an initial committed value for ``var``."""

    @abstractmethod
    def value(self, var: int) -> Any:
        """Currently committed (globally visible) value of ``var``."""

    def authoritative_value(self, var: int) -> Any:
        """The home copy of ``var`` (what a shared-memory poll reads).

        For fabrics with a single storage site this *is* the committed
        value; the broadcast fabric overrides it with the master copy
        that lost broadcasts still reach (degraded-mode fallback reads
        it through shared memory at a charged cost).
        """
        return self.value(var)

    @abstractmethod
    def write(self, var: int, value: Any, now: int, coverable: bool = False,
              requester: Any = None) -> int:
        """Issue a write at ``now``; return when the *writer* may proceed.

        The new value becomes visible (and waiters are notified) at a
        fabric-dependent later time.  ``requester`` identifies the
        issuing processor for fabrics with per-processor state (caches).
        """

    @abstractmethod
    def read_cost(self, var: int, now: int, requester: Any = None) -> int:
        """Return the completion time of an explicit read issued at ``now``."""

    @abstractmethod
    def update(self, var: int, fn, now: int) -> "tuple[int, dict]":
        """Atomic read-modify-write: commit ``fn(committed value)``.

        One transaction.  Returns ``(done, cell)``: the processor may
        proceed at ``done``, and ``cell["value"]`` holds the new value
        once the commit has run (commits precede same-cycle resumes, so
        the engine can hand the value to the process, like fetch&add).
        """


class _MemCommit:
    """Commit event of a memory-fabric sync write (slotted, no closure)."""

    __slots__ = ("fabric", "var", "value")

    def __init__(self, fabric: SyncFabric, var: int, value: Any) -> None:
        self.fabric = fabric
        self.var = var
        self.value = value

    def __call__(self) -> None:
        fabric = self.fabric
        fabric._values[self.var] = self.value
        fabric._engine.notify_var(self.var)


class _MemUpdateCommit:
    """Commit event of a memory-fabric RMW; fills the issuer's cell."""

    __slots__ = ("fabric", "var", "fn", "cell")

    def __init__(self, fabric: SyncFabric, var: int, fn: Any,
                 cell: dict) -> None:
        self.fabric = fabric
        self.var = var
        self.fn = fn
        self.cell = cell

    def __call__(self) -> None:
        fabric = self.fabric
        value = self.fn(fabric._values[self.var])
        fabric._values[self.var] = value
        self.cell["value"] = value
        fabric._engine.notify_var(self.var)


class MemorySyncFabric(SyncFabric):
    """Synchronization variables held in shared memory.

    Each variable occupies one pseudo-address in the interleaved memory
    model, so sync traffic competes with (and exhibits the same contention
    as) data traffic.  Busy-waiting is polled: every poll is a charged
    memory read.
    """

    wait_mode = "poll"

    def __init__(self, memory: SharedMemory, poll_interval: int = 4,
                 space: str = "__sync__") -> None:
        super().__init__()
        self.memory = memory
        self.poll_interval = poll_interval
        self._space = space
        self._values: Dict[int, Any] = {}
        self._next = 0
        #: var -> pseudo-address memo; polls hit this on every re-read
        self._addr_of: Dict[int, Address] = {}

    def storage_words_allocated(self) -> int:
        return self._next

    def alloc(self, count: int, init: Any = 0, words_per_var: int = 1) -> range:
        allocated = super().alloc(count, init, words_per_var)
        self._next += count
        return allocated

    def _set_initial(self, var: int, value: Any) -> None:
        self._values[var] = value

    def value(self, var: int) -> Any:
        return self._values[var]

    def _addr(self, var: int) -> Address:
        addr = self._addr_of.get(var)
        if addr is None:
            addr = self._addr_of[var] = (self._space, var)
        return addr

    def write(self, var: int, value: Any, now: int, coverable: bool = False,
              requester: Any = None) -> int:
        done = self.memory.access_time(self._addr(var), now, kind="W")
        self.transactions += 1
        self._engine.schedule_commit(done, _MemCommit(self, var, value))
        # A memory write is acknowledged when the module accepts it; the
        # writer proceeds then (store-and-go), matching posted data writes.
        return done

    def read_cost(self, var: int, now: int, requester: Any = None) -> int:
        self.transactions += 1
        addr = self._addr_of.get(var)
        if addr is None:
            addr = self._addr_of[var] = (self._space, var)
        return self.memory.access_time(addr, now)

    def update(self, var: int, fn, now: int) -> "tuple[int, dict]":
        done = self.memory.access_time(self._addr(var), now)
        self.transactions += 1
        cell: dict = {}
        self._engine.schedule_commit(done,
                                     _MemUpdateCommit(self, var, fn, cell))
        return done, cell


class _PendingBroadcast:
    """A granted-but-uncommitted broadcast write.

    Doubles as the fabric's ``_pending`` queue entry (coverage rewrites
    ``value`` in place while the write waits for the bus) and as the
    scheduled commit event the engine calls at visibility time -- one
    slotted allocation per broadcast instead of a dict plus a closure.
    ``seq`` is -1 on clean runs; the recovery layer stamps a real
    sequence number and routes commits through install/retransmit.
    """

    __slots__ = ("fabric", "var", "value", "grant", "seq", "lost")

    def __init__(self, fabric: "BroadcastSyncFabric", var: int,
                 value: Any, grant: int) -> None:
        self.fabric = fabric
        self.var = var
        self.value = value
        self.grant = grant
        self.seq = -1
        self.lost = False

    def __call__(self) -> None:
        fabric = self.fabric
        var = self.var
        pending = fabric._pending
        if pending.get(var) is self:
            del pending[var]
        if self.seq < 0:   # no recovery layer on this run
            if not self.lost:
                fabric._values[var] = self.value
                fabric._engine.notify_var(var)
            return
        # The home copy hears every granted broadcast, lost or not.
        fabric._master[var] = self.value
        if self.lost:
            # Gap detected by the receivers: NACK and retransmit
            # after the detection delay + backoff.
            fabric._schedule_retransmit(var, self, attempt=1)
        else:
            fabric._install(var, self)


class BroadcastSyncFabric(SyncFabric):
    """Register file replicated per processor, coherent via broadcast bus.

    Timing model (section 6 of the paper / Alliant concurrency bus):

    * A write is issued by its processor in :attr:`issue_cost` cycles and
      the processor proceeds immediately (writes never block progress).
    * Broadcasts serialize on the bus: one transaction per
      :attr:`bus_service` cycles, FIFO.
    * A broadcast becomes visible in every local image
      :attr:`propagation` cycles after it wins the bus; waiters re-check
      then.
    * With :attr:`coverage` on, a write that is still queued when a newer
      ``coverable`` write to the same variable arrives is *covered*: its
      queue slot is reused for the newer value and no extra bus
      transaction occurs.
    """

    wait_mode = "event"

    def __init__(self, issue_cost: int = 1, bus_service: int = 2,
                 propagation: int = 1, coverage: bool = True) -> None:
        super().__init__()
        self.issue_cost = issue_cost
        self.bus_service = bus_service
        self.propagation = propagation
        self.coverage = coverage
        self._values: Dict[int, Any] = {}
        self._next = 0
        self._bus_free_at = 0
        #: queued-but-uncommitted writes: var -> newest pending entry
        self._pending: Dict[int, _PendingBroadcast] = {}
        self.covered_writes = 0
        #: broadcasts dropped by fault injection (never became visible)
        self.lost_broadcasts = 0
        #: per-variable broadcast sequence numbers (recovery only):
        #: retransmitted deliveries install iff newer than the installed
        #: sequence, which both orders late arrivals and dedups replays
        self._seq: Dict[int, int] = {}
        self._installed_seq: Dict[int, int] = {}
        #: master (home) copy; lost broadcasts still reach it, so the
        #: degraded-mode fallback can poll it through shared memory
        self._master: Dict[int, Any] = {}

    def storage_words_allocated(self) -> int:
        return self._next

    def alloc(self, count: int, init: Any = 0, words_per_var: int = 1) -> range:
        allocated = super().alloc(count, init, words_per_var)
        self._next += count
        return allocated

    def _set_initial(self, var: int, value: Any) -> None:
        self._values[var] = value

    def value(self, var: int) -> Any:
        return self._values[var]

    def write(self, var: int, value: Any, now: int, coverable: bool = False,
              requester: Any = None) -> int:
        issue_done = now + self.issue_cost
        pending = self._pending.get(var)
        if (self.coverage and coverable and pending is not None
                and pending.grant > now):
            # The earlier broadcast has not won the bus yet (writes
            # issue from the resume phase, after all commits at ``now``,
            # so granted  <=>  grant <= now); replace its payload instead
            # of spending another transaction.
            pending.value = value
            self.covered_writes += 1
            return issue_done

        grant = max(issue_done, self._bus_free_at)
        self._bus_free_at = grant + self.bus_service
        visible = grant + self.bus_service + self.propagation
        self.transactions += 1

        entry = _PendingBroadcast(self, var, value, grant)
        self._pending[var] = entry
        engine = self._engine
        # Fault injection: a broadcast may be delayed by bus jitter or
        # lost outright (it wins the bus but never reaches the local
        # images, so waiters are never notified).
        injector = getattr(engine, "injector", None)
        if injector is not None:
            lost, extra = injector.broadcast_fate(var)
            visible += extra
            if lost:
                entry.lost = True
                self.lost_broadcasts += 1
        recovery = getattr(engine, "recovery", None)
        if recovery is not None:
            # Sequence-numbered commit: ordering + dedup for retransmits.
            entry.seq = self._seq.get(var, -1) + 1
            self._seq[var] = entry.seq
            recovery.note_broadcast(entry.lost)

        engine.schedule_commit(visible, entry)
        return issue_done

    # -- recovery: retransmission ---------------------------------------

    def _install(self, var: int, entry: _PendingBroadcast) -> None:
        """Sequence-guarded install into the local images + wakeup."""
        recovery = getattr(self._engine, "recovery", None)
        if entry.seq <= self._installed_seq.get(var, -1):
            # A newer broadcast already committed: this (late or
            # duplicated) delivery is dropped idempotently.
            if recovery is not None:
                recovery.counters["deduplicated_broadcasts"] += 1
            return
        self._installed_seq[var] = entry.seq
        self._values[var] = entry.value
        self._engine.notify_var(var)

    def _schedule_retransmit(self, var: int, entry: _PendingBroadcast,
                             attempt: int) -> None:
        """Queue retransmission ``attempt`` of a lost broadcast."""
        engine = self._engine
        recovery = engine.recovery
        start = engine.now + recovery.backoff(attempt)
        grant = max(start, self._bus_free_at)
        self._bus_free_at = grant + self.bus_service
        visible = grant + self.bus_service + self.propagation
        self.transactions += 1
        recovery.charge_retransmission(visible - engine.now)
        lost_again = recovery.retransmit_fate(attempt)
        if lost_again:
            self.lost_broadcasts += 1

        def redeliver() -> None:
            if lost_again:
                self._schedule_retransmit(var, entry, attempt + 1)
            else:
                self._install(var, entry)

        engine.schedule_commit(visible, redeliver)

    def authoritative_value(self, var: int) -> Any:
        return self._master.get(var, self._values[var])

    def read_cost(self, var: int, now: int, requester: Any = None) -> int:
        # Reading the local image is a register read: one cycle, no bus.
        return now + 1

    def update(self, var: int, fn, now: int) -> "tuple[int, dict]":
        issue_done = now + self.issue_cost
        grant = max(issue_done, self._bus_free_at)
        self._bus_free_at = grant + self.bus_service
        visible = grant + self.bus_service + self.propagation
        self.transactions += 1
        engine = self._engine
        # RMW results can be delayed by bus jitter but not lost here:
        # dropped/duplicated RMW commits are injected at the engine,
        # which rewrites the update function itself.
        injector = getattr(engine, "injector", None)
        if injector is not None:
            visible += injector.broadcast_delay(var)
        cell: dict = {}

        def commit() -> None:
            self._values[var] = fn(self._values[var])
            cell["value"] = self._values[var]
            engine.notify_var(var)

        engine.schedule_commit(visible, commit)
        # An RMW blocks the issuer until its result is back.
        return visible, cell
