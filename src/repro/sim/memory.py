"""Interleaved shared-memory model with per-module contention.

The multiprocessors the paper targets (Cray X-MP, Alliant FX/8, Cedar)
share memory through a set of interleaved modules.  Each module serves one
request per ``service_time`` cycles; concurrent requests to the same
module queue up.  That queueing is what produces the *hot-spot* effect the
paper cites against counter-based barriers (section 5, Example 4): P
processors polling one barrier counter all hit the same module.

Addresses are ``(array, index)`` pairs; an address maps to module
``stable_hash(array) + index) % modules`` so that distinct arrays and
neighbouring elements spread across modules, while repeated accesses to
one element always collide on the same module.  The hash must be stable
across interpreter runs (Python's ``hash(str)`` is salted per process),
or the module layout -- and with it every contention-dependent makespan
-- would differ from run to run, breaking seeded fault replay.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from .ops import Address


@dataclass
class MemoryConfig:
    """Timing parameters for the shared-memory system.

    ``latency``
        Fixed read-access latency (cycles) once a request is accepted by
        its module: wire + module access time.
    ``write_latency``
        Latency of a write becoming globally visible; defaults to
        ``latency``.  Real machines often take longer (store buffers,
        write-behind), which is exactly why section 2.2's requirement (1)
        -- signal only after the update "is reflected in the shared
        memory" -- needs an explicit fence.
    ``service_time``
        Module occupancy per request; a module accepts at most one new
        request every ``service_time`` cycles, so simultaneous requests to
        one module serialize at this rate.
    ``modules``
        Number of interleaved memory modules.
    ``bus_service``
        When set, every memory request also occupies a single shared
        *data bus* for this many cycles before reaching its module --
        the bus-based organization of the Alliant FX/8 / Multimax class
        (the paper: sync-bus traffic "is no worse than that in the main
        data bus").  ``None`` models a crossbar/multistage network where
        only per-module contention matters (Cedar class).
    """

    latency: int = 4
    write_latency: Optional[int] = None
    service_time: int = 1
    modules: int = 16
    bus_service: Optional[int] = None

    def __post_init__(self) -> None:
        if self.latency < 0:
            raise ValueError("latency must be >= 0")
        if self.write_latency is None:
            self.write_latency = self.latency
        if self.write_latency < 0:
            raise ValueError("write_latency must be >= 0")
        if self.service_time < 1:
            raise ValueError("service_time must be >= 1")
        if self.modules < 1:
            raise ValueError("modules must be >= 1")
        if self.bus_service is not None and self.bus_service < 1:
            raise ValueError("bus_service must be >= 1 (or None)")


class SharedMemory:
    """Word-addressable shared memory with interleaved modules.

    The object holds both the *functional* state (a dict from address to
    value) and the *timing* state (when each module is next free).  The
    engine calls :meth:`access_time` to learn when a request issued at
    time ``now`` completes, then performs the read/write functionally.
    """

    def __init__(self, config: Optional[MemoryConfig] = None) -> None:
        self.config = config or MemoryConfig()
        self._data: Dict[Address, Any] = {}
        # next_free[m] = first cycle at which module m can accept a request
        self._next_free: List[int] = [0] * self.config.modules
        self.reads = 0
        self.writes = 0
        #: per-module accepted-request counts, for hot-spot diagnostics
        self.module_traffic: List[int] = [0] * self.config.modules
        # shared data bus occupancy (only used when bus_service is set)
        self._bus_next_free = 0
        # timing scalars hoisted out of the per-access hot path
        self._modules = self.config.modules
        self._service = self.config.service_time
        self._latency = self.config.latency
        self._write_latency = self.config.write_latency
        self._bus_service = self.config.bus_service
        #: address -> module memo (module_of is a pure function of the
        #: address, and the crc32 + encode per access dominates it)
        self._module_cache: Dict[Address, int] = {}

    # ------------------------------------------------------------------
    # timing
    # ------------------------------------------------------------------

    def module_of(self, addr: Address) -> int:
        """Return the module an address interleaves to."""
        module = self._module_cache.get(addr)
        if module is None:
            array, index = addr
            module = self._module_cache[addr] = \
                (zlib.crc32(str(array).encode()) + index) % self._modules
        return module

    def access_time(self, addr: Address, now: int, kind: str = "R") -> int:
        """Accept a request at ``now``; return its completion time.

        Charges the module: the module is busy for ``service_time`` cycles
        starting when it accepts the request (possibly after queueing).
        ``kind`` selects the read or write latency.
        """
        module = self._module_cache.get(addr)
        if module is None:
            module = self.module_of(addr)
        accepted = now
        if self._bus_service is not None:
            # win the shared data bus first (FIFO)
            grant = max(now, self._bus_next_free)
            self._bus_next_free = grant + self._bus_service
            accepted = grant + self._bus_service - 1
        next_free = self._next_free
        start = next_free[module]
        if accepted > start:
            start = accepted
        next_free[module] = start + self._service
        self.module_traffic[module] += 1
        return (start + self._service - 1
                + (self._write_latency if kind == "W" else self._latency))

    # ------------------------------------------------------------------
    # functional state
    # ------------------------------------------------------------------

    def read(self, addr: Address) -> Any:
        """Return the current value at ``addr`` (``None`` if never written)."""
        self.reads += 1
        return self._data.get(addr)

    def write(self, addr: Address, value: Any) -> None:
        """Store ``value`` at ``addr``."""
        self.writes += 1
        self._data[addr] = value

    def peek(self, addr: Address) -> Any:
        """Read without charging traffic counters (for validation)."""
        return self._data.get(addr)

    def snapshot(self) -> Dict[Address, Any]:
        """Return a copy of the functional state."""
        return dict(self._data)

    def preload(self, values: Dict[Address, Any]) -> None:
        """Initialize memory contents without charging traffic."""
        self._data.update(values)

    @property
    def transactions(self) -> int:
        """Total accepted requests (reads + writes)."""
        return self.reads + self.writes

    def max_module_traffic(self) -> int:
        """Peak per-module request count — the hot-spot indicator."""
        return max(self.module_traffic)
