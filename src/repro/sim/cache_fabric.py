"""Coherent-cache synchronization fabric (section 6, first option).

"The PC's could be incorporated in a hardware-maintained coherent cache
system, even though they may be purged out of a cache."  This fabric
models that option: synchronization variables live in shared memory, but
each processor caches the lines it has read, with write-invalidate
coherence:

* a read *hit* (the requester holds a valid copy) costs one cycle and no
  transaction -- so busy-waiting on an unchanged variable is free, just
  as with the broadcast registers;
* a read *miss* fetches from memory (a charged, contended transaction)
  and installs a valid copy;
* a write invalidates every other processor's copy (the writer keeps an
  exclusive copy) and goes through memory; the next poll by each waiter
  therefore misses exactly once per change.

Compared to the dedicated broadcast bus: no bus to saturate, but every
*change* of a watched variable costs one miss per watcher instead of one
broadcast total -- the trade-off a bench quantifies.

An optional ``capacity`` bounds each processor's cached sync variables
(FIFO eviction), modelling the paper's "they may be purged out of a
cache": evicted variables simply miss again.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Dict, Optional

from .memory import SharedMemory
from .sync_bus import SyncFabric, _MemCommit, _MemUpdateCommit


class CachedSyncFabric(SyncFabric):
    """Write-invalidate cached synchronization variables."""

    wait_mode = "poll"

    def __init__(self, memory: SharedMemory, poll_interval: int = 2,
                 space: str = "__csync__",
                 capacity: Optional[int] = None) -> None:
        super().__init__()
        self.memory = memory
        self.poll_interval = poll_interval
        self.capacity = capacity
        self._space = space
        self._values: Dict[int, Any] = {}
        self._next = 0
        #: per-requester cache: ordered set of valid variable ids
        self._cache: Dict[Any, OrderedDict] = {}
        self.hits = 0
        self.misses = 0
        self.invalidations = 0
        self.evictions = 0

    def storage_words_allocated(self) -> int:
        return self._next

    def alloc(self, count: int, init: Any = 0,
              words_per_var: int = 1) -> range:
        allocated = super().alloc(count, init, words_per_var)
        self._next += count
        return allocated

    def _set_initial(self, var: int, value: Any) -> None:
        self._values[var] = value

    def value(self, var: int) -> Any:
        return self._values[var]

    # ------------------------------------------------------------------
    # cache bookkeeping
    # ------------------------------------------------------------------

    def _lines_of(self, requester: Any) -> OrderedDict:
        return self._cache.setdefault(requester, OrderedDict())

    def _install(self, requester: Any, var: int) -> None:
        lines = self._lines_of(requester)
        lines[var] = True
        lines.move_to_end(var)
        if self.capacity is not None and len(lines) > self.capacity:
            lines.popitem(last=False)
            self.evictions += 1

    def _holds(self, requester: Any, var: int) -> bool:
        return requester is not None and var in self._cache.get(requester,
                                                                ())

    def _invalidate_others(self, writer: Any, var: int) -> None:
        for requester, lines in self._cache.items():
            if requester != writer and var in lines:
                del lines[var]
                self.invalidations += 1

    # ------------------------------------------------------------------
    # fabric interface
    # ------------------------------------------------------------------

    def read_cost(self, var: int, now: int, requester: Any = None) -> int:
        if self._holds(requester, var):
            self.hits += 1
            return now + 1  # cache hit: local, free
        self.misses += 1
        self.transactions += 1
        done = self.memory.access_time((self._space, var), now)
        if requester is not None:
            self._install(requester, var)
        return done

    def write(self, var: int, value: Any, now: int, coverable: bool = False,
              requester: Any = None) -> int:
        done = self.memory.access_time((self._space, var), now)
        self.transactions += 1
        self._invalidate_others(requester, var)
        if requester is not None:
            self._install(requester, var)
        self._engine.schedule_commit(done, _MemCommit(self, var, value))
        return done

    def update(self, var: int, fn, now: int) -> "tuple[int, dict]":
        done = self.memory.access_time((self._space, var), now)
        self.transactions += 1
        self._invalidate_others(None, var)  # RMW invalidates every copy
        cell: dict = {}
        self._engine.schedule_commit(done,
                                     _MemUpdateCommit(self, var, fn, cell))
        return done, cell

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
