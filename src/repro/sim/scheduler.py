"""Iteration-to-processor scheduling policies.

The paper assumes *processor self-scheduling* [Tang & Yew] in all of its
examples: idle processors dynamically grab the next loop iteration from a
shared counter, which both balances load and matches the folding rule
(process ``X+i`` may reach its process counter long after process ``i``).
A static pre-partitioned policy is provided as a baseline and for the
barrier/FFT experiments where each process is pinned to one processor.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import deque
from typing import List, Optional, Sequence


class Scheduler(ABC):
    """Hands out process ids (loop iterations) to processors."""

    @abstractmethod
    def next_for(self, processor: int) -> Optional[int]:
        """Return the next process id for ``processor``; None when done."""

    @property
    @abstractmethod
    def grab_is_shared_access(self) -> bool:
        """True if claiming an iteration costs one shared-memory access."""

    def needs_shared_grab(self, processor: int) -> bool:
        """Will the *next* ``next_for`` hit the shared counter?

        Chunked schedulers serve most requests from a per-processor
        local queue; only refills touch shared state.
        """
        return self.grab_is_shared_access

    def remaining(self) -> Optional[int]:
        """Iterations not yet handed to any processor (None if unknown).

        Used by hazard diagnosis: when a run dies, the count of
        never-claimed iterations quantifies the lost work.
        """
        return None

    def reclaim(self, processor: int) -> List[int]:
        """Take back iterations queued locally for a dead ``processor``.

        Used by the recovery layer when a worker lineage is abandoned
        (reincarnation budget exhausted): claimed-but-unstarted
        iterations in the dead processor's private queue would otherwise
        silently vanish, letting the run complete short of work.  Purely
        shared schedulers hold nothing locally and return ``[]``.
        """
        return []


class SelfScheduler(Scheduler):
    """Dynamic self-scheduling from a shared iteration counter.

    Every grab is one fetch&add on a shared counter, so it is charged as a
    shared-memory access by the machine (``grab_is_shared_access``).
    """

    def __init__(self, iterations: Sequence[int]) -> None:
        self._iterations: List[int] = list(iterations)
        self._cursor = 0

    def next_for(self, processor: int) -> Optional[int]:
        if self._cursor >= len(self._iterations):
            return None
        value = self._iterations[self._cursor]
        self._cursor += 1
        return value

    @property
    def grab_is_shared_access(self) -> bool:
        return True

    def remaining(self) -> int:
        return len(self._iterations) - self._cursor


class ChunkSelfScheduler(Scheduler):
    """Self-scheduling by fixed-size chunks (Tang & Yew [24]).

    Each grab claims ``chunk`` consecutive iterations with one shared
    fetch&add, amortizing the scheduling traffic ``chunk``-fold at the
    cost of coarser load balancing.  ``chunk=1`` degenerates to plain
    self-scheduling.
    """

    def __init__(self, iterations: Sequence[int], chunk: int = 4) -> None:
        if chunk < 1:
            raise ValueError("chunk must be >= 1")
        self._iterations: List[int] = list(iterations)
        self._cursor = 0
        self.chunk = chunk
        self._local: dict = {}

    def next_for(self, processor: int) -> Optional[int]:
        queue = self._local.get(processor)
        if queue is None:
            queue = self._local[processor] = deque()
        if not queue:
            if self._cursor >= len(self._iterations):
                return None
            queue.extend(
                self._iterations[self._cursor:self._cursor + self.chunk])
            self._cursor += self.chunk
        return queue.popleft()

    @property
    def grab_is_shared_access(self) -> bool:
        return True

    def needs_shared_grab(self, processor: int) -> bool:
        return not self._local.get(processor)

    def remaining(self) -> int:
        local = sum(len(queue) for queue in self._local.values())
        return len(self._iterations) - self._cursor + local

    def reclaim(self, processor: int) -> List[int]:
        queue = self._local.get(processor)
        if not queue:
            return []
        taken = list(queue)
        queue.clear()
        return taken


class GuidedSelfScheduler(Scheduler):
    """Guided self-scheduling: chunk size = remaining / P (Polychrono-
    poulos & Kuck), the refinement of [24] used on the Alliant FX/8.

    Early grabs take big chunks (low overhead), late grabs take single
    iterations (good balancing near the end).
    """

    def __init__(self, iterations: Sequence[int],
                 n_processors: int) -> None:
        if n_processors < 1:
            raise ValueError("need at least one processor")
        self._iterations: List[int] = list(iterations)
        self._cursor = 0
        self.n_processors = n_processors
        self._local: dict = {}
        self.grabs = 0

    def next_for(self, processor: int) -> Optional[int]:
        queue = self._local.get(processor)
        if queue is None:
            queue = self._local[processor] = deque()
        if not queue:
            remaining = len(self._iterations) - self._cursor
            if remaining <= 0:
                return None
            size = max(1, remaining // self.n_processors)
            queue.extend(
                self._iterations[self._cursor:self._cursor + size])
            self._cursor += size
            self.grabs += 1
        return queue.popleft()

    @property
    def grab_is_shared_access(self) -> bool:
        return True

    def needs_shared_grab(self, processor: int) -> bool:
        return not self._local.get(processor)

    def remaining(self) -> int:
        local = sum(len(queue) for queue in self._local.values())
        return len(self._iterations) - self._cursor + local

    def reclaim(self, processor: int) -> List[int]:
        queue = self._local.get(processor)
        if not queue:
            return []
        taken = list(queue)
        queue.clear()
        return taken


class StaticScheduler(Scheduler):
    """Pre-partitioned iterations: cyclic (round-robin) or block chunks.

    Grabbing from a private queue is free.
    """

    def __init__(self, iterations: Sequence[int], n_processors: int,
                 policy: str = "cyclic") -> None:
        if policy not in ("cyclic", "block"):
            raise ValueError(f"unknown static policy {policy!r}")
        items = list(iterations)
        self._queues: List[List[int]] = [[] for _ in range(n_processors)]
        if policy == "cyclic":
            for position, value in enumerate(items):
                self._queues[position % n_processors].append(value)
        else:
            chunk = -(-len(items) // n_processors) if items else 0
            for p in range(n_processors):
                self._queues[p] = items[p * chunk:(p + 1) * chunk]
        self._cursors = [0] * n_processors

    def next_for(self, processor: int) -> Optional[int]:
        queue = self._queues[processor]
        cursor = self._cursors[processor]
        if cursor >= len(queue):
            return None
        self._cursors[processor] += 1
        return queue[cursor]

    @property
    def grab_is_shared_access(self) -> bool:
        return False

    def remaining(self) -> int:
        return sum(len(queue) - cursor for queue, cursor
                   in zip(self._queues, self._cursors))

    def reclaim(self, processor: int) -> List[int]:
        if not 0 <= processor < len(self._queues):
            return []
        queue = self._queues[processor]
        taken = queue[self._cursors[processor]:]
        self._cursors[processor] = len(queue)
        return taken
