"""Sync-placement mutants: delete or weaken one synchronization op.

The mutation-kill suite proves the verifier and the sanitizer are not
vacuous: every placement with one load-bearing sync op removed must be
flagged.  Mutants are expressed *structurally* -- "the k-th op in
iteration ``pid``'s stream matching this signature" -- so the same
mutant is applied identically by the static dry run and by the engine
at run time.

Eligibility is deliberately narrow, because not every deletion is a
bug:

* a **coverable** counter write (``set_PC`` / a mark) is a progress
  hint; schemes tolerate its loss by design, so deleting it proves
  nothing;
* a sync write nobody waits for (a consume bit with no later writer in
  the window) has no reader to starve;
* ops whose presence differs between the optimistic and pessimistic
  dry-run policies are run-time conditional -- a structural index into
  their stream could hit a different op than the one analyzed (see
  :func:`repro.analyze.placement.stable_signatures`).

What remains: deleting a sync write that some *other* task's wait
counts among its candidate satisfiers (starves the waiter -> static
deadlock), deleting a counted update another task waits on (same), and
weakening a wait into a no-op (the waiter barges ahead -> static race).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Set, Tuple

from ..schemes.base import InstrumentedLoop
from ..sim.ops import Annotate, Compute, SyncUpdate, SyncWrite, WaitUntil
from .hbgraph import WaitInfo, _early_updates, solve
from .placement import extract, stable_signatures
from .verifier import choose_window

__all__ = ["Mutant", "MutatedLoop", "enumerate_mutants", "apply_mutant",
           "kill_mutant"]


@dataclass(frozen=True)
class Mutant:
    """One structural mutation of a sync placement."""

    kind: str          # "delete-write" | "delete-update" | "weaken-wait"
    pid: int           # iteration whose stream is mutated
    signature: Tuple   # placement._signatures key the op must match
    occurrence: int    # k-th matching op in the stream (0-based)

    @property
    def label(self) -> str:
        var = self.signature[1]
        return f"{self.kind}:var{var}:p{self.pid}#{self.occurrence}"


def _matches(op: Any, signature: Tuple) -> bool:
    tag = signature[0]
    if tag == "W":
        return (isinstance(op, SyncWrite) and op.var == signature[1]
                and op.value == signature[2]
                and op.coverable == signature[3])
    if tag == "U":
        return isinstance(op, SyncUpdate) and op.var == signature[1]
    return isinstance(op, WaitUntil) and op.var == signature[1]


class MutatedLoop:
    """An instrumented loop with one mutant applied (and, optionally,
    delays injected to provoke the witness interleaving: ``slow_pid``
    delays a whole iteration's start, ``slow_tag`` delays one statement
    instance just before it computes).

    Everything except ``make_process`` delegates to the wrapped loop, so
    the static extractor and the machine both see the mutation through
    the identical code path.
    """

    def __init__(self, inner: InstrumentedLoop, mutant: Mutant,
                 slow_pid: Optional[int] = None,
                 slow_tag: Optional[Tuple[str, int]] = None,
                 slow_cost: int = 3000,
                 start_cost: int = 8000) -> None:
        self._inner = inner
        self.mutant = mutant
        self.slow_pid = slow_pid
        self.slow_tag = slow_tag
        self.slow_cost = slow_cost
        self.start_cost = start_cost

    def __getattr__(self, name: str) -> Any:
        return getattr(self._inner, name)

    def make_process(self, iteration: int) -> Generator:
        gen = self._inner.make_process(iteration)
        if iteration == self.mutant.pid:
            gen = self._mutate(gen)
        if self.slow_tag is not None and iteration == self.slow_tag[1]:
            gen = self._slow_at_tag(gen)
        if iteration == self.slow_pid:
            gen = self._slow(gen)
        return gen

    def _slow(self, gen: Generator) -> Generator:
        yield Compute(self.start_cost)
        send = None
        while True:
            try:
                op = gen.send(send)
            except StopIteration:
                return
            send = yield op

    def _slow_at_tag(self, gen: Generator) -> Generator:
        send = None
        while True:
            try:
                op = gen.send(send)
            except StopIteration:
                return
            if (isinstance(op, Annotate) and op.kind == "tag"
                    and op.payload.get("tag") == self.slow_tag):
                yield Compute(self.slow_cost)
            send = yield op

    def _mutate(self, gen: Generator) -> Generator:
        mutant = self.mutant
        seen = 0
        send: Any = None
        while True:
            try:
                op = gen.send(send)
            except StopIteration:
                return
            send = None
            if _matches(op, mutant.signature):
                hit = seen == mutant.occurrence
                seen += 1
                if hit:
                    if mutant.kind == "weaken-wait":
                        op = WaitUntil(
                            op.var, lambda value: True,
                            reason=f"[mutated to no-op] {op.reason}")
                    else:
                        # Deleted: swallow the op.  The generator still
                        # expects a SyncUpdate's result value.
                        if isinstance(op, SyncUpdate):
                            send = 0
                        continue
            send = yield op


def enumerate_mutants(instrumented: InstrumentedLoop, *,
                      pid: Optional[int] = None,
                      window: Optional[int] = None) -> List[Mutant]:
    """Eligible mutants for one representative (mid-window) iteration."""
    fold = getattr(getattr(instrumented, "counters", None),
                   "n_counters", 1) or 1
    if window is None:
        window = choose_window(instrumented.loop, instrumented.graph,
                               fold)
    pids = list(instrumented.iterations[:window])
    if pid is None:
        pid = pids[len(pids) // 2]

    placement = extract(instrumented, pids)
    hb = solve(placement)
    nodes = placement.nodes

    # Writes some other task's wait counts among its candidate
    # satisfiers: deleting one can starve the waiter.
    candidate_nids: Set[int] = set()
    for wid, info in hb.waits.items():
        wtask = nodes[wid].task
        for cand in info.candidates:
            if cand is not None and nodes[cand].task != wtask:
                candidate_nids.add(cand)

    # Counted updates a threshold wait in another task cannot reach its
    # count without: removal starves it (a read-side key increment that
    # no later write waits on is NOT here -- deleting it is harmless).
    needed_updates: Set[int] = set()
    for wid, info in hb.waits.items():
        if not info.threshold:
            continue
        early = _early_updates(info, hb.past, wid, hb.co_waits)
        if len(early) <= info.threshold:
            wtask = nodes[wid].task
            needed_updates.update(u for u in early
                                  if nodes[u].task != wtask)

    # First runtime (non-synthetic) wait per (task, var): the node a
    # weaken-wait mutant with occurrence 0 lands on.
    first_wait: Dict[Tuple[int, int], WaitInfo] = {}
    for wid in sorted(hb.waits):
        node = nodes[wid]
        if node.synthetic:
            continue
        first_wait.setdefault((node.task, hb.waits[wid].var),
                              hb.waits[wid])

    mutants: List[Mutant] = []
    for sig in sorted(stable_signatures(instrumented, pid), key=repr):
        tag, var = sig[0], sig[1]
        if tag == "W":
            if sig[3]:  # coverable: a hint, deletion is tolerated
                continue
            load_bearing = any(
                nid in candidate_nids
                and nodes[nid].op.value == sig[2]
                for nid in placement.write_nodes.get(var, ())
                if nodes[nid].task == pid)
            if load_bearing:
                mutants.append(Mutant("delete-write", pid, sig, 0))
        elif tag == "U":
            if any(nodes[u].task == pid
                   for u in needed_updates
                   if placement.nodes[u].op.var == var):
                mutants.append(Mutant("delete-update", pid, sig, 0))
        else:
            info = first_wait.get((pid, var))
            if info is None or info.never_satisfiable:
                continue
            vacuous = (info.threshold == 0
                       or (info.threshold is None
                           and None in info.candidates))
            if not vacuous:
                mutants.append(Mutant("weaken-wait", pid, sig, 0))
    return mutants


def apply_mutant(instrumented: InstrumentedLoop, mutant: Mutant, *,
                 slow_pid: Optional[int] = None,
                 slow_tag: Optional[Tuple[str, int]] = None) -> MutatedLoop:
    """Wrap ``instrumented`` with ``mutant`` applied."""
    return MutatedLoop(instrumented, mutant, slow_pid=slow_pid,
                       slow_tag=slow_tag)


def kill_mutant(instrumented: InstrumentedLoop, mutant: Mutant,
                report: Any, *, schedule: str = "self") -> Any:
    """Search witness-guided provocations until one kills the mutant.

    The static report steers the search: a race finding names the
    source iteration to delay (so the sink really does read early); a
    deadlock finding first delays the blocked iteration, then tries the
    value-regression pattern -- delay the mutated iteration's
    predecessor at each statement (opening the overtake window in which
    the weakened wait publishes out of order) with a late-arriving
    successor that misses the transient value.  Returns the first
    killing :class:`~repro.analyze.sanitizer.DynamicVerdict`, or the
    last clean one when nothing worked.
    """
    from .sanitizer import dynamic_check

    variants: List[MutatedLoop] = [MutatedLoop(instrumented, mutant)]
    for finding in getattr(report, "races", [])[:3]:
        variants.append(MutatedLoop(
            instrumented, mutant,
            slow_tag=(finding.src_sid, finding.src_lpid)))
    if getattr(report, "deadlocks", []):
        variants.append(MutatedLoop(instrumented, mutant,
                                    slow_pid=report.deadlocks[0].lpid))
        iterations = list(instrumented.iterations)
        prev_pid = mutant.pid - 1
        next_pid = mutant.pid + 1
        if prev_pid in iterations and next_pid in iterations:
            for stmt in instrumented.loop.body:
                variants.append(MutatedLoop(
                    instrumented, mutant,
                    slow_tag=(stmt.sid, prev_pid), slow_pid=next_pid))
    verdict = None
    for variant in variants:
        verdict = dynamic_check(variant, schedule=schedule)
        if verdict.killed:
            return verdict
    return verdict
