"""Dynamic race sanitizer -- the verifier's oracle, two backends.

Runs an instrumented loop on the simulated machine and replays the
recorded event stream through a happens-before race analysis.  The
stream is ``(seq, kind, where, task)`` tuples: data accesses (``"R"`` /
``"W"`` at an address) merged with synchronization events (``"rel"`` /
``"acq"`` / ``"upd"`` on a sync variable) by their shared issue-order
``seq`` numbers.  It comes from either

* the lightweight **sync tap** (``RunResult.tap``, recorded by the
  engine in any metrics mode, including ``"counters"`` where the full
  trace is off) -- the tap appends at exactly the points the trace
  recorder allocates ``seq`` numbers, so list index *is* issue order; or
* the full ``RunResult.trace`` + ``RunResult.sync_trace`` pair, merged
  and sorted by ``seq`` (the pre-tap path, kept for recorded runs).

The engine is a single-threaded discrete-event simulator that commits a
synchronization write before resuming any waiter it satisfies, so issue
order is consistent with program order and with every
release-before-acquire edge -- replaying in ``seq`` order is sound.

Two oracles consume the stream and must agree verdict for verdict:

* ``oracle="om"`` (default): the DePa-style order-maintenance checker
  in :mod:`repro.analyze.om` -- O(1) per race query, linear-time over
  the stream, the one that scales to million-event counters-mode runs;
* ``oracle="vc"``: the original FastTrack-style vector clocks, kept as
  the independent differential-testing reference.  ``rel`` joins the
  releaser's clock into the variable's clock then advances the
  releaser; ``acq`` joins the variable's clock into the acquirer (with
  a per-(task, variable) revision cache so re-acquiring an unchanged
  variable no longer re-walks its whole clock -- the profile hotspot);
  ``upd`` does both.  A data write must be ordered after the location's
  last write *and* every read since it; a read after the last write.

Verdicts fold in the machine's own failure modes so one call answers
"did this schedule kill the mutant": a diagnosed deadlock or hazard is
``"deadlock"``, a validation mismatch against the sequential semantics
is ``"corruption"``, an unordered conflicting pair is ``"race"``,
otherwise ``"clean"``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..sim.engine import HazardError
from ..sim.machine import Machine, MachineConfig
from ..sim.metrics import RunResult
from ..sim.validate import ValidationError
from ..schemes.base import InstrumentedLoop
from .om import check_stream as _om_check_stream

__all__ = ["RaceEvent", "DynamicVerdict", "event_stream", "check_trace",
           "dynamic_check"]

#: addresses owned by the harness, not the program under test
_HARNESS_SPACES = ("__sched__",)

#: generous watchdog: poll-mode fabrics never report an empty event
#: queue, so stagnation is how their deadlocks are diagnosed
_STAGNATION_LIMIT = 100_000

#: kinds naming a sync variable rather than a data address
_SYNC_KINDS = ("rel", "acq", "upd")


@dataclass(frozen=True)
class RaceEvent:
    """One unordered conflicting access pair found in a trace."""

    addr: Tuple[str, int]
    first_task: str
    first_kind: str
    first_seq: int
    second_task: str
    second_kind: str
    second_seq: int

    def describe(self) -> str:
        return (f"{self.first_kind} by {self.first_task} (seq "
                f"{self.first_seq}) unordered with {self.second_kind} "
                f"by {self.second_task} (seq {self.second_seq}) on "
                f"{self.addr}")


@dataclass
class DynamicVerdict:
    """Outcome of one sanitized execution."""

    verdict: str                      # clean | race | deadlock | corruption
    races: List[RaceEvent] = field(default_factory=list)
    detail: str = ""
    result: Optional[RunResult] = None

    @property
    def killed(self) -> bool:
        return self.verdict != "clean"


class _Clocks:
    """Vector clocks keyed by task name (sparse dicts)."""

    def __init__(self) -> None:
        self.tasks: Dict[str, Dict[str, int]] = {}
        self.boot: Dict[str, int] = {}
        self._booted = False

    def of(self, task: str) -> Dict[str, int]:
        clock = self.tasks.get(task)
        if clock is None:
            if not self._booted and not task.startswith("init"):
                # The machine runs every prologue task to completion
                # before the loop starts: loop tasks begin after all of
                # the initialization work.
                self._booted = True
                for init in self.tasks.values():
                    _join(self.boot, init)
            clock = dict(self.boot) if self._booted else {}
            clock[task] = 1
            self.tasks[task] = clock
        return clock


def _join(into: Dict[str, int], other: Dict[str, int]) -> None:
    for task, tick in other.items():
        if tick > into.get(task, 0):
            into[task] = tick


def event_stream(result: RunResult) -> List[Tuple[int, str, Any, str]]:
    """Merged, harness-filtered ``(seq, kind, where, task)`` stream.

    Both oracles consume this one stream, so filtering (and therefore
    task-boot order) is decided here, once.  Prefers the engine's sync
    tap when the run carries one -- it is already in issue order and
    exists even in counters mode; otherwise merges the full trace with
    the sync trace by ``seq``.
    """
    tap = getattr(result, "tap", None)
    if tap:
        return [(seq, kind, where, task)
                for seq, (kind, where, task) in enumerate(tap)
                if kind in _SYNC_KINDS or where[0] not in _HARNESS_SPACES]
    events: List[Tuple[int, str, Any, str]] = []
    for record in result.trace:
        if record.addr[0] in _HARNESS_SPACES:
            continue
        events.append((record.seq, record.kind, record.addr, record.task))
    for seq, kind, var, _value, task in result.sync_trace:
        events.append((seq, kind, var, task))
    events.sort(key=lambda event: event[0])
    return events


def check_trace(result: RunResult, oracle: str = "om") -> List[RaceEvent]:
    """Replay a run's event stream through a happens-before analysis.

    ``oracle="om"`` uses the order-maintenance checker (the default);
    ``oracle="vc"`` the original vector clocks.  Both return the same
    races in the same order -- the mutation corpus pins this.
    """
    events = event_stream(result)
    if oracle == "om":
        return [RaceEvent(*race) for race in _om_check_stream(events)]
    if oracle != "vc":
        raise ValueError(f"unknown oracle {oracle!r}; use 'om' or 'vc'")
    return _check_vc(events)


def _check_vc(events: List[Tuple[int, str, Any, str]]) -> List[RaceEvent]:
    clocks = _Clocks()
    var_clocks: Dict[Any, Dict[str, int]] = {}
    var_revision: Dict[Any, int] = {}                  # bumped per release
    acquired: Dict[str, Dict[Any, int]] = {}           # task -> var -> rev
    last_write: Dict[Any, Tuple[str, int, int]] = {}   # task, tick, seq
    reads: Dict[Any, Dict[str, Tuple[int, int]]] = {}  # task -> tick, seq
    races: List[RaceEvent] = []

    for seq, kind, where, task in events:
        clock = clocks.of(task)
        if kind == "acq":
            # Joining a variable whose clock has not changed since this
            # task last joined it is a no-op: skip the dict walk.
            revision = var_revision.get(where, 0)
            seen = acquired.setdefault(task, {})
            if seen.get(where) != revision:
                _join(clock, var_clocks.get(where, {}))
                seen[where] = revision
        elif kind == "rel":
            _join(var_clocks.setdefault(where, {}), clock)
            clock[task] = clock.get(task, 0) + 1
            var_revision[where] = var_revision.get(where, 0) + 1
        elif kind == "upd":
            _join(clock, var_clocks.setdefault(where, {}))
            _join(var_clocks[where], clock)
            clock[task] = clock.get(task, 0) + 1
            var_revision[where] = var_revision.get(where, 0) + 1
        elif kind == "R":
            writer = last_write.get(where)
            if writer is not None and writer[0] != task \
                    and writer[1] > clock.get(writer[0], 0):
                races.append(RaceEvent(
                    addr=where, first_task=writer[0], first_kind="W",
                    first_seq=writer[2], second_task=task,
                    second_kind="R", second_seq=seq))
            reads.setdefault(where, {})[task] = (clock.get(task, 0), seq)
        else:  # "W"
            writer = last_write.get(where)
            if writer is not None and writer[0] != task \
                    and writer[1] > clock.get(writer[0], 0):
                races.append(RaceEvent(
                    addr=where, first_task=writer[0], first_kind="W",
                    first_seq=writer[2], second_task=task,
                    second_kind="W", second_seq=seq))
            for reader, (tick, rseq) in reads.get(where, {}).items():
                if reader != task and tick > clock.get(reader, 0):
                    races.append(RaceEvent(
                        addr=where, first_task=reader, first_kind="R",
                        first_seq=rseq, second_task=task,
                        second_kind="W", second_seq=seq))
            last_write[where] = (task, clock.get(task, 0), seq)
            reads[where] = {}  # this write orders all earlier reads
    return races


def dynamic_check(instrumented: InstrumentedLoop, *,
                  processors: Optional[int] = None,
                  schedule: str = "self",
                  validate: bool = True,
                  max_races: int = 20,
                  oracle: str = "om") -> DynamicVerdict:
    """Run one schedule and report how (whether) it kills the placement.

    ``processors`` defaults to one per iteration -- the maximally
    parallel schedule, which exposes the most interleavings the sync
    placement must defend against.
    """
    if processors is None:
        processors = max(1, len(instrumented.iterations))
    machine = Machine(MachineConfig(
        processors=processors, schedule=schedule, record_trace=True,
        stagnation_limit=_STAGNATION_LIMIT))
    try:
        result = machine.run(instrumented)
    except HazardError as err:  # includes diagnosed DeadlockError
        return DynamicVerdict(verdict="deadlock", detail=str(err))
    races = check_trace(result, oracle=oracle)
    if races:
        detail = "; ".join(r.describe() for r in races[:max_races])
        return DynamicVerdict(verdict="race", races=races,
                              detail=detail, result=result)
    if validate:
        try:
            instrumented.validate(result)
        except ValidationError as err:
            return DynamicVerdict(verdict="corruption", detail=str(err),
                                  result=result)
    return DynamicVerdict(verdict="clean", result=result)
