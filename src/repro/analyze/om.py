"""DePa-style graph-fiber order maintenance for race checking.

The vector-clock sanitizer carries a per-task dict of per-task ticks and
joins whole dicts at every synchronization edge; fine for the 10^3-event
traces of PR 4, hopeless for the 10^6-event traces the counters-mode
engine now produces.  This module replaces the clocks with the
order-maintenance representation of Westrick, Wang & Acar's *DePa*
(PAPERS.md): each task's execution is a sequence of **fibers**, a fiber
being a maximal run of events with no *incoming* synchronization edge
at its interior.  A fiber **splits** at every knowledge-adding join (an
acquire imports new knowledge); DePa's split-at-fork is subsumed by the
packed positional watermarks -- a release publishes the releaser's
*position*, and later same-fiber events compare above it, so the
published prefix closes without a split.  Every event is named by
exactly **two machine words** -- ``(fiber, offset)`` -- and
:meth:`OrderMaintenance.precedes` answers any happens-before query
between two recorded events in **O(1)**:

* same task: fibers of one task are created in program order, so the
  packed ``(fiber_index, offset)`` positions compare directly;
* different tasks: a fiber's interior receives no edges, so the
  knowledge any event in fiber *f* has of task *u* is frozen at *f*'s
  creation -- one watermark lookup in *f*'s frontier snapshot.

Frontiers are flat integer lists indexed by interned task id; a
watermark is a single packed integer, exploiting that observing one
event of a task implies observing its whole program-order prefix.
Joins (the only O(#tasks) operation) happen solely at sync edges;
every data event costs O(1) appends and compares, which is what makes a
whole fig3.x trace checkable in seconds.

The streaming race check itself lives in :func:`check_stream`: one pass
over a merged ``(seq, kind, where, task)`` event stream, FastTrack-style
last-write epochs and read maps per location, every membership test a
single integer compare against a frontier watermark.  Verdict semantics
deliberately mirror the vector-clock oracle in
:mod:`repro.analyze.sanitizer` event for event (including the prologue
"boot" rule), so the two oracles can be diffed on identical streams.
"""

from __future__ import annotations

import gc
from typing import Any, Dict, Iterable, List, Optional, Tuple

__all__ = ["OrderMaintenance", "check_stream"]

#: bits reserved for the within-fiber offset in a packed position; a
#: single fiber would need 2^40 events to overflow (never: fibers are
#: bounded by the trace length, and Python ints do not wrap anyway)
_OFFSET_BITS = 40

#: "no knowledge" watermark (below every real packed position)
_NONE = -1


class OrderMaintenance:
    """Order-maintenance index over a streamed fork/join/sync trace.

    Feed events in observation order (any linearization consistent with
    program order and with every release-before-matching-acquire);
    query :meth:`precedes` on any two labels returned so far.
    """

    __slots__ = ("names", "_ids", "_fiber", "_fiber_task", "_fiber_index",
                 "_fiber_frontier", "_next_index", "_offset",
                 "_var_frontier", "_booted", "_boot")

    def __init__(self) -> None:
        #: interned task names, index == task id
        self.names: List[str] = []
        self._ids: Dict[str, int] = {}
        #: per task: current fiber id
        self._fiber: List[int] = []
        #: per task: next fiber index within the task
        self._next_index: List[int] = []
        #: per task: offset of the last event inside the current fiber
        self._offset: List[int] = []
        #: per fiber: owning task id
        self._fiber_task: List[int] = []
        #: per fiber: index within its task (program order of fibers)
        self._fiber_index: List[int] = []
        #: per fiber: frontier snapshot at fiber start -- packed
        #: watermarks per task id, frozen for the fiber's lifetime
        #: (each acquire-split builds the new fiber's merged list)
        self._fiber_frontier: List[List[int]] = []
        #: per sync variable: accumulated released frontier
        self._var_frontier: Dict[Any, List[int]] = {}
        self._booted = False
        self._boot: List[int] = []

    # -- task interning and the prologue boot rule ----------------------

    def task(self, name: str) -> int:
        """Intern ``name``; replicate the sanitizer's prologue rule.

        The machine runs every ``init*`` prologue task to completion
        before the loop starts, so the first non-``init`` task marks the
        boot point: everything any existing task has done is joined into
        a boot frontier that every later task starts from.
        """
        tid = self._ids.get(name)
        if tid is not None:
            return tid
        if not self._booted and not name.startswith("init"):
            self._booted = True
            boot: List[int] = [_NONE] * len(self.names)
            for u in range(len(self.names)):
                frontier = self._fiber_frontier[self._fiber[u]]
                for v, mark in enumerate(frontier):
                    if mark > boot[v]:
                        boot[v] = mark
                own = self._position(u)
                if own > boot[u]:
                    boot[u] = own
            self._boot = boot
        tid = len(self.names)
        self._ids[name] = tid
        self.names.append(name)
        start = list(self._boot) if self._booted else []
        fid = self._new_fiber(tid, 0, start)
        self._fiber.append(fid)
        self._next_index.append(1)
        self._offset.append(0)
        return tid

    def _new_fiber(self, tid: int, index: int,
                   frontier: List[int]) -> int:
        fid = len(self._fiber_task)
        self._fiber_task.append(tid)
        self._fiber_index.append(index)
        self._fiber_frontier.append(frontier)
        return fid

    def _position(self, tid: int) -> int:
        """Packed (fiber index, offset) of the task's latest event."""
        return ((self._fiber_index[self._fiber[tid]] << _OFFSET_BITS)
                | self._offset[tid])

    def _split(self, tid: int, frontier: List[int]) -> None:
        """End the task's current fiber; start the next one."""
        index = self._next_index[tid]
        self._next_index[tid] = index + 1
        self._fiber[tid] = self._new_fiber(tid, index, frontier)
        self._offset[tid] = 0

    # -- streamed events ------------------------------------------------

    def step(self, tid: int) -> int:
        """Record one event of task ``tid``; return its packed position.

        The event's two-word label is :meth:`label_of` the returned
        position (the packed form is what the race check stores).
        """
        offset = self._offset[tid] + 1
        self._offset[tid] = offset
        return ((self._fiber_index[self._fiber[tid]] << _OFFSET_BITS)
                | offset)

    def label(self, tid: int) -> Tuple[int, int]:
        """Two-machine-word label of the task's latest event."""
        return (self._fiber[tid], self._offset[tid])

    def release(self, tid: int, var: Any) -> None:
        """Fork edge: publish the task's prefix on ``var``.

        Joins the releaser's frontier *and its own position* into the
        variable's accumulated frontier (releases accumulate, matching
        the vector-clock ``rel`` rule).  No fiber split is needed: the
        published watermark is a packed *position*, so the releaser's
        later events in the same fiber compare above it and are
        correctly not implied by observing this release -- DePa's
        split-at-fork falls out of the ``<=`` on packed positions.
        """
        frontier = self._fiber_frontier[self._fiber[tid]]
        target = self._var_frontier.get(var)
        if target is None:
            target = self._var_frontier[var] = [_NONE] * len(self.names)
        elif len(target) < len(self.names):
            target.extend([_NONE] * (len(self.names) - len(target)))
        for v, mark in enumerate(frontier):
            if mark > target[v]:
                target[v] = mark
        own = self._position(tid)
        if own > target[tid]:
            target[tid] = own

    def acquire(self, tid: int, var: Any) -> None:
        """Join edge: import the variable's released frontier.

        A no-op when the variable was never released or adds nothing
        (the FastTrack same-epoch shortcut); otherwise the fiber splits
        and the new fiber snapshots the merged frontier.
        """
        source = self._var_frontier.get(var)
        if source is None:
            return
        frontier = self._fiber_frontier[self._fiber[tid]]
        merged: Optional[List[int]] = None
        if len(source) > len(frontier):
            merged = frontier + [_NONE] * (len(source) - len(frontier))
        for v, mark in enumerate(source):
            if merged is None:
                if mark > frontier[v]:
                    merged = list(frontier)
                    merged[v] = mark
            elif mark > merged[v]:
                merged[v] = mark
        if merged is None:
            return
        self._split(tid, merged)

    def update(self, tid: int, var: Any) -> None:
        """Atomic read-modify-write: an acquire, the event, a release."""
        self.acquire(tid, var)
        self.step(tid)
        self.release(tid, var)

    # -- queries --------------------------------------------------------

    def ordered(self, position: int, owner: int, tid: int) -> bool:
        """Does ``owner``'s event at packed ``position`` happen-before
        the latest event of ``tid``?  O(1): one watermark compare."""
        if owner == tid:
            return True
        frontier = self._fiber_frontier[self._fiber[tid]]
        if owner >= len(frontier):
            return False
        return position <= frontier[owner]

    def precedes(self, a: Tuple[int, int], b: Tuple[int, int]) -> bool:
        """Happens-before (reflexive) between two event labels, O(1).

        ``a`` and ``b`` are ``(fiber, offset)`` labels of recorded
        events.  Same task: packed program-order positions compare
        directly.  Different tasks: ``b``'s fiber received no edges
        after it started, so its creation-time frontier snapshot is
        exactly what any event inside it knows.
        """
        fiber_a, offset_a = a
        fiber_b, offset_b = b
        task_a = self._fiber_task[fiber_a]
        position_a = (self._fiber_index[fiber_a] << _OFFSET_BITS) | offset_a
        if task_a == self._fiber_task[fiber_b]:
            position_b = ((self._fiber_index[fiber_b] << _OFFSET_BITS)
                          | offset_b)
            return position_a <= position_b
        frontier = self._fiber_frontier[fiber_b]
        if task_a >= len(frontier):
            return False
        return position_a <= frontier[task_a]


def check_stream(events: Iterable[Tuple[int, str, Any, str]],
                 ) -> List[Tuple[Any, str, str, int, str, str, int]]:
    """One-pass race check over a merged event stream.

    ``events`` yields ``(seq, kind, where, task)`` with kind ``"R"`` /
    ``"W"`` (data access at address ``where``) or ``"rel"`` / ``"acq"``
    / ``"upd"`` (sync op on variable ``where``), already ordered
    consistently with program order and release-before-acquire (harness
    addresses filtered out).  Returns race tuples ``(addr, first_task,
    first_kind, first_seq, second_task, second_kind, second_seq)`` --
    the same pairs, in the same order, as the vector-clock oracle.
    """
    om = OrderMaintenance()
    task = om.task            # hoisted bound methods: the hot loop
    step = om.step            # runs once per trace event
    fibers = om._fiber
    frontiers = om._fiber_frontier
    races: List[Tuple[Any, str, str, int, str, str, int]] = []
    #: addr -> (tid, packed position, seq, name) of the last write
    last_write: Dict[Any, Tuple[int, int, int, str]] = {}
    #: addr -> {tid: (packed position, seq, name)} reads since the write
    reads: Dict[Any, Dict[int, Tuple[int, int, str]]] = {}

    # The pass allocates millions of small, acyclic, long-lived objects
    # (fiber records, read maps, race tuples); with the generational
    # collector on, full collections re-scan that growing heap and turn
    # a linear pass superlinear.  Nothing here can form a cycle, so
    # pause collection for the duration of the sweep.
    was_enabled = gc.isenabled()
    gc.disable()
    try:
        _run_check(events, task, step, fibers, frontiers, om,
                   races, last_write, reads)
    finally:
        if was_enabled:
            gc.enable()
    return races


def _run_check(events, task, step, fibers, frontiers, om,
               races, last_write, reads) -> None:
    for seq, kind, where, name in events:
        tid = task(name)
        if kind == "R":
            position = step(tid)
            writer = last_write.get(where)
            if writer is not None and writer[0] != tid:
                frontier = frontiers[fibers[tid]]
                if (writer[0] >= len(frontier)
                        or writer[1] > frontier[writer[0]]):
                    races.append((where, writer[3], "W", writer[2],
                                  name, "R", seq))
            readers = reads.get(where)
            if readers is None:
                readers = reads[where] = {}
            readers[tid] = (position, seq, name)
        elif kind == "W":
            position = step(tid)
            frontier = frontiers[fibers[tid]]
            writer = last_write.get(where)
            if writer is not None and writer[0] != tid:
                if (writer[0] >= len(frontier)
                        or writer[1] > frontier[writer[0]]):
                    races.append((where, writer[3], "W", writer[2],
                                  name, "W", seq))
            readers = reads.get(where)
            if readers:
                for rtid, (rpos, rseq, rname) in readers.items():
                    if rtid != tid and (rtid >= len(frontier)
                                        or rpos > frontier[rtid]):
                        races.append((where, rname, "R", rseq,
                                      name, "W", seq))
            last_write[where] = (tid, position, seq, name)
            reads[where] = {}  # this write orders all earlier reads
        elif kind == "acq":
            om.acquire(tid, where)
            step(tid)
        elif kind == "rel":
            step(tid)
            om.release(tid, where)
        else:  # "upd"
            om.update(tid, where)
