"""Pre-flight analysis gate: verify every shipped app x scheme pair.

The gate is what CI runs (``python -m repro analyze --gate``) and what
``repro.lab.runner`` can consult before spending simulation budget on a
sweep: every placement a preset might execute must statically verify
clean.  Each registered application is built at a deliberately small
size -- large enough that the verification window (2 x max dependence
distance, and at least the process-counter fold factor) fits inside the
iteration space, small enough that the whole gate runs in seconds.

Pairs whose loop shape a scheme cannot instrument (raising at
``instrument`` time with a clear error) are reported as skipped, not
failed: refusing an unsupported shape is the compiler doing its job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..depend.graph import DependenceGraph
from ..lab.apps import APP_BUILDERS, build_app
from ..schemes.registry import make_scheme, scheme_names
from .findings import AnalysisReport
from .verifier import AnalysisError, verify

__all__ = ["GATE_PARAMS", "GateResult", "gate"]

#: per-app build parameters for gating: small, but with room for the
#: largest verification window any scheme needs (the process-oriented
#: fold factor defaults to 16 counters -> window 18)
GATE_PARAMS: Dict[str, Dict[str, int]] = {
    "fig2.1": {"n": 24},
    "fig2.1-delay": {"n": 24},
    "example2": {"n": 8, "m": 4},
    "example3": {"n": 24},
    "fold-chain": {"n": 24},
    "relaxation-loop": {"n": 6},
    "triple-nested": {"n": 3, "m": 3, "k": 3},
    "hydro": {"n": 24},
    "tridiag": {"n": 24},
    "state": {"n": 24},
    "adi": {"n": 4, "m": 6},
    "first-diff": {"n": 24},
    "prefix": {"n": 24, "stride": 4},
}


@dataclass
class GateResult:
    """Aggregate verdict over every app x scheme pair."""

    reports: Dict[str, AnalysisReport] = field(default_factory=dict)
    skipped: Dict[str, str] = field(default_factory=dict)
    #: key -> sanitizer verdict string, when the dynamic cross-check ran
    dynamic: Dict[str, str] = field(default_factory=dict)

    @property
    def failing(self) -> List[str]:
        static = [key for key, report in sorted(self.reports.items())
                  if not report.clean and not report.requires_serial]
        static += [key for key, verdict in sorted(self.dynamic.items())
                   if verdict != "clean" and key not in static]
        return static

    @property
    def ok(self) -> bool:
        return not self.failing

    def summary_lines(self) -> List[str]:
        lines = []
        for key, report in sorted(self.reports.items()):
            line = f"{key:40s} {report.summary()}"
            verdict = self.dynamic.get(key)
            if verdict is not None:
                line += f" [dynamic: {verdict}]"
            lines.append(line)
        for key, reason in sorted(self.skipped.items()):
            lines.append(f"{key:40s} SKIP ({reason})")
        return lines


def gate(apps: Optional[List[str]] = None,
         schemes: Optional[List[str]] = None, *,
         dynamic_oracle: Optional[str] = None) -> GateResult:
    """Statically verify every (app, scheme) placement we ship.

    With ``dynamic_oracle`` ("om" or "vc"), every statically-clean pair
    is additionally executed on a sanitized maximally-parallel schedule
    and race-checked through that oracle; the verdicts land in
    ``GateResult.dynamic`` and a non-clean one fails the gate.  Cheap
    enough to run everywhere only since the order-maintenance oracle.
    """
    result = GateResult()
    for app in apps or sorted(APP_BUILDERS):
        params = GATE_PARAMS.get(app, {})
        loop = build_app(app, params)
        graph = DependenceGraph(loop)
        for scheme_name in schemes or scheme_names():
            key = f"{app}/{scheme_name}"
            try:
                scheme = make_scheme(scheme_name)
                report = verify(loop, scheme, graph=graph, app=app)
            except (AnalysisError, NotImplementedError,
                    ValueError) as err:
                result.skipped[key] = str(err)
                continue
            result.reports[key] = report
            if dynamic_oracle is not None and report.clean:
                from .sanitizer import dynamic_check
                instrumented = scheme.instrument(loop, graph)
                verdict = dynamic_check(instrumented,
                                        oracle=dynamic_oracle)
                result.dynamic[key] = verdict.verdict
    return result
