"""The static race/deadlock verifier.

Given a loop and a scheme's compiled placement, unroll program order
plus sync arcs over a bounded iteration window (at least twice the
maximum dependence distance and at least the counter fold factor, so
every folding-induced pattern appears), run the happens-before fixpoint
(:mod:`repro.analyze.hbgraph`), and prove that every concrete
dependence instance of :class:`repro.depend.graph.DependenceGraph` is
enforced:

* a *flow*/*output* source (a write) is enforced when the next fence in
  the source's task -- which drains that task's posted writes into
  global visibility -- provably happens before the sink access;
* an *anti* source (a read) is enforced when the read itself provably
  happens before the conflicting write;
* instances inside one iteration are enforced by sequential execution
  (the engine forwards a task's own posted stores to its loads);
* under single-assignment renaming (the instance-based scheme) accesses
  that touch no common concrete address cannot conflict at all --
  covered by renaming.

An instance the fixpoint cannot order becomes a :class:`RaceFinding`
carrying the witness iteration pair; an unsatisfiable wait becomes a
:class:`DeadlockFinding` with the blocked-candidate cycle.  Unknown
dependence distances poison everything: the only sound placement is
serial execution, so the report says exactly that and refuses to
certify coverage (never "covered").
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ..depend.graph import DependenceGraph
from ..depend.model import Loop
from ..schemes.base import InstrumentedLoop, SyncScheme
from ..sim.ops import Fence
from .findings import AnalysisReport, DeadlockFinding, RaceFinding
from .hbgraph import HBResult, find_unsatisfiable, solve
from .placement import AnalysisError, extract

__all__ = ["AnalysisError", "verify", "verify_instrumented",
           "choose_window"]

#: never analyze fewer iterations than this (keeps tiny loops honest)
_MIN_WINDOW = 4

#: one race finding per dependence arc, not per instance
_MAX_DEADLOCK_FINDINGS = 10

_DEP_TYPE = {("W", "R"): "flow", ("R", "W"): "anti",
             ("W", "W"): "output"}


def choose_window(loop: Loop, graph: DependenceGraph,
                  fold_factor: int = 1) -> int:
    """Iterations to unroll: >= 2 x max distance and >= the fold factor."""
    try:
        arcs = graph.sync_arcs()
    except ValueError:
        arcs = []
    max_distance = max((arc.distance for arc in arcs), default=0)
    window = max(2 * max_distance, fold_factor) + 2
    return max(_MIN_WINDOW, min(window, loop.n_iterations))


def verify(loop: Loop, scheme: SyncScheme, *,
           graph: Optional[DependenceGraph] = None,
           window: Optional[int] = None,
           app: str = "?") -> AnalysisReport:
    """Instrument ``loop`` with ``scheme`` and verify the placement."""
    graph = graph or DependenceGraph(loop)
    scheme_name = scheme.name or type(scheme).__name__
    if graph.has_unknown_distance:
        # answer before instrumenting: schemes refuse unknown-distance
        # arcs outright, but the verdict is the verifier's to give
        return AnalysisReport(
            app=app, scheme=scheme_name, window=0, requires_serial=True,
            stats={"reason": "unknown dependence distance: the only "
                             "sound placement is serial execution"})
    instrumented = scheme.instrument(loop, graph)
    return verify_instrumented(instrumented, window=window, app=app,
                               scheme_name=scheme_name)


def verify_instrumented(instrumented: InstrumentedLoop, *,
                        window: Optional[int] = None,
                        app: str = "?",
                        scheme_name: str = "?") -> AnalysisReport:
    """Verify an already-instrumented loop (mutants enter here)."""
    loop = instrumented.loop
    graph = instrumented.graph
    if graph.has_unknown_distance:
        return AnalysisReport(
            app=app, scheme=scheme_name, window=0, requires_serial=True,
            stats={"reason": "unknown dependence distance: the only "
                             "sound placement is serial execution"})
    fold = getattr(getattr(instrumented, "counters", None),
                   "n_counters", 1) or 1
    if window is None:
        window = choose_window(loop, graph, fold)
    window = min(window, len(instrumented.iterations))
    pids = list(instrumented.iterations[:window])

    placement = extract(instrumented, pids)
    hb = solve(placement)

    report = AnalysisReport(app=app, scheme=scheme_name, window=window)
    _find_deadlocks(hb, report)
    _check_coverage(instrumented, hb, report)
    report.stats.update({
        "nodes": len(placement.nodes),
        "fixpoint_passes": hb.passes,
        "waits": len(placement.wait_nodes),
        "sync_writes": sum(len(v) for v in placement.write_nodes.values()),
        "sync_updates": sum(len(v)
                            for v in placement.update_nodes.values()),
        "fold_factor": fold,
    })
    return report


def _find_deadlocks(hb: HBResult, report: AnalysisReport) -> None:
    nodes = hb.placement.nodes
    for unsat in find_unsatisfiable(hb)[:_MAX_DEADLOCK_FINDINGS]:
        node = nodes[unsat.nid]
        report.deadlocks.append(DeadlockFinding(
            lpid=node.task,
            reason=node.describe(),
            cycle=[nodes[b].describe() for b in unsat.blockers],
            detail=unsat.reason))


def _check_coverage(instrumented: InstrumentedLoop, hb: HBResult,
                    report: AnalysisReport) -> None:
    placement = hb.placement
    nodes = placement.nodes
    in_window = set(placement.pids)

    # (tag, kind) -> access node ids, for address matching
    regions: Dict[Tuple[Any, str], List[int]] = {}
    for (tag, kind, _addr), nids in placement.access_index.items():
        regions.setdefault((tag, kind), []).extend(nids)
    # task -> ordered Fence node ids (posted-write drains)
    fences: Dict[int, List[int]] = {
        pid: [nid for nid in placement.tasks[pid]
              if isinstance(nodes[nid].op, Fence)]
        for pid in placement.pids}

    seen_arcs: Dict[Tuple[str, str, str, int], bool] = {}
    checked = 0
    for instance in instrumented.graph.dependence_instances():
        (src_sid, src_lpid), (dst_sid, dst_lpid), addr, src_kind, \
            dst_kind = instance
        if src_lpid == dst_lpid:
            continue  # enforced by sequential execution in-process
        if src_lpid not in in_window or dst_lpid not in in_window:
            continue
        dep_type = _DEP_TYPE[(src_kind, dst_kind)]
        arc_key = (src_sid, dst_sid, dep_type, dst_lpid - src_lpid)
        if seen_arcs.get(arc_key) is False:
            continue  # already reported with an earlier witness
        checked += 1
        problem = _instance_uncovered(
            instrumented, hb, fences, regions,
            (src_sid, src_lpid), (dst_sid, dst_lpid), addr,
            src_kind, dst_kind)
        seen_arcs[arc_key] = problem is None
        if problem is not None:
            report.races.append(RaceFinding(
                src_sid=src_sid, dst_sid=dst_sid, dep_type=dep_type,
                distance=dst_lpid - src_lpid, src_lpid=src_lpid,
                dst_lpid=dst_lpid, addr=list(addr), detail=problem))
    report.stats["instances_checked"] = checked


def _instance_uncovered(instrumented: InstrumentedLoop, hb: HBResult,
                        fences: Dict[int, List[int]],
                        regions: Dict[Tuple[Any, str], List[int]],
                        src_tag: Tuple[str, int],
                        dst_tag: Tuple[str, int], addr: Any,
                        src_kind: str, dst_kind: str) -> Optional[str]:
    """None when enforced, else a human-readable reason."""
    nodes = hb.placement.nodes
    src_nodes = regions.get((src_tag, src_kind), [])
    dst_nodes = regions.get((dst_tag, dst_kind), [])
    pairs = [(s, d) for s in src_nodes for d in dst_nodes
             if nodes[s].op.addr == nodes[d].op.addr]
    if not pairs:
        if instrumented.renames_storage:
            return None  # renamed apart: no common location, no conflict
        return (f"no matching access pair for {addr} between "
                f"{src_tag} and {dst_tag} (placement anomaly)")
    for s, d in pairs:
        if src_kind == "R":
            if not hb.happens_before(s, d):
                return (f"{nodes[s].describe()} not provably before "
                        f"{nodes[d].describe()}")
        else:
            # A write is only globally visible once the task's next
            # fence has drained it; order the fence before the sink.
            fence = _next_fence(fences, src_tag[1], s)
            if fence is None:
                return (f"{nodes[s].describe()} has no following fence: "
                        f"its posted write is never provably drained")
            if not hb.happens_before(fence, d):
                return (f"fence after {nodes[s].describe()} not "
                        f"provably before {nodes[d].describe()}")
    return None


def _next_fence(fences: Dict[int, List[int]], pid: int,
                nid: int) -> Optional[int]:
    for fence in fences.get(pid, ()):  # nids ascend in program order
        if fence > nid:
            return fence
    return None
