"""Redundant-synchronization elimination, verified arc by arc.

Midkiff/Padua-style transitive reduction, but with the verifier as the
judge instead of a syntactic rule: an arc is redundant iff the placement
built *without* it still proves every dependence instance covered.
Program order, the remaining arcs, and scheme structure the syntactic
reductions cannot see (counter folding's ownership chain, cross-pair
transitivity through a third statement) all count, because the verifier
reasons about the compiled placement rather than the arc set.

The eliminator applies to the two arc-driven schemes
(statement-oriented and process-oriented): each candidate arc is
dropped greedily, farthest distance first, the loop is re-instrumented
from the reduced arc set (``arcs=`` on the scheme) and re-verified;
only arcs whose removal keeps the report clean stay dropped.  Cost
deltas come from :mod:`repro.compiler.cost_model` evaluated on the
before/after arc sets, and :func:`validate_elimination` replays both
placements on the simulator, checking both validate against the
sequential semantics and produce identical final array state.

The building blocks -- :func:`placement_arcs`, :func:`estimate_cost`
and the re-instrument-and-verify admission gate :func:`arc_gate` -- are
shared with :mod:`repro.analyze.optimize`, which replaces this module's
single greedy pass with a cost-model-guided search over (scheme
configuration, fold factor, arc subset).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ..compiler.cost_model import (estimate_process_oriented,
                                   estimate_statement_oriented)
from ..depend.graph import DependenceGraph, SyncArc
from ..depend.model import Loop
from ..schemes.base import SyncScheme
from ..sim.machine import Machine, MachineConfig
from .findings import AnalysisReport, RedundantArc
from .verifier import AnalysisError, verify_instrumented

__all__ = ["ARC_SCHEMES", "EliminationResult", "placement_arcs",
           "estimate_cost", "arc_gate", "eliminate",
           "validate_elimination"]

#: schemes whose placement is driven by an explicit arc list
ARC_SCHEMES = ("statement-oriented", "process-oriented")


@dataclass
class EliminationResult:
    """Outcome of one elimination pass."""

    app: str
    scheme: str
    baseline: AnalysisReport
    kept: List[SyncArc] = field(default_factory=list)
    dropped: List[RedundantArc] = field(default_factory=list)
    #: analytic sync-op totals over the whole loop, before/after
    sync_ops_before: int = 0
    sync_ops_after: int = 0

    @property
    def arcs_before(self) -> int:
        return len(self.kept) + len(self.dropped)

    def summary(self) -> Dict[str, Any]:
        return {
            "sync_arcs": self.arcs_before,
            "sync_arcs_after": len(self.kept),
            "sync_ops_before": self.sync_ops_before,
            "sync_ops_after": self.sync_ops_after,
            "dropped": [f"{arc.src_sid}->{arc.dst_sid} "
                        f"(d={arc.distance})"
                        for arc in self.dropped],
        }


def placement_arcs(scheme: SyncScheme, instrumented: Any) -> List[SyncArc]:
    """The arc list an arc-driven scheme actually compiled in."""
    if scheme.name == "statement-oriented":
        return list(instrumented.arcs)
    return list(instrumented.plan.arcs)


def estimate_cost(scheme: SyncScheme, loop: Loop, graph: DependenceGraph,
                  arcs: List[SyncArc]):
    """Cost-model estimate of ``scheme`` compiled from ``arcs``."""
    if scheme.name == "statement-oriented":
        return estimate_statement_oriented(loop, graph, arcs=arcs)
    return estimate_process_oriented(
        loop, graph, n_counters=scheme.n_counters, arcs=arcs)


def _estimate_ops(scheme: SyncScheme, loop: Loop, graph: DependenceGraph,
                  arcs: List[SyncArc]) -> int:
    return estimate_cost(scheme, loop, graph, arcs).sync_ops


def arc_gate(loop: Loop, scheme: SyncScheme, graph: DependenceGraph,
             arcs: List[SyncArc], *, window: Optional[int],
             app: str) -> Optional[AnalysisReport]:
    """Re-instrument from ``arcs`` and statically verify the placement.

    The admission gate shared by the greedy eliminator and the
    cost-model-guided optimizer: returns the verifier's report, or
    ``None`` when the reduced plan is not even analyzable (which the
    callers treat as "keep the arc").
    """
    try:
        candidate = scheme.instrument(loop, graph, arcs=arcs)
        return verify_instrumented(candidate, window=window, app=app,
                                   scheme_name=scheme.name)
    except AnalysisError:
        return None


def eliminate(loop: Loop, scheme: SyncScheme, *,
              graph: Optional[DependenceGraph] = None,
              app: str = "?",
              window: Optional[int] = None) -> EliminationResult:
    """Drop every arc the verifier proves redundant."""
    if scheme.name not in ARC_SCHEMES:
        raise AnalysisError(
            f"scheme {scheme.name!r} is not arc-driven; elimination "
            f"applies to {ARC_SCHEMES}")
    graph = graph or DependenceGraph(loop)
    instrumented = scheme.instrument(loop, graph)
    baseline = verify_instrumented(instrumented, window=window, app=app,
                                   scheme_name=scheme.name)
    arcs = placement_arcs(scheme, instrumented)
    result = EliminationResult(app=app, scheme=scheme.name,
                               baseline=baseline, kept=list(arcs))
    result.sync_ops_before = _estimate_ops(scheme, loop, graph, arcs)
    if not baseline.clean:
        # Never "optimize" a placement that is already broken.
        result.sync_ops_after = result.sync_ops_before
        return result

    # Farthest-reaching arcs first: they are the ones transitivity
    # through shorter arcs (or the fold's ownership chain) can cover.
    for arc in sorted(arcs, key=lambda a: (-a.distance, a.src, a.dst)):
        trial = [kept for kept in result.kept if kept is not arc]
        report = arc_gate(loop, scheme, graph, trial, window=window,
                          app=app)
        if report is None:
            continue  # the reduced plan is not analyzable: keep the arc
        if report.clean:
            result.kept = trial
            result.dropped.append(RedundantArc(
                src_sid=arc.src, dst_sid=arc.dst, distance=arc.distance,
                detail="placement verifies clean without this arc"))
    result.sync_ops_after = _estimate_ops(scheme, loop, graph,
                                          result.kept)
    return result


def validate_elimination(loop: Loop, scheme: SyncScheme,
                         result: EliminationResult, *,
                         processors: int = 8,
                         schedule: str = "self") -> Dict[str, Any]:
    """Replay both placements; both must validate and agree exactly.

    Raises :class:`repro.sim.validate.ValidationError` (or lets a
    hazard escape) when either run diverges from the sequential
    semantics; raises :class:`AnalysisError` when the two final array
    states differ.
    """
    graph = DependenceGraph(loop)
    machine = Machine(MachineConfig(processors=processors,
                                    schedule=schedule,
                                    record_trace=True))
    before = scheme.instrument(loop, graph)
    run_before = machine.run(before)
    before.validate(run_before)

    after = scheme.instrument(loop, graph, arcs=list(result.kept))
    run_after = machine.run(after)
    after.validate(run_after)

    state_before = before.extract_final_state(run_before)
    state_after = after.extract_final_state(run_after)
    if state_before != state_after:
        raise AnalysisError(
            "eliminated placement produced different final state")
    return {
        "makespan_before": run_before.makespan,
        "makespan_after": run_after.makespan,
        "sync_ops_before": run_before.total_sync_ops,
        "sync_ops_after": run_after.total_sync_ops,
    }
