"""Dry-run extraction of a scheme's static sync placement.

The analyzer never re-implements a scheme's planner: it obtains the
*authoritative* placement by dry-running each iteration's process
generator and recording the ops it yields, exactly as the engine would
see them.  This makes the static model correct by construction -- any
wrapper (bounded waits, a mutation) is analyzed through the same code
path that executes.

Generators are driven engine-free: data reads are answered with a dummy
value (data values never steer control flow in any scheme), and sync
reads are answered by a *policy*.  The only scheme whose control flow
depends on a sync read is the improved process-oriented style, whose
``mark_PC`` skips its counter update when ownership has not arrived:

``optimistic``
    answers as if ownership has arrived, so every mark appears in the
    stream.  This is the stream the happens-before graph is built from;
    non-guaranteed marks are then classified as MAY events (see below).
``pessimistic``
    answers as if ownership never arrives, so conditional marks vanish
    and the final transfer emits its ownership wait.  Used only to
    decide which ops are unconditionally present at run time (mutation
    eligibility).

For the improved style the optimistic stream is post-processed:

* a counter write handing the slot to a later owner (``release_PC``) is
  a MUST event, and gets a *synthetic* ownership wait inserted before it
  (``transfer_PC`` blocks until the slot is owned -- in the optimistic
  stream that wait is hidden because a preceding mark already acquired
  ownership);
* a counter write by the slot's initial owner is a MUST event (ownership
  holds from loop entry, the mark's check cannot fail);
* any other same-owner counter write is a MAY event (the mark may skip),
  with an *ownership edge* from the release that hands it the slot: if
  the mark fires at run time, that release had already committed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Generator, List, Optional, Tuple

from ..core.process_counter import pc_at_least
from ..schemes.base import InstrumentedLoop
from ..sim.memory import MemoryConfig, SharedMemory
from ..sim.ops import (Annotate, MemRead, MemWrite, SyncRead, SyncUpdate,
                       SyncWrite, WaitUntil)

#: runaway guard for the per-task dry run
_MAX_OPS_PER_TASK = 200_000


class AnalysisError(Exception):
    """The placement violates an assumption the static model relies on."""


@dataclass
class Node:
    """One op instance in the unrolled placement."""

    nid: int
    task: int                    # lpid of the issuing iteration
    op: Any
    tag: Any                     # active (sid, lpid) statement tag
    #: False for MAY events (may not fire at run time: improved marks)
    guaranteed: bool = True
    #: inserted by the analyzer, not present in the run-time stream
    synthetic: bool = False
    #: extra happens-before predecessors (ownership edges), by node id
    extra_preds: List[int] = field(default_factory=list)

    def describe(self) -> str:
        op = self.op
        if isinstance(op, WaitUntil):
            what = op.reason or f"wait on var {op.var}"
            if self.synthetic:
                what += " [ownership, synthetic]"
        elif isinstance(op, SyncWrite):
            what = f"sync write var {op.var} <- {op.value!r}"
        elif isinstance(op, SyncUpdate):
            what = f"sync update var {op.var}"
        elif isinstance(op, MemRead):
            what = f"read {op.addr}"
        elif isinstance(op, MemWrite):
            what = f"write {op.addr}"
        else:
            what = type(op).__name__
        return f"p{self.task}: {what}"


@dataclass
class StaticPlacement:
    """The unrolled placement over a window of iterations."""

    pids: List[int]
    nodes: List[Node]
    #: pid -> node ids in program order
    tasks: Dict[int, List[int]]
    #: fabric variable -> initial committed value (from allocation)
    initial_values: Dict[int, Any]
    #: var -> SyncWrite node ids (commit-publishing events)
    write_nodes: Dict[int, List[int]]
    #: var -> SyncUpdate node ids (counting semantics)
    update_nodes: Dict[int, List[int]]
    #: all WaitUntil node ids (synthetic included)
    wait_nodes: List[int]
    #: (tag, kind, addr) -> node ids of matching data accesses
    access_index: Dict[Tuple[Any, str, Any], List[int]]
    #: vars with both SyncWrite and SyncUpdate writers (rejected)
    fold_factor: int = 1


def _default_sync_read(op: SyncRead, pid: int, initial: Any) -> Any:
    return initial


def _optimistic_sync_read(op: SyncRead, pid: int, initial: Any) -> Any:
    if isinstance(initial, tuple) and len(initial) == 2:
        # A process-counter <owner, step> pair: answer as if ownership
        # has arrived, so conditional marks appear in the stream.
        return (pid, 0)
    return initial


def _pessimistic_sync_read(op: SyncRead, pid: int, initial: Any) -> Any:
    if isinstance(initial, tuple) and len(initial) == 2:
        # Answer as if ownership never arrives: marks skip.
        return (-(10 ** 9), 0)
    return initial


def dry_run_task(gen: Generator, pid: int,
                 initial_values: Dict[int, Any],
                 sync_read: Callable[[SyncRead, int, Any], Any]
                 ) -> List[Tuple[Any, Any]]:
    """Drive one process generator engine-free; return [(op, tag)]."""
    ops: List[Tuple[Any, Any]] = []
    tag: Any = None
    send: Any = None
    while True:
        try:
            op = gen.send(send)
        except StopIteration:
            return ops
        send = None
        if isinstance(op, Annotate):
            if op.kind == "tag":
                tag = op.payload.get("tag")
        elif isinstance(op, MemRead):
            send = 0
        elif isinstance(op, SyncRead):
            send = sync_read(op, pid, initial_values.get(op.var))
        elif isinstance(op, SyncUpdate):
            send = 0
        ops.append((op, tag))
        if len(ops) > _MAX_OPS_PER_TASK:
            raise AnalysisError(
                f"dry run of iteration {pid} exceeded "
                f"{_MAX_OPS_PER_TASK} ops; non-terminating placement?")


def snapshot_fabric(instrumented: InstrumentedLoop) -> Dict[int, Any]:
    """Build the scheme's fabric and capture initial committed values.

    Allocation installs initial values engine-free.  The run-time
    prologue is deliberately *not* modeled: for every shipped scheme the
    prologue rewrites exactly the values allocation already installed
    (counter registers reset, keys zeroed, pre-loop instances full), so
    the snapshot equals the state a loop iteration can first observe.
    """
    fabric = instrumented.build_fabric(SharedMemory(MemoryConfig()))
    return {var: fabric.value(var)
            for var in range(fabric.storage_words_allocated())}


def _improved_pc_context(instrumented: InstrumentedLoop):
    """(counter file, pc var set) when the improved PC model applies.

    Duck-typed on purpose: mutation wrappers delegate attributes to the
    loop they wrap without being ``ProcessOrientedLoop`` instances.
    """
    counters = getattr(instrumented, "counters", None)
    if (getattr(instrumented, "style", None) == "improved"
            and counters is not None and counters._vars is not None):
        return counters, set(counters._vars)
    return None, set()


def extract(instrumented: InstrumentedLoop,
            pids: List[int]) -> StaticPlacement:
    """Unroll the placement over ``pids`` (optimistic streams)."""
    initial_values = snapshot_fabric(instrumented)
    counters, pc_vars = _improved_pc_context(instrumented)

    nodes: List[Node] = []
    tasks: Dict[int, List[int]] = {}
    #: (var, owner) -> node id of the counter write handing ``owner``
    #: the slot, for ownership edges
    release_by_owner: Dict[Tuple[int, int], int] = {}

    for pid in pids:
        stream = dry_run_task(instrumented.make_process(pid), pid,
                              initial_values, _optimistic_sync_read)
        task_ids: List[int] = []
        for op, tag in stream:
            if (counters is not None and isinstance(op, SyncWrite)
                    and op.var in pc_vars
                    and isinstance(op.value, tuple)):
                owner = op.value[0]
                if owner > pid:
                    # release_PC: hand the slot forward.  transfer_PC
                    # blocks until the slot is owned; the optimistic
                    # stream hides that wait behind a mark, so restore
                    # it as a synthetic guaranteed wait.
                    wait = Node(
                        nid=len(nodes), task=pid,
                        op=WaitUntil(op.var, pc_at_least((pid, 0)),
                                     reason=f"own slot before release "
                                            f"by p{pid}"),
                        tag=None, guaranteed=True, synthetic=True)
                    nodes.append(wait)
                    task_ids.append(wait.nid)
                    node = Node(nid=len(nodes), task=pid, op=op, tag=tag)
                    release_by_owner[(op.var, owner)] = node.nid
                elif owner == pid:
                    slot = counters.slot(pid)
                    if counters.initial_owner(slot) == pid:
                        # Ownership holds from loop entry: the mark's
                        # check cannot fail.
                        node = Node(nid=len(nodes), task=pid, op=op,
                                    tag=tag)
                    else:
                        # mark_PC may skip: MAY event, ordered after
                        # the release that hands this pid the slot.
                        node = Node(nid=len(nodes), task=pid, op=op,
                                    tag=tag, guaranteed=False)
                        handoff = release_by_owner.get((op.var, pid))
                        if handoff is not None:
                            node.extra_preds.append(handoff)
                else:
                    node = Node(nid=len(nodes), task=pid, op=op, tag=tag,
                                guaranteed=False)
            else:
                node = Node(nid=len(nodes), task=pid, op=op, tag=tag)
            nodes.append(node)
            task_ids.append(node.nid)
        tasks[pid] = task_ids

    write_nodes: Dict[int, List[int]] = {}
    update_nodes: Dict[int, List[int]] = {}
    wait_nodes: List[int] = []
    access_index: Dict[Tuple[Any, str, Any], List[int]] = {}
    for node in nodes:
        op = node.op
        if isinstance(op, SyncWrite):
            write_nodes.setdefault(op.var, []).append(node.nid)
        elif isinstance(op, SyncUpdate):
            update_nodes.setdefault(op.var, []).append(node.nid)
        elif isinstance(op, WaitUntil):
            wait_nodes.append(node.nid)
        elif isinstance(op, MemRead) and node.tag is not None:
            access_index.setdefault(
                (node.tag, "R", op.addr), []).append(node.nid)
        elif isinstance(op, MemWrite) and node.tag is not None:
            access_index.setdefault(
                (node.tag, "W", op.addr), []).append(node.nid)

    mixed = set(write_nodes) & set(update_nodes)
    if mixed:
        raise AnalysisError(
            f"variables {sorted(mixed)} are written by both SyncWrite "
            f"and SyncUpdate; the static model cannot type them")

    fold = getattr(getattr(instrumented, "counters", None),
                   "n_counters", 1)
    return StaticPlacement(
        pids=list(pids), nodes=nodes, tasks=tasks,
        initial_values=initial_values, write_nodes=write_nodes,
        update_nodes=update_nodes, wait_nodes=wait_nodes,
        access_index=access_index, fold_factor=fold or 1)


# ----------------------------------------------------------------------
# mutation eligibility: ops unconditionally present at run time
# ----------------------------------------------------------------------

def _signatures(stream: List[Tuple[Any, Any]]) -> Dict[Tuple, int]:
    """Count structural signatures of mutable ops in one task stream."""
    counts: Dict[Tuple, int] = {}

    def bump(sig: Tuple) -> None:
        counts[sig] = counts.get(sig, 0) + 1

    for op, _tag in stream:
        if isinstance(op, SyncWrite):
            bump(("W", op.var, op.value, op.coverable))
        elif isinstance(op, SyncUpdate):
            bump(("U", op.var))
        elif isinstance(op, WaitUntil):
            bump(("wait", op.var))
    return counts


def stable_signatures(instrumented: InstrumentedLoop,
                      pid: int,
                      initial_values: Optional[Dict[int, Any]] = None
                      ) -> Dict[Tuple, int]:
    """Signatures present identically under both sync-read policies.

    An op whose occurrence count differs between the optimistic and the
    pessimistic stream is run-time conditional (improved-style marks,
    the transfer's hidden ownership wait): a mutation targeting it could
    hit a different op at run time, so it is excluded.
    """
    if initial_values is None:
        initial_values = snapshot_fabric(instrumented)
    optimistic = _signatures(dry_run_task(
        instrumented.make_process(pid), pid, initial_values,
        _optimistic_sync_read))
    pessimistic = _signatures(dry_run_task(
        instrumented.make_process(pid), pid, initial_values,
        _pessimistic_sync_read))
    return {sig: count for sig, count in optimistic.items()
            if pessimistic.get(sig) == count}
