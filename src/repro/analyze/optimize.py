"""Cost-model-guided synchronization placement optimizer.

Liao-style compiler-directed synchronization optimization (PAPERS.md)
on top of the PR 4 analysis stack: instead of :mod:`.eliminate`'s
single greedy farthest-first pass over one fixed scheme configuration,
the optimizer searches over **(scheme configuration, fold factor X,
eliminated-arc subset)** per loop, scoring every candidate with the
analytic :mod:`repro.compiler.cost_model` estimates and admitting only
candidates the static verifier proves clean (via the shared
:func:`repro.analyze.eliminate.arc_gate`), with the now-cheap
order-maintenance sanitizer as the dynamic admission gate on each
surviving configuration.

Why cost-guided beats farthest-first: a statement-oriented Await on an
arc of distance ``d`` executes ``n - d`` times, so dropping a *short*
redundant arc saves more dynamic sync ops than dropping a long one --
the opposite of the farthest-first order.  And for the process-oriented
scheme the fold factor is itself a lever: a smaller X costs fewer
counters and initialization writes, and changes which arcs the fold's
ownership chain covers (the paper's fold-chain loop drops its d=5 arc
at X=4 but not at X=16).

The result is a schema-versioned :class:`OptimizationReport`: the
chosen placement, sync-op and predicted-cycle deltas against both the
unoptimized placement and the farthest-first baseline, and a
per-candidate audit trail of every trial the search scored.  Winners
are validated by :func:`validate_optimization`: byte-identical
simulator replay (both placements must validate against the sequential
semantics and produce identical final array state) plus a sweep-cell
style comparison of the two runs' headline metrics.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Mapping, Optional

from ..compiler.delay import doacross_delay
from ..depend.graph import DependenceGraph, SyncArc
from ..depend.model import Loop
from ..schemes.base import SyncScheme
from ..schemes.registry import make_scheme
from ..sim.machine import Machine, MachineConfig
from .eliminate import (ARC_SCHEMES, arc_gate, eliminate, estimate_cost,
                        placement_arcs)
from .findings import RedundantArc
from .verifier import AnalysisError

__all__ = ["OPTIMIZE_SCHEMA_VERSION", "CandidateTrial",
           "OptimizationReport", "optimize", "validate_optimization"]

#: bump when the OptimizationReport layout changes shape
OPTIMIZE_SCHEMA_VERSION = 1

#: analytic cycle charge per dynamic sync op / per initialization write
#: in the predicted-cycle objective (a register-fabric op is roughly a
#: couple of cycles; exact weights only break ties between placements
#: whose pipeline makespans already agree)
_SYNC_OP_CYCLES = 2.0
_INIT_WRITE_CYCLES = 2.0

#: fold factors the process-oriented search tries (the scheme's own
#: configured X is always included as well)
_FOLD_CANDIDATES = (2, 4, 8, 16)


def _arc_key(arc: SyncArc) -> str:
    return f"{arc.src}->{arc.dst} (d={arc.distance})"


@dataclass(frozen=True)
class CandidateTrial:
    """One scored candidate in the search's audit trail."""

    scheme: str
    fold: Optional[int]            # n_counters (process-oriented only)
    action: str                    # "baseline" | "drop-arc" | "dynamic"
    arc: Optional[str]             # the arc a drop-arc trial removed
    sync_ops: int                  # cost-model estimate after the action
    predicted_cycles: float        # full objective after the action
    verdict: str                   # "accepted" | "rejected:<reason>"
    detail: str = ""


@dataclass
class OptimizationReport:
    """The optimizer's verdict for one (app, scheme) placement."""

    app: str
    scheme: str                    # input scheme name
    objective: str
    #: chosen configuration
    chosen_scheme: str
    chosen_fold: Optional[int]
    kept: List[str] = field(default_factory=list)
    dropped: List[RedundantArc] = field(default_factory=list)
    #: cost-model totals: unoptimized placement vs chosen placement
    sync_ops_before: int = 0
    sync_ops_after: int = 0
    predicted_cycles_before: float = 0.0
    predicted_cycles_after: float = 0.0
    #: the farthest-first eliminator's result on the same input, for
    #: the "does the search beat the greedy pass" comparison
    baseline: Dict[str, Any] = field(default_factory=dict)
    #: every candidate the search scored, in trial order
    audit: List[CandidateTrial] = field(default_factory=list)
    #: replay validation payload (populated by validate_optimization)
    validation: Dict[str, Any] = field(default_factory=dict)

    @property
    def improved(self) -> bool:
        """Strictly better than the unoptimized placement."""
        return (self.sync_ops_after < self.sync_ops_before
                or self.predicted_cycles_after
                < self.predicted_cycles_before)

    @property
    def beats_baseline(self) -> bool:
        """Strictly better than farthest-first elimination."""
        base_ops = self.baseline.get("sync_ops_after")
        base_cycles = self.baseline.get("predicted_cycles_after")
        if base_ops is None:
            return False
        return (self.sync_ops_after < base_ops
                or (self.sync_ops_after == base_ops
                    and base_cycles is not None
                    and self.predicted_cycles_after < base_cycles))

    def summary(self) -> str:
        chosen = self.chosen_scheme
        if self.chosen_fold is not None:
            chosen += f"(X={self.chosen_fold})"
        return (f"{self.app} x {self.scheme}: chose {chosen}, "
                f"{len(self.dropped)} arc(s) dropped, sync ops "
                f"{self.sync_ops_before} -> {self.sync_ops_after}, "
                f"predicted cycles {self.predicted_cycles_before:.0f} "
                f"-> {self.predicted_cycles_after:.0f} "
                f"({len(self.audit)} candidates tried)")

    # -- JSON round-trip ------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema_version": OPTIMIZE_SCHEMA_VERSION,
            "app": self.app,
            "scheme": self.scheme,
            "objective": self.objective,
            "chosen_scheme": self.chosen_scheme,
            "chosen_fold": self.chosen_fold,
            "kept": list(self.kept),
            "dropped": [asdict(arc) for arc in self.dropped],
            "sync_ops_before": self.sync_ops_before,
            "sync_ops_after": self.sync_ops_after,
            "predicted_cycles_before": self.predicted_cycles_before,
            "predicted_cycles_after": self.predicted_cycles_after,
            "improved": self.improved,
            "beats_baseline": self.beats_baseline,
            "baseline": dict(self.baseline),
            "audit": [asdict(trial) for trial in self.audit],
            "validation": dict(self.validation),
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "OptimizationReport":
        version = payload.get("schema_version")
        if version != OPTIMIZE_SCHEMA_VERSION:
            raise ValueError(
                f"stale optimization report: schema_version={version!r}, "
                f"expected {OPTIMIZE_SCHEMA_VERSION}")
        return cls(
            app=payload["app"],
            scheme=payload["scheme"],
            objective=payload["objective"],
            chosen_scheme=payload["chosen_scheme"],
            chosen_fold=payload["chosen_fold"],
            kept=list(payload.get("kept", [])),
            dropped=[RedundantArc(**arc)
                     for arc in payload.get("dropped", [])],
            sync_ops_before=payload["sync_ops_before"],
            sync_ops_after=payload["sync_ops_after"],
            predicted_cycles_before=payload["predicted_cycles_before"],
            predicted_cycles_after=payload["predicted_cycles_after"],
            baseline=dict(payload.get("baseline", {})),
            audit=[CandidateTrial(**trial)
                   for trial in payload.get("audit", [])],
            validation=dict(payload.get("validation", {})),
        )

    def write_json(self, path: pathlib.Path) -> None:
        path.write_text(json.dumps(self.to_json(), sort_keys=True,
                                   indent=1, ensure_ascii=True) + "\n")

    @classmethod
    def read_json(cls, path: pathlib.Path) -> "OptimizationReport":
        return cls.from_json(json.loads(path.read_text()))


def _objective(loop: Loop, graph: DependenceGraph, scheme: SyncScheme,
               arcs: List[SyncArc], processors: int) -> tuple:
    """(sync_ops, predicted_cycles) -- lexicographic, lower is better.

    Predicted cycles are the Cytron doacross-pipeline makespan over the
    kept arcs plus analytic charges for the dynamic sync ops and the
    configuration's initialization writes, so a fold factor that keeps
    sync ops equal but halves the counters still wins its tie.
    """
    estimate = estimate_cost(scheme, loop, graph, arcs)
    makespan = doacross_delay(loop, graph, arcs=arcs).predicted_makespan(
        loop.n_iterations, processors)
    cycles = (makespan + _SYNC_OP_CYCLES * estimate.sync_ops
              + _INIT_WRITE_CYCLES * estimate.init_writes)
    return (estimate.sync_ops, cycles)


def _configurations(scheme: SyncScheme) -> List[SyncScheme]:
    """The scheme configurations the search explores."""
    if scheme.name != "process-oriented":
        return [scheme]
    folds: List[int] = []
    for x in (scheme.n_counters,) + _FOLD_CANDIDATES:
        if x >= 2 and x not in folds:
            folds.append(x)
    return [scheme if x == scheme.n_counters
            else make_scheme("process-oriented", n_counters=x)
            for x in sorted(folds)]


def _search_config(loop: Loop, graph: DependenceGraph,
                   scheme: SyncScheme, *, app: str,
                   window: Optional[int], processors: int,
                   audit: List[CandidateTrial]) -> Optional[dict]:
    """Best-improvement greedy arc elimination for one configuration.

    Every round scores each single-arc removal with the cost model and
    tries them best-predicted-savings first; the first removal the
    static verifier admits is taken and the round restarts.  Returns
    None when the configuration's own full placement is not clean.
    """
    fold = (scheme.n_counters if scheme.name == "process-oriented"
            else None)
    try:
        instrumented = scheme.instrument(loop, graph)
    except AnalysisError as err:
        audit.append(CandidateTrial(
            scheme=scheme.name, fold=fold, action="baseline", arc=None,
            sync_ops=0, predicted_cycles=0.0,
            verdict="rejected:unanalyzable", detail=str(err)))
        return None
    arcs = placement_arcs(scheme, instrumented)
    report = arc_gate(loop, scheme, graph, arcs, window=window, app=app)
    score = _objective(loop, graph, scheme, arcs, processors)
    if report is None or not report.clean:
        audit.append(CandidateTrial(
            scheme=scheme.name, fold=fold, action="baseline", arc=None,
            sync_ops=score[0], predicted_cycles=score[1],
            verdict="rejected:not-clean",
            detail="" if report is None else report.summary()))
        return None
    audit.append(CandidateTrial(
        scheme=scheme.name, fold=fold, action="baseline", arc=None,
        sync_ops=score[0], predicted_cycles=score[1],
        verdict="accepted"))

    kept = list(arcs)
    dropped: List[RedundantArc] = []
    improved = True
    while improved and kept:
        improved = False
        # Score every single-arc removal; try the biggest predicted
        # saving first (for Awaits that is the *shortest* arc: it fires
        # n - d times).
        scored = sorted(
            ((_objective(loop, graph, scheme,
                         [a for a in kept if a is not arc], processors),
              arc) for arc in kept),
            key=lambda pair: (pair[0], pair[1].src, pair[1].dst))
        for trial_score, arc in scored:
            if trial_score >= score:
                break  # no removal predicts an improvement any more
            trial = [a for a in kept if a is not arc]
            trial_report = arc_gate(loop, scheme, graph, trial,
                                    window=window, app=app)
            if trial_report is None:
                audit.append(CandidateTrial(
                    scheme=scheme.name, fold=fold, action="drop-arc",
                    arc=_arc_key(arc), sync_ops=trial_score[0],
                    predicted_cycles=trial_score[1],
                    verdict="rejected:unanalyzable"))
                continue
            if not trial_report.clean:
                audit.append(CandidateTrial(
                    scheme=scheme.name, fold=fold, action="drop-arc",
                    arc=_arc_key(arc), sync_ops=trial_score[0],
                    predicted_cycles=trial_score[1],
                    verdict="rejected:not-clean",
                    detail=trial_report.summary()))
                continue
            audit.append(CandidateTrial(
                scheme=scheme.name, fold=fold, action="drop-arc",
                arc=_arc_key(arc), sync_ops=trial_score[0],
                predicted_cycles=trial_score[1], verdict="accepted"))
            kept = trial
            score = trial_score
            dropped.append(RedundantArc(
                src_sid=arc.src, dst_sid=arc.dst,
                distance=arc.distance,
                detail="cost-guided: placement verifies clean without "
                       "this arc"))
            improved = True
            break
    return {"scheme": scheme, "fold": fold, "kept": kept,
            "dropped": dropped, "score": score}


def optimize(loop: Loop, scheme: SyncScheme, *,
             graph: Optional[DependenceGraph] = None,
             app: str = "?",
             window: Optional[int] = None,
             processors: int = 8,
             dynamic_gate: bool = True,
             oracle: str = "om") -> OptimizationReport:
    """Search (configuration, fold, arc subset) for the best placement.

    The unoptimized input placement is always a member of the search
    space, so the chosen placement is never worse than it under the
    objective; ``baseline`` records what farthest-first elimination
    would have done instead.  With ``dynamic_gate`` the winning
    configuration must also survive a sanitized maximally-parallel run
    through the ``oracle`` race checker before it is admitted.
    """
    if scheme.name not in ARC_SCHEMES:
        raise AnalysisError(
            f"scheme {scheme.name!r} is not arc-driven; optimization "
            f"applies to {ARC_SCHEMES}")
    graph = graph or DependenceGraph(loop)
    audit: List[CandidateTrial] = []

    candidates = []
    for config in _configurations(scheme):
        found = _search_config(loop, graph, config, app=app,
                               window=window, processors=processors,
                               audit=audit)
        if found is not None:
            candidates.append(found)
    if not candidates:
        raise AnalysisError(
            f"{app} x {scheme.name}: no configuration verifies clean; "
            f"nothing to optimize")
    candidates.sort(key=lambda c: c["score"])

    if dynamic_gate:
        from .sanitizer import dynamic_check
        admitted = None
        for candidate in candidates:
            config = candidate["scheme"]
            instrumented = config.instrument(loop, graph,
                                             arcs=candidate["kept"])
            verdict = dynamic_check(instrumented, oracle=oracle)
            trial = CandidateTrial(
                scheme=config.name, fold=candidate["fold"],
                action="dynamic", arc=None,
                sync_ops=candidate["score"][0],
                predicted_cycles=candidate["score"][1],
                verdict=("accepted" if not verdict.killed
                         else f"rejected:{verdict.verdict}"),
                detail=verdict.detail[:200])
            audit.append(trial)
            if not verdict.killed:
                admitted = candidate
                break
        if admitted is None:
            raise AnalysisError(
                f"{app} x {scheme.name}: every statically-clean "
                f"candidate was killed by the dynamic oracle")
        winner = admitted
    else:
        winner = candidates[0]

    # Deltas against the *unoptimized* input placement.
    instrumented = scheme.instrument(loop, graph)
    input_arcs = placement_arcs(scheme, instrumented)
    ops_before, cycles_before = _objective(loop, graph, scheme,
                                           input_arcs, processors)

    # Farthest-first baseline on the same input, summarized with its
    # own objective value so beats_baseline is apples to apples.
    greedy = eliminate(loop, scheme, graph=graph, app=app, window=window)
    base_ops, base_cycles = _objective(loop, graph, scheme, greedy.kept,
                                       processors)
    baseline = dict(greedy.summary())
    baseline["sync_ops_after"] = base_ops
    baseline["predicted_cycles_after"] = base_cycles

    return OptimizationReport(
        app=app, scheme=scheme.name, objective="(sync_ops, cycles)",
        chosen_scheme=winner["scheme"].name, chosen_fold=winner["fold"],
        kept=[_arc_key(arc) for arc in winner["kept"]],
        dropped=winner["dropped"],
        sync_ops_before=ops_before,
        sync_ops_after=winner["score"][0],
        predicted_cycles_before=cycles_before,
        predicted_cycles_after=winner["score"][1],
        baseline=baseline, audit=audit)


def _rebuild(loop: Loop, graph: DependenceGraph, scheme: SyncScheme,
             report: OptimizationReport):
    """Re-instrument the report's chosen placement."""
    if report.chosen_scheme == scheme.name and (
            report.chosen_fold is None
            or report.chosen_fold == getattr(scheme, "n_counters", None)):
        chosen = scheme
    else:
        kwargs = ({"n_counters": report.chosen_fold}
                  if report.chosen_fold is not None else {})
        chosen = make_scheme(report.chosen_scheme, **kwargs)
    instrumented = chosen.instrument(loop, graph)
    arcs = [arc for arc in placement_arcs(chosen, instrumented)
            if _arc_key(arc) in set(report.kept)]
    return chosen.instrument(loop, graph, arcs=arcs)


def validate_optimization(loop: Loop, scheme: SyncScheme,
                          report: OptimizationReport, *,
                          processors: int = 8,
                          schedule: str = "self") -> Dict[str, Any]:
    """Replay both placements; byte-identical state or it does not ship.

    Runs the unoptimized input placement and the report's chosen
    placement on identical machines.  Both must validate against the
    sequential semantics and produce identical final array state
    (:class:`AnalysisError` otherwise).  Returns a sweep-cell style
    comparison of the two runs' headline metrics and stores it on
    ``report.validation``.
    """
    graph = DependenceGraph(loop)
    machine = Machine(MachineConfig(processors=processors,
                                    schedule=schedule,
                                    record_trace=True))
    before = scheme.instrument(loop, graph)
    run_before = machine.run(before)
    before.validate(run_before)

    after = _rebuild(loop, graph, scheme, report)
    run_after = machine.run(after)
    after.validate(run_after)

    state_before = before.extract_final_state(run_before)
    state_after = after.extract_final_state(run_after)
    if state_before != state_after:
        raise AnalysisError(
            "optimized placement produced different final state")
    payload = {
        "final_state_identical": True,
        "makespan_before": run_before.makespan,
        "makespan_after": run_after.makespan,
        "sync_ops_before": run_before.total_sync_ops,
        "sync_ops_after": run_after.total_sync_ops,
        "cell_before": run_before.summary(),
        "cell_after": run_after.summary(),
    }
    report.validation = payload
    return payload
