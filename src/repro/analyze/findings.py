"""Typed, schema-versioned findings for the static analyzer.

Mirrors the :mod:`repro.lab.record` convention: reports are JSON-native
dicts gated by a ``schema_version`` field, with typed accessors on this
side so tests and tools never string-index payloads.  A finding is pure
data -- everything needed to reproduce it (app, scheme, witness
iterations, the violated dependence) is in the finding itself.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Mapping, Optional

#: bump when the report layout below changes shape
ANALYZE_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class RaceFinding:
    """One dependence arc the placement provably fails to enforce.

    ``src_lpid``/``dst_lpid`` are a concrete witness pair inside the
    analyzed window: iteration ``src_lpid`` produces (or consumes, for
    anti deps) the value at ``addr`` and nothing in the placement orders
    it before iteration ``dst_lpid``'s conflicting access.
    """

    src_sid: str
    dst_sid: str
    dep_type: str
    distance: int
    src_lpid: int
    dst_lpid: int
    addr: Optional[List[Any]] = None
    detail: str = ""

    def describe(self) -> str:
        return (f"race: {self.dep_type} {self.src_sid}->{self.dst_sid} "
                f"(d={self.distance}) not enforced between iterations "
                f"{self.src_lpid} and {self.dst_lpid}"
                + (f" at {tuple(self.addr)}" if self.addr else ""))


@dataclass(frozen=True)
class DeadlockFinding:
    """A wait in the unrolled graph that can never be satisfied.

    The classic instance is the paper's folding constraint: with fold
    factor X, a wait at distance ``d`` with ``d % X == 0`` spins on the
    waiter's *own* counter slot -- a self-cycle.  ``cycle`` lists the
    blocked nodes (task, op description) forming the witness.
    """

    lpid: int
    reason: str
    cycle: List[str] = field(default_factory=list)
    detail: str = ""

    def describe(self) -> str:
        return f"deadlock: p{self.lpid} blocked on {self.reason}"


@dataclass(frozen=True)
class RedundantArc:
    """A sync arc whose removal leaves the placement provably clean."""

    src_sid: str
    dst_sid: str
    distance: int
    detail: str = ""

    def describe(self) -> str:
        return (f"redundant: {self.src_sid}->{self.dst_sid} "
                f"(d={self.distance}) covered by remaining placement")


@dataclass
class AnalysisReport:
    """The static verdict for one (app, scheme) placement.

    ``requires_serial`` is set when the dependence analysis could not
    bound a distance (``distance=None``): the only sound placement is a
    serial one, so the verifier refuses to certify anything and no
    race/deadlock findings are emitted (they would be vacuous).
    """

    app: str
    scheme: str
    window: int
    races: List[RaceFinding] = field(default_factory=list)
    deadlocks: List[DeadlockFinding] = field(default_factory=list)
    redundant: List[RedundantArc] = field(default_factory=list)
    requires_serial: bool = False
    stats: Dict[str, Any] = field(default_factory=dict)

    @property
    def clean(self) -> bool:
        """Provably free of races and deadlocks (and certifiable)."""
        return (not self.races and not self.deadlocks
                and not self.requires_serial)

    def summary(self) -> str:
        if self.requires_serial:
            return (f"{self.app} x {self.scheme}: unknown dependence "
                    f"distance -- requires serial execution")
        verdict = "clean" if self.clean else "UNSAFE"
        return (f"{self.app} x {self.scheme}: {verdict} "
                f"({len(self.races)} races, {len(self.deadlocks)} "
                f"deadlocks, {len(self.redundant)} redundant arcs, "
                f"window={self.window})")

    # -- JSON round-trip ------------------------------------------------

    def to_json(self) -> Dict[str, Any]:
        return {
            "schema_version": ANALYZE_SCHEMA_VERSION,
            "app": self.app,
            "scheme": self.scheme,
            "window": self.window,
            "requires_serial": self.requires_serial,
            "clean": self.clean,
            "races": [asdict(f) for f in self.races],
            "deadlocks": [asdict(f) for f in self.deadlocks],
            "redundant": [asdict(f) for f in self.redundant],
            "stats": dict(self.stats),
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, Any]) -> "AnalysisReport":
        version = payload.get("schema_version")
        if version != ANALYZE_SCHEMA_VERSION:
            raise ValueError(
                f"stale analysis report: schema_version={version!r}, "
                f"expected {ANALYZE_SCHEMA_VERSION}")
        return cls(
            app=payload["app"],
            scheme=payload["scheme"],
            window=payload["window"],
            requires_serial=payload.get("requires_serial", False),
            races=[RaceFinding(**f) for f in payload.get("races", [])],
            deadlocks=[DeadlockFinding(**f)
                       for f in payload.get("deadlocks", [])],
            redundant=[RedundantArc(**f)
                       for f in payload.get("redundant", [])],
            stats=dict(payload.get("stats", {})),
        )

    def write_json(self, path: pathlib.Path) -> None:
        path.write_text(json.dumps(self.to_json(), sort_keys=True,
                                   indent=1, ensure_ascii=True) + "\n")

    @classmethod
    def read_json(cls, path: pathlib.Path) -> "AnalysisReport":
        return cls.from_json(json.loads(path.read_text()))
