"""Static race/deadlock verification and redundant-sync elimination.

The paper's claim is that each scheme's sync-op placement enforces every
cross-iteration dependence.  This package proves it *statically*: the
placement is dry-run into a per-iteration op stream, unrolled over a
bounded iteration window into a happens-before graph, and every arc of
:class:`repro.depend.graph.DependenceGraph` is checked for coverage.
Uncovered arcs become :class:`RaceFinding`\\ s with concrete witness
iterations, unsatisfiable waits become :class:`DeadlockFinding`\\ s, and
a Midkiff/Padua-style transitive reduction drops sync arcs already
implied by the rest (:mod:`repro.analyze.eliminate`).  A dynamic
sanitizer (:mod:`repro.analyze.sanitizer`) cross-checks the static
verdict on real engine traces through either of two oracles: the
DePa-style order-maintenance checker (:mod:`repro.analyze.om`, O(1)
per race query, the one that scales to counters-mode traces) or the
original vector clocks kept for differential testing.  On top of both,
:mod:`repro.analyze.optimize` searches (scheme configuration, fold
factor, arc subset) with cost-model scoring, the verifier as admission
gate and the sanitizer as dynamic gate, emitting schema-versioned
:class:`OptimizationReport`\\ s.
"""

from .findings import (ANALYZE_SCHEMA_VERSION, AnalysisReport,
                       DeadlockFinding, RaceFinding, RedundantArc)
from .verifier import AnalysisError, verify, verify_instrumented
from .eliminate import (EliminationResult, arc_gate, eliminate,
                        estimate_cost, placement_arcs,
                        validate_elimination)
from .mutate import Mutant, apply_mutant, enumerate_mutants, kill_mutant
from .om import OrderMaintenance
from .sanitizer import (DynamicVerdict, check_trace, dynamic_check,
                        event_stream)
from .optimize import (OPTIMIZE_SCHEMA_VERSION, OptimizationReport,
                       optimize, validate_optimization)
from .gate import GateResult, gate

__all__ = [
    "ANALYZE_SCHEMA_VERSION", "AnalysisReport", "RaceFinding",
    "DeadlockFinding", "RedundantArc", "AnalysisError", "verify",
    "verify_instrumented", "EliminationResult", "arc_gate", "eliminate",
    "estimate_cost", "placement_arcs", "validate_elimination", "Mutant",
    "apply_mutant", "enumerate_mutants", "kill_mutant",
    "OrderMaintenance", "DynamicVerdict", "check_trace", "dynamic_check",
    "event_stream", "OPTIMIZE_SCHEMA_VERSION", "OptimizationReport",
    "optimize", "validate_optimization", "GateResult", "gate",
]
