"""Static race/deadlock verification and redundant-sync elimination.

The paper's claim is that each scheme's sync-op placement enforces every
cross-iteration dependence.  This package proves it *statically*: the
placement is dry-run into a per-iteration op stream, unrolled over a
bounded iteration window into a happens-before graph, and every arc of
:class:`repro.depend.graph.DependenceGraph` is checked for coverage.
Uncovered arcs become :class:`RaceFinding`\\ s with concrete witness
iterations, unsatisfiable waits become :class:`DeadlockFinding`\\ s, and
a Midkiff/Padua-style transitive reduction drops sync arcs already
implied by the rest (:mod:`repro.analyze.eliminate`).  A dynamic
vector-clock sanitizer (:mod:`repro.analyze.sanitizer`) cross-checks the
static verdict on real engine traces.
"""

from .findings import (ANALYZE_SCHEMA_VERSION, AnalysisReport,
                       DeadlockFinding, RaceFinding, RedundantArc)
from .verifier import AnalysisError, verify, verify_instrumented
from .eliminate import EliminationResult, eliminate, validate_elimination
from .mutate import Mutant, apply_mutant, enumerate_mutants, kill_mutant
from .sanitizer import DynamicVerdict, check_trace, dynamic_check
from .gate import GateResult, gate

__all__ = [
    "ANALYZE_SCHEMA_VERSION", "AnalysisReport", "RaceFinding",
    "DeadlockFinding", "RedundantArc", "AnalysisError", "verify",
    "verify_instrumented", "EliminationResult", "eliminate",
    "validate_elimination", "Mutant", "apply_mutant",
    "enumerate_mutants", "kill_mutant", "DynamicVerdict", "check_trace",
    "dynamic_check", "GateResult", "gate",
]
