"""Happens-before fixpoint over an unrolled placement.

For every node ``n`` the analysis computes ``past[n]``: the set of nodes
provably complete whenever ``n`` fires, as a bitmask over node ids.  The
fixpoint is monotone -- past sets only grow, wait candidates are only
ever pruned -- so iteration to stability is sound and terminates.

Wait semantics (the heart of the verifier): a ``WaitUntil`` on variable
``v`` may be satisfied by *any* write to ``v`` whose concrete value
makes the predicate true.  What the waiter learns is therefore the
**intersection** over all such candidate satisfiers ``S`` of
``past[S] + {S}``.  A candidate with the wait already in its own past
cannot be the first satisfier (it fires strictly after the wait
completes) and is pruned -- this is what resolves Advance chains and
fold handoffs, where later generations are formally candidates but
provably ordered after the wait.

Variables driven by ``SyncUpdate`` (data-oriented keys) use counting
semantics instead: the predicate's threshold ``t`` is recovered by
evaluating it against the value sequence the updates produce, and an
event is guaranteed iff too few not-provably-after updates lack it in
their past for the wait to complete without it.

Deadlock detection asks the complementary question: is there any
*reliable, guaranteed* satisfier not provably after the wait?  A
satisfier is reliable iff every predicate-falsifying write to the
variable either precedes it or provably follows the wait (a consuming
read issued by the waiter itself stays reliable; a naive fold that
resets a counter another iteration still waits on does not).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..sim.ops import SyncWrite, WaitUntil
from .placement import AnalysisError, Node, StaticPlacement

#: fixpoint pass guard (placements converge in O(window) passes)
_MAX_PASSES = 400


def _bits_in_at_least(masks: List[int], m: int) -> int:
    """Bits set in at least ``m`` of ``masks``.

    Per-bit occurrence counts are kept as binary *planes* (plane ``i``
    holds bit ``i`` of every position's count, built by ripple-carry
    addition of each mask), then compared against ``m`` with a bitwise
    MSB-first comparator -- all O(len(masks) * log len(masks)) big-int
    operations, never a per-bit Python loop.
    """
    if m <= 0:
        raise ValueError("m must be positive")
    if m > len(masks) or not masks:
        return 0
    planes: List[int] = []
    width = 0
    for mask in masks:
        width = max(width, mask.bit_length())
        carry = mask
        for i in range(len(planes)):
            if not carry:
                break
            planes[i], carry = planes[i] ^ carry, planes[i] & carry
        if carry:
            planes.append(carry)
    all_bits = (1 << width) - 1
    k = max(len(planes), m.bit_length())
    greater = 0
    equal = all_bits  # positions whose count prefix equals m's so far
    for i in range(k - 1, -1, -1):
        plane = planes[i] if i < len(planes) else 0
        if (m >> i) & 1:
            equal &= plane      # count bit 0 where m bit 1: now less
        else:
            greater |= equal & plane
            equal &= ~plane
    return greater | equal


@dataclass
class CountingVar:
    """Static model of a SyncUpdate-driven counter variable."""

    var: int
    updates: List[int]            # node ids, any order
    values: List[Any]             # value after k updates, k = 0..n


@dataclass
class WaitInfo:
    """Resolved semantics of one wait node."""

    nid: int
    var: int
    #: write-var candidates: node ids whose value satisfies the
    #: predicate (None entry = the variable's initial value)
    candidates: List[Optional[int]] = field(default_factory=list)
    #: predicate-falsifying write node ids (reliability analysis)
    falsifiers: List[int] = field(default_factory=list)
    #: counting threshold (None for write-var waits)
    threshold: Optional[int] = None
    #: counting vars: update node ids
    updates: List[int] = field(default_factory=list)
    #: predicate can never become true (no satisfying value exists)
    never_satisfiable: bool = False


@dataclass
class HBResult:
    """Fixpoint output: past sets plus resolved wait semantics."""

    placement: StaticPlacement
    past: List[int]
    waits: Dict[int, WaitInfo]
    passes: int
    #: var -> [(wait nid, threshold)] for counting waits
    co_waits: Dict[int, List[Tuple[int, int]]] = field(
        default_factory=dict)

    def happens_before(self, a: int, b: int) -> bool:
        """Is node ``a`` provably complete whenever node ``b`` fires?"""
        return bool((self.past[b] >> a) & 1)


def _counting_model(placement: StaticPlacement, var: int) -> CountingVar:
    updates = placement.update_nodes[var]
    value = placement.initial_values.get(var, 0)
    values = [value]
    for nid in updates:
        op = placement.nodes[nid].op
        value = op.fn(value)
        values.append(value)
    return CountingVar(var=var, updates=list(updates), values=values)


def _resolve_wait(placement: StaticPlacement, node: Node,
                  counting: Dict[int, CountingVar]) -> WaitInfo:
    op: WaitUntil = node.op
    info = WaitInfo(nid=node.nid, var=op.var)
    if op.var in counting:
        model = counting[op.var]
        satisfied = [bool(op.predicate(value)) for value in model.values]
        if not any(satisfied):
            info.never_satisfiable = True
            return info
        t = satisfied.index(True)
        if not all(satisfied[t:]):
            raise AnalysisError(
                f"non-monotone predicate on counting var {op.var} "
                f"({placement.nodes[node.nid].describe()}); the static "
                f"counting rule requires a single False->True threshold")
        info.threshold = t
        info.updates = list(model.updates)
        return info
    initial = placement.initial_values.get(op.var)
    if op.predicate(initial):
        info.candidates.append(None)
    for nid in placement.write_nodes.get(op.var, ()):  # writes to var
        write: SyncWrite = placement.nodes[nid].op
        if op.predicate(write.value):
            info.candidates.append(nid)
        else:
            info.falsifiers.append(nid)
    if not info.candidates:
        info.never_satisfiable = True
    return info


def solve(placement: StaticPlacement) -> HBResult:
    """Run the happens-before fixpoint to stability."""
    nodes = placement.nodes
    counting = {var: _counting_model(placement, var)
                for var in placement.update_nodes}
    waits: Dict[int, WaitInfo] = {}
    for nid in placement.wait_nodes:
        waits[nid] = _resolve_wait(placement, nodes[nid], counting)

    # var -> [(wait nid, threshold)] for counting waits: an update that
    # provably follows a wait of threshold >= t fires only once the
    # count already reached t, so it can never be among the first t
    # updates a threshold-t waiter is waiting for.
    co_waits: Dict[int, List[Tuple[int, int]]] = {}
    for nid, info in waits.items():
        if info.threshold is not None:
            co_waits.setdefault(info.var, []).append((nid,
                                                      info.threshold))

    past: List[int] = [0] * len(nodes)
    for passes in range(1, _MAX_PASSES + 1):
        changed = False
        for pid in placement.pids:
            acc = 0  # union of prior nodes in this task + their pasts
            for nid in placement.tasks[pid]:
                node = nodes[nid]
                new = acc
                for pred in node.extra_preds:
                    new |= past[pred] | (1 << pred)
                info = waits.get(nid)
                if info is not None:
                    new |= _wait_guarantee(info, past, nid, co_waits)
                if new != past[nid]:
                    past[nid] = new
                    changed = True
                acc |= past[nid] | (1 << nid)
        if not changed:
            return HBResult(placement=placement, past=past, waits=waits,
                            passes=passes, co_waits=co_waits)
    raise AnalysisError(
        f"happens-before fixpoint did not converge in {_MAX_PASSES} "
        f"passes ({len(nodes)} nodes)")


def _early_updates(info: WaitInfo, past: List[int], wait: int,
                   co_waits: Dict[int, List[Tuple[int, int]]]
                   ) -> List[int]:
    """Updates that could be among the first ``threshold`` to fire.

    Excluded: updates provably after this wait, and updates provably
    after *any* wait on the variable whose threshold is >= ours (they
    fire only once the count has already reached our threshold -- this
    is how the reference-based key protocol orders its increments).
    """
    t = info.threshold or 0
    wait_bit = 1 << wait
    gates = [w for w, t2 in co_waits.get(info.var, ()) if t2 >= t]
    early = []
    for u in info.updates:
        if past[u] & wait_bit:
            continue
        if any((past[u] >> w) & 1 for w in gates):
            continue
        early.append(u)
    return early


def _wait_guarantee(info: WaitInfo, past: List[int], wait: int,
                    co_waits: Dict[int, List[Tuple[int, int]]]) -> int:
    """What the waiter provably knows once this wait completes."""
    if info.never_satisfiable:
        # The code after an unsatisfiable wait never runs; claim
        # nothing and let the deadlock detector report it.
        return 0
    wait_bit = 1 << wait
    if info.threshold is not None:
        t = info.threshold
        if t == 0:
            return 0
        masks = [past[u] | (1 << u)
                 for u in _early_updates(info, past, wait, co_waits)]
        if len(masks) < t:
            return 0  # unsatisfiable with current knowledge
        # An event is learned iff fewer than t updates could complete
        # without it: it must appear in at least len(masks) - t + 1.
        return _bits_in_at_least(masks, len(masks) - t + 1)
    guarantee: Optional[int] = None
    for cand in info.candidates:
        if cand is None:
            return 0  # the initial value satisfies: nothing is learned
        if past[cand] & wait_bit:
            continue  # provably after the wait: cannot be first
        mask = past[cand] | (1 << cand)
        guarantee = mask if guarantee is None else guarantee & mask
    return guarantee or 0


# ----------------------------------------------------------------------
# satisfiability / deadlock analysis
# ----------------------------------------------------------------------

@dataclass
class Unsatisfiable:
    """One wait that can never complete, with its witness."""

    nid: int
    reason: str
    blockers: List[int] = field(default_factory=list)


def _reliable(info: WaitInfo, cand: Optional[int], past: List[int],
              dead: int) -> bool:
    """No falsifying write can clobber ``cand`` before the waiter sees
    it: every falsifier precedes the candidate, provably follows the
    wait, or never fires at all."""
    wait_bit = 1 << info.nid
    cand_past = 0 if cand is None else (past[cand] | (1 << cand))
    for bad in info.falsifiers:
        if (1 << bad) & dead:
            continue
        if cand is not None and (cand_past >> bad) & 1:
            continue  # overwritten before the candidate committed
        if past[bad] & wait_bit:
            continue  # issued only after the wait completed
        return False
    return True


def find_unsatisfiable(hb: HBResult) -> List[Unsatisfiable]:
    """All root unsatisfiable waits, cascading task death to fixpoint."""
    placement = hb.placement
    dead = 0  # bitmask of nodes that can never fire
    roots: Dict[int, Unsatisfiable] = {}
    for _ in range(len(placement.pids) + 2):
        changed = False
        new_dead = dead
        for pid in placement.pids:
            dying = False
            for nid in placement.tasks[pid]:
                if dying:
                    new_dead |= 1 << nid
                    continue
                info = hb.waits.get(nid)
                if info is None:
                    continue
                verdict = _satisfiable(hb, info, new_dead)
                if verdict is not None:
                    if nid not in roots:
                        roots[nid] = verdict
                        changed = True
                    dying = True
                    new_dead |= 1 << nid
        if new_dead != dead:
            dead = new_dead
            changed = True
        if not changed:
            break
    # Keep only root causes: a wait whose blockers are all alive (its
    # satisfiers are pruned/missing on their own, not casualties of an
    # earlier finding in another task).
    ordered = [roots[nid] for nid in sorted(roots)]
    independent = [u for u in ordered
                   if not any((1 << b) & dead and b not in roots
                              for b in u.blockers)]
    return independent or ordered


def _satisfiable(hb: HBResult, info: WaitInfo,
                 dead: int) -> Optional[Unsatisfiable]:
    nodes = hb.placement.nodes
    past = hb.past
    wait_bit = 1 << info.nid
    if (1 << info.nid) & dead:
        return None
    if info.never_satisfiable:
        return Unsatisfiable(
            nid=info.nid,
            reason="no write to this variable ever satisfies the "
                   "predicate")
    if info.threshold is not None:
        live = [u for u in _early_updates(info, past, info.nid,
                                          hb.co_waits)
                if not ((1 << u) & dead)]
        if len(live) < info.threshold:
            return Unsatisfiable(
                nid=info.nid,
                reason=f"needs {info.threshold} updates but only "
                       f"{len(live)} can precede it",
                blockers=[u for u in info.updates if u not in live])
        return None
    blockers: List[int] = []
    for cand in info.candidates:
        if cand is None:
            if _reliable(info, None, past, dead):
                return None  # the initial value satisfies, reliably
            continue
        if (1 << cand) & dead:
            blockers.append(cand)
            continue
        if past[cand] & wait_bit:
            blockers.append(cand)  # circular: fires only after the wait
            continue
        if not nodes[cand].guaranteed:
            blockers.append(cand)  # MAY event: cannot be counted on
            continue
        if not _reliable(info, cand, past, dead):
            blockers.append(cand)
            continue
        return None
    return Unsatisfiable(
        nid=info.nid,
        reason="every candidate satisfier is circular, unreliable, "
               "conditional or dead",
        blockers=blockers)
