"""The process-oriented scheme (section 4) as a pluggable SyncScheme.

One process counter per iteration, folded onto X hardware counters on the
broadcast synchronization bus.  Two primitive styles:

``"basic"``  (Fig. 4.2)
    ``get_PC`` before the first counter update, ``set_PC`` after each
    non-final source statement, ``release_PC`` after the last.
``"improved"``  (Fig. 4.3)
    ``load_index`` at loop entry, ``mark_PC`` (skips when ownership has
    not arrived) after non-final sources, ``transfer_PC`` at the end --
    ownership is only ever *waited for* at the final transfer.

Branches follow Example 3: source *positions* advance the step cursor
whether or not the statement executed, and (eagerly, by default) the
cursor is published so sinks of skipped sources proceed as soon as
possible.
"""

from __future__ import annotations

from typing import Generator, List, Optional

from ..core.branches import StepCursor
from ..core.codegen import SyncPlan, build_sync_plan
from ..core.folding import choose_counters
from ..core.improved import ImprovedPrimitives
from ..core.primitives import get_pc, release_pc, set_pc
from ..core.process_counter import ProcessCounterFile, pc_at_least
from ..depend.graph import DependenceGraph, SyncArc
from ..depend.model import Loop
from ..sim.memory import SharedMemory
from ..sim.ops import Fence, MemWrite, SyncWrite, WaitUntil
from ..sim.cache_fabric import CachedSyncFabric
from ..sim.sync_bus import BroadcastSyncFabric, SyncFabric
from ..sim.validate import mix
from .base import (_CLEAR_TAG, InstrumentedLoop, SyncScheme,
                   compile_statement)

_FENCE = Fence()


class ProcessOrientedLoop(InstrumentedLoop):
    """A loop synchronized with process counters."""

    def __init__(self, loop: Loop, graph: DependenceGraph, plan: SyncPlan,
                 n_counters: int, style: str, split_fields: bool,
                 split_order: str, eager_branch_marks: bool,
                 coverage: bool, charge_init: bool,
                 fabric_kwargs: Optional[dict] = None,
                 fabric: str = "broadcast") -> None:
        super().__init__(loop, graph)
        self.plan = plan
        self.style = style
        self.eager_branch_marks = eager_branch_marks
        self.coverage = coverage
        self.charge_init = charge_init
        self.fabric_kwargs = dict(fabric_kwargs or {})
        if fabric not in ("broadcast", "cached"):
            raise ValueError(f"unknown fabric {fabric!r}")
        self.fabric_kind = fabric
        self.counters = ProcessCounterFile(
            n_counters=n_counters, first_pid=1,
            split_fields=split_fields, split_order=split_order)
        self._fabric: Optional[SyncFabric] = None
        #: per-pid compiled frames: the counters are allocated first on
        #: a fresh fabric, so their variable ids (slot order from 0) are
        #: known here (asserted in build_fabric) and every static piece
        #: of the op stream -- wait ops, guard outcomes, statement
        #: instances -- compiles once at instrument time.
        self._frames: dict = {}
        self.recompile()

    def recompile(self) -> None:
        """Rebuild the per-iteration frames (after plan mutation)."""
        self._frames = {pid: self._compile_frames(pid)
                        for pid in self.iterations}

    def _compile_frames(self, pid: int) -> list:
        """``(waits, executed, compiled, stmt_plan)`` per plan statement."""
        index = self.loop.index_of_lpid(pid)
        first_pid = self.counters.first_pid
        n = self.counters.n_counters
        frames = []
        for stmt_plan in self.plan.statements:
            stmt = self.loop.statement(stmt_plan.sid)
            waits = []
            for wait in stmt_plan.waits:
                source = pid - wait.dist
                if source < first_pid:
                    # loop-boundary sink: no source iteration, no wait
                    continue
                waits.append(WaitUntil(
                    (source - first_pid) % n,
                    pc_at_least((source, wait.step)),
                    reason=f"wait_PC({wait.dist},{wait.step}) by p{pid}"))
            executed = stmt.executes_at(index)
            compiled = (compile_statement(self.loop, stmt, index, pid)
                        if executed else None)
            frames.append((tuple(waits), executed, compiled, stmt_plan))
        return frames

    def build_fabric(self, memory: SharedMemory) -> SyncFabric:
        if self.fabric_kind == "cached":
            # section 6's coherent-cache option: PCs as cacheable
            # memory words with write-invalidate coherence
            fabric: SyncFabric = CachedSyncFabric(memory,
                                                  **self.fabric_kwargs)
        else:
            fabric = BroadcastSyncFabric(coverage=self.coverage,
                                         **self.fabric_kwargs)
        self.counters.allocate(fabric)
        assert self.counters._vars == range(0, self.counters.n_counters), \
            "fabric allocation drifted from the compiled wait ops"
        self._fabric = fabric
        return fabric

    @property
    def needs_counters(self) -> bool:
        """A DOALL plan emits no waits or marks: no counters needed."""
        return self.plan.n_sources > 0

    def prologue(self) -> List[Generator]:
        """Counter initialization: X broadcast writes, if charged.

        The paper's point is that initializing X registers is negligible
        next to initializing one key per array element; charging it makes
        the comparison honest.  A DOALL needs no counters at all.
        """
        if not self.charge_init or not self.needs_counters:
            return []

        def init() -> Generator:
            for slot in range(self.counters.n_counters):
                pid = self.counters.initial_owner(slot)
                yield SyncWrite(self.counters.var_of(pid), (pid, 0))

        return [init()]

    @property
    def sync_vars(self) -> int:
        return self.counters.n_counters if self.needs_counters else 0

    def make_process(self, iteration: int) -> Generator:
        if self.style == "basic":
            return self._basic_process(iteration)
        return self._improved_process(iteration)

    def make_replay_process(self, iteration: int,
                            checkpoint: Optional[dict] = None) -> Generator:
        """Resume an iteration past its already-published PC updates.

        Each counter write carries a checkpoint naming the next plan
        position plus the ownership state (``acquired``/``owned``,
        ``last_step``).  Replay walks the plan from the top so the step
        cursor is recomputed deterministically, but emits nothing for
        positions before the journalled one: their data ops committed
        before the journalled signal (program order), and un-published
        marks there are signed off by the journalled (higher) step or by
        the final transfer, exactly as in lazy-mark mode.
        """
        skip = 0 if checkpoint is None else checkpoint["stmt"]
        if self.style == "basic":
            return self._basic_process(iteration, skip_stmt=skip,
                                       restore=checkpoint)
        return self._improved_process(iteration, skip_stmt=skip,
                                      restore=checkpoint)

    def _ckpt(self, pid: int, stmt_pos: int, **state) -> Optional[dict]:
        if not self.checkpoints_enabled:
            return None
        payload = {"iter": pid, "stmt": stmt_pos}
        payload.update(state)
        return payload

    # ------------------------------------------------------------------
    # emission, one generator per iteration
    # ------------------------------------------------------------------

    def _basic_process(self, pid: int, skip_stmt: int = 0,
                       restore: Optional[dict] = None) -> Generator:
        cursor = StepCursor(self.plan.n_sources,
                            eager=self.eager_branch_marks)
        acquired = bool(restore and restore.get("acquired"))
        for stmt_pos, (waits, executed, compiled,
                       stmt_plan) in enumerate(self._frames[pid]):
            replay_skip = stmt_pos < skip_stmt
            if not replay_skip:
                for op in waits:
                    yield op
                if compiled is not None:
                    # inlined CompiledStatement.stream (same op sequence)
                    yield compiled.tag_op
                    values = []
                    for read_op in compiled.read_ops:
                        value = yield read_op
                        values.append(value)
                    yield compiled.compute_op
                    result = mix(compiled.sid, compiled.lpid, values)
                    for addr in compiled.write_addrs:
                        yield MemWrite(addr, result)
                    yield _CLEAR_TAG
            if stmt_plan.source_step is None:
                continue
            # Requirement (1) of section 2.2: the source's effect must be
            # globally visible before its completion is signalled.  The
            # fence runs even when a guard skipped this source: arc
            # pruning lets sinks infer *earlier* statements' completion
            # from this step, so their posted writes must drain before
            # the step is published.  (No outstanding writes: free.)
            if not replay_skip:
                yield _FENCE
            step = cursor.advance(executed)
            if replay_skip:
                continue  # signal landed pre-crash; cursor stays in sync
            if stmt_plan.is_last_source:
                if not acquired:
                    yield from get_pc(self.counters, pid)
                    acquired = True
                yield from release_pc(self.counters, pid,
                                      current_step=cursor.published,
                                      checkpoint=self._ckpt(
                                          pid, stmt_pos + 1,
                                          acquired=True))
            elif step is not None:
                if not acquired:
                    yield from get_pc(self.counters, pid)
                    acquired = True
                yield from set_pc(self.counters, pid, step,
                                  checkpoint=self._ckpt(
                                      pid, stmt_pos + 1, acquired=True))

    def _improved_process(self, pid: int, skip_stmt: int = 0,
                          restore: Optional[dict] = None) -> Generator:
        cursor = StepCursor(self.plan.n_sources,
                            eager=self.eager_branch_marks)
        # load_index: myPC and the owned flag live in processor registers.
        primitives = ImprovedPrimitives(self.counters, pid)
        if restore:
            primitives.owned = bool(restore.get("owned"))
            primitives.last_step = restore.get("last_step", 0)
        for stmt_pos, (waits, executed, compiled,
                       stmt_plan) in enumerate(self._frames[pid]):
            replay_skip = stmt_pos < skip_stmt
            if not replay_skip:
                for op in waits:
                    yield op
                if compiled is not None:
                    # inlined CompiledStatement.stream (same op sequence)
                    yield compiled.tag_op
                    values = []
                    for read_op in compiled.read_ops:
                        value = yield read_op
                        values.append(value)
                    yield compiled.compute_op
                    result = mix(compiled.sid, compiled.lpid, values)
                    for addr in compiled.write_addrs:
                        yield MemWrite(addr, result)
                    yield _CLEAR_TAG
            if stmt_plan.source_step is None:
                continue
            # Fence on every path, skipped sources included (see
            # _basic_process): pruning relies on it.
            if not replay_skip:
                yield _FENCE
            step = cursor.advance(executed)
            if replay_skip:
                continue  # signal landed pre-crash; cursor stays in sync
            if stmt_plan.is_last_source:
                primitives.last_step = cursor.published
                yield from primitives.transfer_pc(
                    checkpoint=self._ckpt(pid, stmt_pos + 1, owned=True,
                                          last_step=cursor.published))
            elif step is not None:
                yield from primitives.mark_pc(
                    step,
                    checkpoint=self._ckpt(pid, stmt_pos + 1, owned=True,
                                          last_step=step))


class ProcessOrientedScheme(SyncScheme):
    """Factory for process-counter synchronization.

    Parameters
    ----------
    n_counters:
        X, the number of hardware process counters; default: the paper's
        sizing rule (power of two, ``2 * processors``).
    style:
        ``"basic"`` (Fig. 4.2) or ``"improved"`` (Fig. 4.3).
    split_fields / split_order:
        Model the two PC fields as separate bus writes (section 6).
    eager_branch_marks:
        Publish steps for skipped sources immediately (Example 3's
        "inform the sinks to proceed as soon as possible").
    coverage:
        Enable the bus write-coverage optimization.
    fabric:
        Where the counters live: ``"broadcast"`` (dedicated bus with
        local register images, the Alliant-style default) or
        ``"cached"`` (section 6's coherent-cache option:
        :class:`~repro.sim.cache_fabric.CachedSyncFabric`).
    fabric_kwargs:
        Extra fabric timing parameters (``bus_service``, ``propagation``,
        ``issue_cost`` for broadcast; ``poll_interval``, ``capacity`` for
        cached) for hardware ablations.
    prune:
        Dependence-coverage pruning mode: "exact" (default) or "none".
    charge_init:
        Whether to simulate the X-register initialization prologue.
    """

    name = "process-oriented"
    supports_variable_index = True

    def __init__(self, n_counters: Optional[int] = None,
                 style: str = "improved",
                 processors: int = 8,
                 split_fields: bool = False,
                 split_order: str = "step_first",
                 eager_branch_marks: bool = True,
                 coverage: bool = True,
                 prune: str = "exact",
                 charge_init: bool = True,
                 fabric_kwargs: Optional[dict] = None,
                 fabric: str = "broadcast") -> None:
        if style not in ("basic", "improved"):
            raise ValueError(f"unknown primitive style {style!r}")
        if fabric not in ("broadcast", "cached"):
            raise ValueError(f"unknown fabric {fabric!r}")
        self.fabric = fabric
        self.n_counters = n_counters or choose_counters(processors)
        self.style = style
        self.split_fields = split_fields
        self.split_order = split_order
        self.eager_branch_marks = eager_branch_marks
        self.coverage = coverage
        self.prune = prune
        self.charge_init = charge_init
        self.fabric_kwargs = dict(fabric_kwargs or {})

    def instrument(self, loop: Loop,
                   graph: Optional[DependenceGraph] = None,
                   arcs: Optional[List[SyncArc]] = None
                   ) -> ProcessOrientedLoop:
        graph = graph or DependenceGraph(loop)
        plan = build_sync_plan(loop, graph, prune=self.prune, arcs=arcs)
        return ProcessOrientedLoop(
            loop, graph, plan,
            n_counters=self.n_counters, style=self.style,
            split_fields=self.split_fields, split_order=self.split_order,
            eager_branch_marks=self.eager_branch_marks,
            coverage=self.coverage, charge_init=self.charge_init,
            fabric_kwargs=self.fabric_kwargs, fabric=self.fabric)
