"""Name -> scheme factory registry.

Benches and examples select schemes by the names the paper's taxonomy
uses; extra keyword arguments go to the scheme constructor.
"""

from __future__ import annotations

from typing import Dict, List, Type

from .base import SyncScheme
from .instance_based import InstanceBasedScheme
from .process_oriented import ProcessOrientedScheme
from .reference_based import ReferenceBasedScheme
from .statement_oriented import StatementOrientedScheme

_SCHEMES: Dict[str, Type[SyncScheme]] = {
    "reference-based": ReferenceBasedScheme,
    "instance-based": InstanceBasedScheme,
    "statement-oriented": StatementOrientedScheme,
    "process-oriented": ProcessOrientedScheme,
}


def scheme_names() -> List[str]:
    """All registered scheme names, in the paper's presentation order."""
    return list(_SCHEMES)


def make_scheme(name: str, **kwargs) -> SyncScheme:
    """Instantiate a scheme by taxonomy name."""
    try:
        factory = _SCHEMES[name]
    except KeyError:
        raise ValueError(
            f"unknown scheme {name!r}; known: {sorted(_SCHEMES)}") from None
    return factory(**kwargs)
