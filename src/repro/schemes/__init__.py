"""The paper's taxonomy of data synchronization schemes (section 3).

Four interchangeable implementations of the :class:`SyncScheme`
interface:

* ``reference-based``  -- Cedar key/data: a key per array element
* ``instance-based``   -- HEP full/empty bits over renamed storage
* ``statement-oriented`` -- Alliant Advance/Await statement counters
* ``process-oriented`` -- the paper's proposal: folded process counters
"""

from .base import (InstrumentedLoop, RunConfig, SyncScheme, bound_waits,
                   execute_statement)
from .instance_based import (InstanceBasedLoop, InstanceBasedScheme,
                             Instance, ReadBinding, rename)
from .process_oriented import ProcessOrientedLoop, ProcessOrientedScheme
from .reference_based import (KeyedAccess, ReferenceBasedLoop,
                              ReferenceBasedScheme, plan_accesses)
from .registry import make_scheme, scheme_names
from .statement_oriented import (StatementOrientedLoop,
                                 StatementOrientedScheme, at_least)

__all__ = [
    "InstrumentedLoop", "Instance", "InstanceBasedLoop",
    "InstanceBasedScheme", "KeyedAccess", "ProcessOrientedLoop",
    "ProcessOrientedScheme", "ReadBinding", "ReferenceBasedLoop", "RunConfig",
    "ReferenceBasedScheme", "StatementOrientedLoop",
    "StatementOrientedScheme", "SyncScheme", "at_least", "bound_waits",
    "execute_statement", "make_scheme", "plan_accesses", "rename",
    "scheme_names",
]
