"""The instance-based data-oriented scheme (section 3.1 / Fig. 3.1(b)).

Compile-time renaming gives every *updated value* its own memory location
and full/empty bit, as on the Denelcor HEP: the program becomes
single-assignment, so anti- and output dependences vanish and only flow
dependences synchronize.  "Multiple copies of an updated value are also
needed if there are multiple reads for the updated value" -- HEP reads
*consume* (empty) the bit, so each reader gets a private copy.

The price, which this model charges explicitly:

* storage: one location + one full/empty bit per (instance, reader copy),
* writers store every copy and set every bit,
* initialization: values live before the loop must be materialized as
  full version-0 instances,
* busy-waits poll through shared memory (data-oriented storage).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..depend.graph import DependenceGraph
from ..depend.model import Loop
from ..sim.memory import SharedMemory
from ..sim.ops import (Address, Annotate, Compute, Fence, MemRead, MemWrite,
                       SyncWrite, WaitUntil)
from ..sim.sync_bus import MemorySyncFabric, SyncFabric
from ..sim.validate import mix
from .base import InstrumentedLoop, SyncScheme

#: renamed instances live in this pseudo-array
INSTANCE_SPACE = "__inst__"

#: shared immutable ops for the compiled streams
_FENCE = Fence()
_CLEAR_TAG = Annotate("tag", {"tag": None})


@dataclass
class Instance:
    """One single-assignment value instance (element version)."""

    base_addr: Address
    version: int
    #: copy addresses, one per reader (at least one)
    copies: List[Address] = field(default_factory=list)
    #: full/empty bit per copy (fabric var ids, filled at build time)
    bits: List[int] = field(default_factory=list)
    #: reader tags in sequential order (copy i -> reader i)
    readers: List[Tuple[str, int]] = field(default_factory=list)
    #: None for pre-loop (initial) versions
    writer: Optional[Tuple[str, int]] = None


@dataclass(frozen=True)
class ReadBinding:
    """Where one read of a statement instance finds its operand."""

    instance_id: int
    copy_index: int


def rename(loop: Loop) -> Tuple[List[Instance],
                                Dict[Tuple[str, int], List[ReadBinding]],
                                Dict[Tuple[str, int], List[int]]]:
    """Single-assignment renaming of the loop's accesses.

    Returns ``(instances, reads_of, writes_of)`` where ``reads_of[tag]``
    binds each read of the instance (declaration order) to an
    (instance, copy) and ``writes_of[tag]`` lists instance ids the
    statement instance must produce.
    """
    instances: List[Instance] = []
    current_version: Dict[Address, int] = {}  # addr -> instance id
    reads_of: Dict[Tuple[str, int], List[ReadBinding]] = defaultdict(list)
    writes_of: Dict[Tuple[str, int], List[int]] = defaultdict(list)

    def instance_for(addr: Address) -> int:
        """Current instance of an element, creating version 0 if needed."""
        if addr not in current_version:
            instance = Instance(base_addr=addr, version=0, writer=None)
            instances.append(instance)
            current_version[addr] = len(instances) - 1
        return current_version[addr]

    for index in loop.iteration_space():
        lpid = loop.lpid(index)
        for stmt in loop.body:
            if not stmt.executes_at(index):
                continue
            tag = (stmt.sid, lpid)
            reads_of.setdefault(tag, [])
            writes_of.setdefault(tag, [])
            for ref in stmt.reads:
                addr = loop.address_of(ref, index)
                instance_id = instance_for(addr)
                instance = instances[instance_id]
                copy_index = len(instance.readers)
                instance.readers.append(tag)
                reads_of[tag].append(ReadBinding(instance_id, copy_index))
            for ref in stmt.writes:
                addr = loop.address_of(ref, index)
                previous = current_version.get(addr)
                version = (0 if previous is None
                           else instances[previous].version + 1)
                instance = Instance(base_addr=addr, version=version,
                                    writer=tag)
                instances.append(instance)
                current_version[addr] = len(instances) - 1
                writes_of[tag].append(len(instances) - 1)

    # assign flat copy addresses: one per reader, at least one per instance
    cursor = 0
    for instance in instances:
        n_copies = max(1, len(instance.readers))
        instance.copies = [(INSTANCE_SPACE, cursor + c)
                           for c in range(n_copies)]
        cursor += n_copies
    return instances, dict(reads_of), dict(writes_of)


class InstanceBasedLoop(InstrumentedLoop):
    """A loop synchronized with full/empty bits over renamed storage."""

    renames_storage = True

    def __init__(self, loop: Loop, graph: DependenceGraph,
                 poll_interval: int, init_workers: int, consume: bool,
                 charge_init: bool) -> None:
        super().__init__(loop, graph)
        self.poll_interval = poll_interval
        self.init_workers = init_workers
        self.consume = consume
        self.charge_init = charge_init
        self.instances, self.reads_of, self.writes_of = rename(loop)
        self.initial_instances = [i for i in self.instances
                                  if i.writer is None]
        #: bits are allocated in instance order on a fresh fabric, so
        #: their variable ids are known at instrument time (asserted in
        #: build_fabric); the clean-run op stream compiles here once.
        cursor = 0
        for instance in self.instances:
            n_bits = len(instance.copies)
            instance.bits = list(range(cursor, cursor + n_bits))
            cursor += n_bits
        self._programs: dict = {}
        self.recompile()

    def recompile(self) -> None:
        """Rebuild the per-iteration op streams (after table mutation)."""
        self._programs = {pid: self._compile(pid)
                          for pid in self.iterations}

    def _compile(self, pid: int) -> list:
        """Compile ``pid``'s clean-run op stream (no checkpoints).

        One entry per executed statement: ``(tag_op, reads, compute_op,
        sid, writes)`` where ``reads`` holds ``(wait, read, consume)``
        triples and ``writes`` holds ``(copy_addrs, bit_ops)`` pairs --
        exactly the stream :meth:`_body` emits with no replay skip and
        checkpoints off.
        """
        index = self.loop.index_of_lpid(pid)
        program = []
        for stmt in self.loop.body:
            if not stmt.executes_at(index):
                continue
            tag = (stmt.sid, pid)
            reads = []
            for binding in self.reads_of.get(tag, ()):
                instance = self.instances[binding.instance_id]
                bit = instance.bits[binding.copy_index]
                reads.append((
                    WaitUntil(bit, _full,
                              reason=f"full {instance.base_addr}"
                                     f"v{instance.version}"),
                    MemRead(instance.copies[binding.copy_index]),
                    SyncWrite(bit, 0) if self.consume else None))
            writes = []
            for instance_id in self.writes_of.get(tag, ()):
                instance = self.instances[instance_id]
                writes.append((tuple(instance.copies),
                               tuple(SyncWrite(bit, 1)
                                     for bit in instance.bits)))
            program.append((Annotate("tag", {"tag": tag}),
                            tuple(reads),
                            Compute(stmt.cost_at(index)),
                            stmt.sid,
                            tuple(writes)))
        return program

    def _fast_body(self, pid: int) -> Generator:
        """Replay the precompiled stream (clean runs, no checkpoints)."""
        for tag_op, reads, compute_op, sid, writes in self._programs[pid]:
            yield tag_op
            values: List[Any] = []
            for wait_op, read_op, consume_op in reads:
                yield wait_op
                value = yield read_op
                values.append(value)
                if consume_op is not None:
                    yield consume_op
            yield compute_op
            result = mix(sid, pid, values)
            for copy_addrs, bit_ops in writes:
                for addr in copy_addrs:
                    yield MemWrite(addr, result)
                yield _FENCE
                for op in bit_ops:
                    yield op
            yield _CLEAR_TAG

    def build_fabric(self, memory: SharedMemory) -> SyncFabric:
        fabric = MemorySyncFabric(memory, poll_interval=self.poll_interval,
                                  space="__fe__")
        for instance in self.instances:
            # empty unless the instance pre-exists the loop
            initial = 1 if instance.writer is None else 0
            allocated = list(fabric.alloc(len(instance.copies),
                                          init=initial))
            assert allocated == instance.bits, \
                "fabric allocation drifted from the compiled bit ops"
        return fabric

    def prologue(self) -> List[Generator]:
        """Materialize pre-loop values as full version-0 instances."""
        if not self.charge_init:
            return []
        initial_values = self.initial_memory()

        def init(worker: int) -> Generator:
            for position, instance in enumerate(self.initial_instances):
                if position % self.init_workers != worker:
                    continue
                value = initial_values.get(instance.base_addr)
                for copy_addr, bit in zip(instance.copies, instance.bits):
                    if value is not None:
                        yield MemWrite(copy_addr, value)
                    yield SyncWrite(bit, 1)

        workers = min(self.init_workers, max(1, len(self.initial_instances)))
        return [init(worker) for worker in range(workers)]

    @property
    def sync_vars(self) -> int:
        """Total full/empty bits (one per copy)."""
        return sum(len(instance.copies) for instance in self.instances)

    def extract_final_state(self, result) -> "Dict[Address, Any]":
        """Copy renamed storage back to program arrays (single-assignment
        copy-out): each element's value is its latest instance's."""
        latest: Dict[Address, "Instance"] = {}
        for instance in self.instances:
            current = latest.get(instance.base_addr)
            if current is None or instance.version > current.version:
                latest[instance.base_addr] = instance
        state: Dict[Address, Any] = {}
        for base_addr, instance in latest.items():
            if instance.writer is None:
                value = self.initial_memory().get(base_addr)
            else:
                value = result.final_memory.get(instance.copies[0])
            if value is not None:
                state[base_addr] = value
        return state

    @property
    def data_copy_words(self) -> int:
        """Words of renamed data storage (the renaming overhead)."""
        return sum(len(instance.copies) for instance in self.instances)

    def make_process(self, pid: int) -> Generator:
        if self.checkpoints_enabled:
            return self._body(pid)
        return self._fast_body(pid)

    def make_replay_process(self, iteration: int,
                            checkpoint: Optional[dict] = None) -> Generator:
        """Resume an iteration without re-consuming emptied bits.

        Consuming reads are the scheme's non-idempotent signals: each
        carries a checkpoint, so replay substitutes journalled values
        for reads already consumed.  Publishes re-execute in full --
        single-assignment makes rewriting copies and re-filling bits
        idempotent (each copy has exactly one reader, which already got
        its value if the bit was consumed).
        """
        if checkpoint is None:
            return self._body(iteration)
        return self._body(iteration, skip_stmt=checkpoint["stmt"],
                          skip_acc=checkpoint["acc"],
                          journaled=list(checkpoint["values"]))

    def _ckpt(self, pid: int, stmt_pos: int, acc: int,
              values: List[Any]) -> Optional[dict]:
        if not self.checkpoints_enabled:
            return None
        return {"iter": pid, "stmt": stmt_pos, "acc": acc,
                "values": list(values)}

    def _body(self, pid: int, skip_stmt: int = 0, skip_acc: int = 0,
              journaled: Optional[List[Any]] = None) -> Generator:
        index = self.loop.index_of_lpid(pid)
        executed = [stmt for stmt in self.loop.body
                    if stmt.executes_at(index)]
        for stmt_pos, stmt in enumerate(executed):
            if stmt_pos < skip_stmt:
                continue
            acc_done = skip_acc if stmt_pos == skip_stmt else 0
            seen = (journaled or []) if stmt_pos == skip_stmt else []
            tag = (stmt.sid, pid)
            yield Annotate("tag", {"tag": tag})
            values: List[Any] = []
            for read_pos, binding in enumerate(self.reads_of[tag]):
                if read_pos < acc_done:
                    # This read's consuming SyncWrite already landed:
                    # the bit is empty, so reuse the journalled value.
                    values.append(seen[read_pos])
                    continue
                instance = self.instances[binding.instance_id]
                bit = instance.bits[binding.copy_index]
                copy_addr = instance.copies[binding.copy_index]
                yield WaitUntil(bit, _full,
                                reason=f"full {instance.base_addr}"
                                       f"v{instance.version}")
                value = yield MemRead(copy_addr)
                values.append(value)
                if self.consume:
                    # HEP read empties the bit (non-idempotent signal)
                    yield SyncWrite(bit, 0,
                                    checkpoint=self._ckpt(
                                        pid, stmt_pos, read_pos + 1,
                                        values))
            yield Compute(stmt.cost_at(index))
            result = mix(stmt.sid, pid, values)
            write_ids = self.writes_of[tag]
            total_bits = sum(len(self.instances[i].bits)
                             for i in write_ids)
            filled = 0
            for instance_id in write_ids:
                instance = self.instances[instance_id]
                for copy_addr in instance.copies:
                    yield MemWrite(copy_addr, result)
                yield Fence()  # copies visible before bits flip
                for bit in instance.bits:
                    filled += 1
                    # the statement's last publish advances the journal
                    # to the next statement boundary
                    boundary = (self._ckpt(pid, stmt_pos + 1, 0, [])
                                if filled == total_bits else None)
                    yield SyncWrite(bit, 1, checkpoint=boundary)
            yield Annotate("tag", {"tag": None})


def _full(value: int) -> bool:
    return value >= 1


class InstanceBasedScheme(SyncScheme):
    """Factory for HEP-style full/empty synchronization with renaming."""

    name = "instance-based"
    supports_variable_index = True

    def __init__(self, poll_interval: int = 4, init_workers: int = 8,
                 consume: bool = True, charge_init: bool = True) -> None:
        self.poll_interval = poll_interval
        self.init_workers = init_workers
        self.consume = consume
        self.charge_init = charge_init

    def instrument(self, loop: Loop,
                   graph: Optional[DependenceGraph] = None
                   ) -> InstanceBasedLoop:
        graph = graph or DependenceGraph(loop)
        return InstanceBasedLoop(loop, graph,
                                 poll_interval=self.poll_interval,
                                 init_workers=self.init_workers,
                                 consume=self.consume,
                                 charge_init=self.charge_init)
