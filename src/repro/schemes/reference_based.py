"""The reference-based data-oriented scheme (section 3.1 / Fig. 3.1(a)).

One *key* per array element, held in shared memory next to the datum
(Cedar's key/data scheme).  Every access to the element carries its
sequential *access order* number; the memory-side protocol is

    wait until key >= threshold;  access the datum;  key := key + 1

where the threshold of a write is its access ordinal (every earlier
access must be done) and the threshold of a read is one past the
ordinal of the last preceding write -- which is what lets the reads S2
and S3 of the running example proceed in either order.

Costs the paper attributes to this class, all modelled here:

* one synchronization variable per element ("requires a large number of
  keys"),
* key initialization "can result in significant overhead" -- an explicit
  prologue that zeroes every key through the memory system,
* busy-waiting is *polled through shared memory*: every re-check is a
  memory transaction (keys have no broadcast bus).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Dict, Generator, List, Optional, Tuple

from ..depend.graph import DependenceGraph
from ..depend.model import Loop
from ..sim.memory import SharedMemory
from ..sim.ops import (Address, Annotate, Compute, Fence, MemRead, MemWrite,
                       SyncUpdate, SyncWrite, WaitUntil)
from ..sim.sync_bus import MemorySyncFabric, SyncFabric
from ..sim.validate import mix
from .base import InstrumentedLoop, SyncScheme


@dataclass(frozen=True)
class KeyedAccess:
    """One planned access of a statement instance, with its key action."""

    kind: str        # "R" or "W"
    addr: Address
    threshold: int   # wait until key >= threshold
    ordinal: int     # this access's position in the element's sequence


def _increment(value: int) -> int:
    return value + 1


#: shared immutable ops for the compiled streams
_FENCE = Fence()
_CLEAR_TAG = Annotate("tag", {"tag": None})


def plan_accesses(loop: Loop) -> Dict[Tuple[str, int], List[KeyedAccess]]:
    """Assign access ordinals and wait thresholds per statement instance.

    Walks the iteration space in sequential order, numbering the accesses
    of every element; within a statement reads precede writes.  Returns,
    for each tag ``(sid, lpid)``, the instance's accesses in execution
    order (reads in declaration order, then writes).
    """
    ordinals: Dict[Address, int] = defaultdict(int)
    last_write_ordinal: Dict[Address, int] = {}
    plan: Dict[Tuple[str, int], List[KeyedAccess]] = {}
    for index in loop.iteration_space():
        lpid = loop.lpid(index)
        for stmt in loop.body:
            if not stmt.executes_at(index):
                continue
            accesses: List[KeyedAccess] = []
            for ref in stmt.reads:
                addr = loop.address_of(ref, index)
                ordinal = ordinals[addr]
                previous_write = last_write_ordinal.get(addr)
                threshold = 0 if previous_write is None else previous_write + 1
                accesses.append(KeyedAccess("R", addr, threshold, ordinal))
                ordinals[addr] = ordinal + 1
            for ref in stmt.writes:
                addr = loop.address_of(ref, index)
                ordinal = ordinals[addr]
                accesses.append(KeyedAccess("W", addr, ordinal, ordinal))
                ordinals[addr] = ordinal + 1
                last_write_ordinal[addr] = ordinal
            plan[(stmt.sid, lpid)] = accesses
    return plan


class ReferenceBasedLoop(InstrumentedLoop):
    """A loop synchronized with per-element access-order keys."""

    def __init__(self, loop: Loop, graph: DependenceGraph,
                 poll_interval: int, init_workers: int,
                 charge_init: bool) -> None:
        super().__init__(loop, graph)
        self.poll_interval = poll_interval
        self.init_workers = init_workers
        self.charge_init = charge_init
        self.plan = plan_accesses(loop)
        self.elements: List[Address] = sorted(
            {access.addr for accesses in self.plan.values()
             for access in accesses})
        #: keys are allocated in ``elements`` order on a fresh fabric,
        #: so their variable ids are known at instrument time (asserted
        #: in build_fabric); the clean-run op stream compiles here once.
        self._key_of: Dict[Address, int] = {
            addr: key for key, addr in enumerate(self.elements)}
        self._programs: Dict[int, list] = {}
        self.recompile()

    def recompile(self) -> None:
        """Rebuild the per-iteration op streams (after plan mutation)."""
        self._programs = {pid: self._compile(pid)
                          for pid in self.iterations}

    def _compile(self, pid: int) -> list:
        """Compile ``pid``'s clean-run op stream (no checkpoints).

        One entry per executed statement: ``(tag_op, reads, compute_op,
        sid, writes)`` with per-access ``(wait, read, update)`` /
        ``(wait, addr, update)`` triples -- exactly what :meth:`_body`
        emits with no replay skip and checkpoints off.
        """
        index = self.loop.index_of_lpid(pid)
        program = []
        for stmt in self.loop.body:
            if not stmt.executes_at(index):
                continue
            reads = []
            writes = []
            for access in self.plan[(stmt.sid, pid)]:
                key = self._key_of[access.addr]
                wait_op = WaitUntil(key, _at_least(access.threshold),
                                    reason=f"key {access.addr} >= "
                                           f"{access.threshold}")
                update_op = SyncUpdate(key, _increment)
                if access.kind == "R":
                    reads.append((wait_op, MemRead(access.addr),
                                  update_op))
                else:
                    writes.append((wait_op, access.addr, update_op))
            program.append((Annotate("tag", {"tag": (stmt.sid, pid)}),
                            tuple(reads),
                            Compute(stmt.cost_at(index)),
                            stmt.sid,
                            tuple(writes)))
        return program

    def _fast_body(self, pid: int) -> Generator:
        """Replay the precompiled stream (clean runs, no checkpoints)."""
        for tag_op, reads, compute_op, sid, writes in self._programs[pid]:
            yield tag_op
            values: List[Any] = []
            for wait_op, read_op, update_op in reads:
                yield wait_op
                value = yield read_op
                values.append(value)
                yield update_op
            yield compute_op
            result = mix(sid, pid, values)
            for wait_op, addr, update_op in writes:
                yield wait_op
                yield MemWrite(addr, result)
                yield _FENCE
                yield update_op
            yield _CLEAR_TAG

    def build_fabric(self, memory: SharedMemory) -> SyncFabric:
        fabric = MemorySyncFabric(memory, poll_interval=self.poll_interval)
        for addr in self.elements:
            key = fabric.alloc(1, init=0)[0]
            assert key == self._key_of[addr], "fabric allocation drifted"
        return fabric

    def prologue(self) -> List[Generator]:
        """Zero every key through the memory system, split over workers."""
        if not self.charge_init:
            return []

        def init(worker: int) -> Generator:
            for position, addr in enumerate(self.elements):
                if position % self.init_workers == worker:
                    yield SyncWrite(self._key_of[addr], 0)

        return [init(worker) for worker in range(
            min(self.init_workers, max(1, len(self.elements))))]

    @property
    def sync_vars(self) -> int:
        return len(self.elements)

    def make_process(self, pid: int) -> Generator:
        if self.checkpoints_enabled:
            return self._body(pid)
        return self._fast_body(pid)

    def make_replay_process(self, iteration: int,
                            checkpoint: Optional[dict] = None) -> Generator:
        """Resume an iteration from its last journalled key increment.

        The checkpoint names the executed-statement index, the number of
        keyed accesses whose increments landed, and the read values seen
        so far.  Accesses before that point are skipped (their
        non-idempotent key increments must not re-issue); journalled
        read values are substituted so the re-computed mix matches.
        """
        if checkpoint is None:
            return self._body(iteration)
        return self._body(iteration, skip_stmt=checkpoint["stmt"],
                          skip_acc=checkpoint["acc"],
                          journaled=list(checkpoint["values"]))

    def _ckpt(self, pid: int, stmt_pos: int, acc: int,
              values: List[Any]) -> Optional[dict]:
        if not self.checkpoints_enabled:
            return None
        return {"iter": pid, "stmt": stmt_pos, "acc": acc,
                "values": list(values)}

    def _body(self, pid: int, skip_stmt: int = 0, skip_acc: int = 0,
              journaled: Optional[List[Any]] = None) -> Generator:
        index = self.loop.index_of_lpid(pid)
        executed = [stmt for stmt in self.loop.body
                    if stmt.executes_at(index)]
        for stmt_pos, stmt in enumerate(executed):
            if stmt_pos < skip_stmt:
                continue
            acc_done = skip_acc if stmt_pos == skip_stmt else 0
            seen = (journaled or []) if stmt_pos == skip_stmt else []
            accesses = self.plan[(stmt.sid, pid)]
            reads = [a for a in accesses if a.kind == "R"]
            writes = [a for a in accesses if a.kind == "W"]
            if acc_done >= len(accesses) and accesses:
                continue  # statement fully signalled before the crash
            yield Annotate("tag", {"tag": (stmt.sid, pid)})
            values: List[Any] = []
            for position, access in enumerate(reads):
                if position < acc_done:
                    # Increment already landed: reuse the journalled
                    # value instead of re-reading + re-incrementing.
                    values.append(seen[position])
                    continue
                key = self._key_of[access.addr]
                yield WaitUntil(key, _at_least(access.threshold),
                                reason=f"key {access.addr} >= "
                                       f"{access.threshold}")
                value = yield MemRead(access.addr)
                values.append(value)
                yield SyncUpdate(key, _increment,
                                 checkpoint=self._ckpt(
                                     pid, stmt_pos, position + 1, values))
            yield Compute(stmt.cost_at(index))
            result = mix(stmt.sid, pid, values)
            for write_pos, access in enumerate(writes):
                position = len(reads) + write_pos
                if position < acc_done:
                    continue  # write + increment already landed
                key = self._key_of[access.addr]
                yield WaitUntil(key, _at_least(access.threshold),
                                reason=f"key {access.addr} >= "
                                       f"{access.threshold}")
                yield MemWrite(access.addr, result)
                yield Fence()  # visible before the key admits successors
                yield SyncUpdate(key, _increment,
                                 checkpoint=self._ckpt(
                                     pid, stmt_pos, position + 1, values))
            yield Annotate("tag", {"tag": None})


def _at_least(threshold: int):
    def predicate(value: int) -> bool:
        return value >= threshold
    return predicate


class ReferenceBasedScheme(SyncScheme):
    """Factory for Cedar-style key/data synchronization."""

    name = "reference-based"
    supports_variable_index = True

    def __init__(self, poll_interval: int = 4, init_workers: int = 8,
                 charge_init: bool = True) -> None:
        self.poll_interval = poll_interval
        self.init_workers = init_workers
        self.charge_init = charge_init

    def instrument(self, loop: Loop,
                   graph: Optional[DependenceGraph] = None
                   ) -> ReferenceBasedLoop:
        graph = graph or DependenceGraph(loop)
        return ReferenceBasedLoop(loop, graph,
                                  poll_interval=self.poll_interval,
                                  init_workers=self.init_workers,
                                  charge_init=self.charge_init)
