"""Common contract for data synchronization schemes (section 3's taxonomy).

A :class:`SyncScheme` turns a DOACROSS loop (plus its dependence graph)
into an :class:`InstrumentedLoop`: a workload the simulated machine can
run, where every process is the loop body wrapped in the scheme's
synchronization operations.  The four schemes the paper classifies --
reference-based, instance-based, statement-oriented and the proposed
process-oriented scheme -- all implement this interface, so benches can
swap them under identical loops and machines.

The shared statement-execution helper here defines what a statement
instance *does*: read operands from shared memory, compute for the
statement's cost, and store a deterministic mix of the inputs.  The
validators compare those reads/stores against a sequential execution.
"""

from __future__ import annotations

import warnings
from abc import ABC, abstractmethod
from dataclasses import dataclass, replace
from typing import Any, Dict, Generator, List, Optional, Sequence

from ..depend.graph import DependenceGraph
from ..depend.model import Index, Loop, Statement
from ..sim.machine import Machine, MachineConfig
from ..sim.memory import SharedMemory
from ..sim.metrics import RunResult
from ..sim.ops import (Address, Annotate, Compute, MemRead, MemWrite,
                       WaitUntil)
from ..sim.sync_bus import SyncFabric
from ..sim.validate import (check_dependence_instances, check_final_state,
                            check_reads_match_recovered,
                            check_reads_match_sequential, mix)


@dataclass(frozen=True)
class RunConfig:
    """Every knob of one instrumented run, as a single immutable value.

    Collapses the kwarg pile :meth:`SyncScheme.run` had grown
    (``graph``, ``machine``, ``validate``, ``wait_bound``) into one
    object that can be built once and fanned across schemes and loops --
    the unit the :mod:`repro.lab` sweep engine iterates over.  Frozen so
    a config can key dictionaries and be shared between runs without
    aliasing surprises.
    """

    #: dependence graph to synchronize against (None: computed from the
    #: loop)
    graph: Optional[DependenceGraph] = None
    #: machine to simulate on (None: a default 8-processor machine)
    machine: Optional[Machine] = None
    #: check the run against sequential semantics afterwards
    validate: bool = True
    #: cap every emitted wait at this many cycles (None: unbounded)
    wait_bound: Optional[int] = None
    #: "full" (default): collect traces/events as the machine was
    #: configured.  "counters": opt-in fast path -- the machine is rerun
    #: with per-event collection disabled and only end-of-run counters
    #: are meaningful; validation (which replays the trace) is skipped.
    metrics: str = "full"


class CompiledStatement:
    """One statement instance's operation stream, compiled once.

    Everything about the instance except its read *values* is known at
    instrument time: the tag, the read addresses, the compute cost and
    the write addresses.  Compiling those into reusable frozen ops (via
    :func:`compile_statement`) moves address arithmetic and operation
    construction out of the simulated run's hot path -- the ops are
    immutable, so one compiled instance serves every execution and
    replay of the stream.
    """

    __slots__ = ("sid", "lpid", "tag_op", "read_ops", "compute_op",
                 "write_addrs")

    def __init__(self, loop: Loop, stmt: Statement, index: Index,
                 lpid: int) -> None:
        self.sid = stmt.sid
        self.lpid = lpid
        self.tag_op = Annotate("tag", {"tag": (stmt.sid, lpid)})
        self.read_ops = tuple(MemRead(loop.address_of(ref, index))
                              for ref in stmt.reads)
        self.compute_op = Compute(stmt.cost_at(index))
        self.write_addrs = tuple(loop.address_of(ref, index)
                                 for ref in stmt.writes)

    def stream(self) -> Generator:
        """Run the instance: tag, read, compute, write (see module doc).

        The schemes' fast bodies inline this exact sequence to avoid the
        ``yield from`` frame hop; keep them in sync when changing it.
        """
        yield self.tag_op
        values: List[Any] = []
        for op in self.read_ops:
            value = yield op
            values.append(value)
        yield self.compute_op
        result = mix(self.sid, self.lpid, values)
        for addr in self.write_addrs:
            yield MemWrite(addr, result)
        yield _CLEAR_TAG


def compile_statement(loop: Loop, stmt: Statement, index: Index,
                      lpid: int) -> CompiledStatement:
    """Compiled op stream for one statement instance, cached on the loop."""
    cache = loop.__dict__.get("_compiled_statements")
    if cache is None:
        cache = loop.__dict__["_compiled_statements"] = {}
    key = (stmt.sid, lpid)
    compiled = cache.get(key)
    if compiled is None:
        compiled = cache[key] = CompiledStatement(loop, stmt, index, lpid)
    return compiled


def precompile_statements(loop: Loop) -> None:
    """Compile every executed statement instance ahead of the run.

    Called by schemes at instrument time so :func:`execute_statement`
    never constructs ops while the machine clock is running.
    """
    for index in loop.iteration_space():
        lpid = loop.lpid(index)
        for stmt in loop.body:
            if stmt.executes_at(index):
                compile_statement(loop, stmt, index, lpid)


def execute_statement(loop: Loop, stmt: Statement, index: Index,
                      lpid: int) -> Generator:
    """Run one statement instance: tag, read, compute, write.

    The tag ``(sid, lpid)`` attributes the instance's memory accesses in
    the trace; it is cleared afterwards so scheme-internal accesses are
    not mis-attributed.
    """
    return compile_statement(loop, stmt, index, lpid).stream()


#: every statement instance ends by clearing its tag; the record is
#: immutable to the engine, so one shared instance serves all of them
_CLEAR_TAG = Annotate("tag", {"tag": None})


def bound_waits(process: Generator, max_spin: int) -> Generator:
    """Give every unbounded wait a spin budget (bounded-wait option).

    Rewrites each ``WaitUntil`` the process yields so the engine raises
    a *diagnosed* DeadlockError once a single wait exceeds ``max_spin``
    cycles, instead of parking (or polling) forever.  Under fault
    injection a lost release then surfaces as a structured hazard in
    bounded time; for correct schemes on clean hardware the budget is
    never hit as long as it exceeds the longest legitimate wait.  Waits
    that already carry their own budget are left alone.
    """
    try:
        op = next(process)
        while True:
            if isinstance(op, WaitUntil) and op.max_spin is None:
                op = replace(op, max_spin=max_spin)
            value = yield op
            op = process.send(value)
    except StopIteration:
        return


class InstrumentedLoop(ABC):
    """A loop wrapped in one scheme's synchronization, ready to simulate.

    Implements the :class:`repro.sim.machine.Workload` protocol and adds
    scheme metadata (synchronization-variable counts) plus
    :meth:`validate`, which checks a run against sequential semantics.
    """

    #: True when the scheme renames storage (instance-based): final-state
    #: and per-element ordering checks do not apply, value checks do.
    renames_storage: bool = False

    #: when True, signal ops carry checkpoint payloads so the recovery
    #: layer can journal per-iteration sync progress at dispatch time.
    #: Off by default: clean runs emit no checkpoints at all, keeping
    #: the no-fault event stream byte-identical (zero-overhead pin).
    checkpoints_enabled: bool = False

    def __init__(self, loop: Loop, graph: DependenceGraph) -> None:
        self.loop = loop
        self.graph = graph
        self.iterations: Sequence[int] = [
            loop.lpid(index) for index in loop.iteration_space()]
        #: memory contents present before the loop runs (set by callers
        #: chaining loops into programs; see repro.compiler.program)
        self.seed_memory: Dict[Address, Any] = {}

    # -- Workload protocol -------------------------------------------------

    @abstractmethod
    def build_fabric(self, memory: SharedMemory) -> SyncFabric:
        """Create the fabric this scheme's variables live on."""

    @abstractmethod
    def make_process(self, iteration: int) -> Generator:
        """The instrumented loop body for process ``iteration`` (an lpid)."""

    def prologue(self) -> List[Generator]:
        """Setup processes (e.g. key initialization); default: none."""
        return []

    def recompile(self) -> None:
        """Rebuild precompiled op streams from the loop's current state.

        Schemes compile their clean-run op streams once at instrument
        time, so mutating scheme state afterwards (sabotage tests,
        ablations that rewrite the sync plan or the arcs) has no effect
        until this is called.  Default: nothing precompiled.
        """

    def enable_checkpoints(self) -> None:
        """Turn on checkpoint emission for crash recovery (see base attr)."""
        self.checkpoints_enabled = True

    def make_replay_process(self, iteration: int,
                            checkpoint: Optional[dict] = None) -> Generator:
        """Replay an iteration from a journalled checkpoint.

        Called by the recovery layer when a crashed task's unfinished
        iteration is rescheduled onto a survivor.  The default replays
        from the top (``checkpoint`` ignored): sound for any scheme
        whose signal ops are idempotent under re-execution, but schemes
        override this to skip already-signalled statements so
        non-idempotent signals (key increments, consuming reads) are
        never re-issued.
        """
        return self.make_process(iteration)

    def bound_waits(self, max_spin: int) -> None:
        """Bound every wait this loop emits (see :func:`bound_waits`)."""
        original = self.make_process
        self.make_process = (  # type: ignore[method-assign]
            lambda iteration: bound_waits(original(iteration), max_spin))
        original_replay = self.make_replay_process
        self.make_replay_process = (  # type: ignore[method-assign]
            lambda iteration, checkpoint=None: bound_waits(
                original_replay(iteration, checkpoint), max_spin))

    def initial_memory(self) -> Dict[Address, Any]:
        """Pre-run contents of shared memory (the seed, by default)."""
        return dict(self.seed_memory)

    def arrays(self) -> List[str]:
        """Names of the program arrays this loop touches."""
        return sorted({ref.array for stmt in self.loop.body
                       for _kind, ref in stmt.refs()})

    def extract_final_state(self, result: RunResult) -> Dict[Address, Any]:
        """Program-visible array contents after the run.

        For storage-preserving schemes this is the final memory filtered
        to the loop's arrays; the instance-based scheme overrides it
        with a copy-out from its renamed storage (the
        allocation/reclamation cost of single-assignment, the paper's
        [16]).
        """
        names = set(self.arrays())
        return {addr: value for addr, value in result.final_memory.items()
                if addr[0] in names}

    # -- metadata ---------------------------------------------------------

    @property
    @abstractmethod
    def sync_vars(self) -> int:
        """How many synchronization variables the scheme uses."""

    # -- validation ---------------------------------------------------------

    def validate(self, result: RunResult) -> None:
        """Check a finished run against the sequential semantics.

        Raises :class:`repro.sim.validate.ValidationError` on any
        divergence.  Requires the run to have been executed with
        ``record_trace=True``.
        """
        expected_final, expected_reads = self.loop.execute_sequential(
            self.initial_memory())
        if result.extra.get("recovery", {}).get("reincarnations"):
            # Crash replay legitimately duplicates tagged accesses; the
            # relaxed check still pins every read to sequential values.
            check_reads_match_recovered(result.trace, expected_reads)
        else:
            check_reads_match_sequential(result.trace, expected_reads)
        if not self.renames_storage:
            check_final_state(result.final_memory, expected_final,
                              self.arrays())
            check_dependence_instances(result.trace,
                                       self.graph.dependence_instances())


class SyncScheme(ABC):
    """Factory that instruments loops with one synchronization style."""

    #: registry name, e.g. "process-oriented"
    name: str = ""
    #: can a synchronization variable be indexed by a run-time value?
    #: (False for Alliant Advance/Await: "The index to a synchronization
    #: register accessed by Alliant's Advance and Await must be a
    #: constant.")
    supports_variable_index: bool = True

    @abstractmethod
    def instrument(self, loop: Loop,
                   graph: Optional[DependenceGraph] = None) -> InstrumentedLoop:
        """Wrap ``loop`` in this scheme's synchronization operations."""

    def run(self, loop: Loop, config: Optional[RunConfig] = None,
            **legacy: Any) -> RunResult:
        """Convenience: instrument, simulate, optionally validate.

        The run is described by a single :class:`RunConfig`::

            scheme.run(loop, config=RunConfig(machine=m, wait_bound=500))

        The pre-RunConfig keyword arguments (``graph``, ``machine``,
        ``validate``, ``wait_bound``) still work but are deprecated:
        they emit a :class:`DeprecationWarning` and are folded into an
        equivalent config, so both spellings return identical results.
        """
        if legacy:
            unknown = set(legacy) - {"graph", "machine", "validate",
                                     "wait_bound"}
            if unknown:
                raise TypeError(
                    f"run() got unexpected keyword arguments "
                    f"{sorted(unknown)}")
            if config is not None:
                raise TypeError(
                    "pass either config= or the deprecated individual "
                    "kwargs, not both")
            warnings.warn(
                "scheme.run(loop, graph=..., machine=..., validate=..., "
                "wait_bound=...) is deprecated; pass a single "
                "RunConfig: scheme.run(loop, config=RunConfig(...))",
                DeprecationWarning, stacklevel=2)
            config = RunConfig(**legacy)
        config = config or RunConfig()
        machine = config.machine or Machine(MachineConfig())
        if config.metrics == "counters" and machine.config.metrics != \
                "counters":
            # Fast path: same machine, per-event collection disabled.
            # Validation needs the trace, so it is skipped by contract.
            from dataclasses import replace as dc_replace
            machine = Machine(dc_replace(machine.config,
                                         record_trace=False,
                                         metrics="counters"))
        instrumented = self.instrument(loop, config.graph)
        if config.wait_bound is not None:
            instrumented.bound_waits(config.wait_bound)
        result = machine.run(instrumented)
        if config.validate and config.metrics != "counters":
            if not machine.config.record_trace:
                raise ValueError("validation requires record_trace=True")
            instrumented.validate(result)
        return result
