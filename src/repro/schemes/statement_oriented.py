"""The statement-oriented scheme (section 3.2): Alliant Advance/Await.

Each source statement ``Sa`` gets one *statement counter* ``SC[a]``
shared by every iteration.  After process ``i`` executes ``Sa`` it
performs ``Advance(a)``: wait until ``SC[a] = i-1``, then set it to
``i``.  "Hence, when sc=i, all of the process j, j<i, must have
completed the execution of Sa" -- the update order is strictly
sequential, which is exactly the *horizontal sharing* the paper
criticizes: one slow iteration stalls the Advance chain of every later
iteration, even when the data dependences themselves would allow
progress.

Before a sink statement ``Sb`` with source distance D, process ``i``
performs ``Await(D, a)``: wait until ``SC[a] >= i - D``.

Counters live on the broadcast synchronization bus (the Alliant
concurrency control bus): local-image waits are free, Advances cost one
broadcast.  Because Advance serializes each statement's completions, the
stronger *monotonic* coverage pruning is sound here (a later iteration's
Advance implies all earlier iterations are done).
"""

from __future__ import annotations

from typing import Any, Dict, Generator, List, Optional

from ..depend.graph import DependenceGraph, SyncArc
from ..depend.model import Loop
from ..sim.memory import SharedMemory
from ..sim.ops import Fence, MemWrite, SyncWrite, WaitUntil
from ..sim.sync_bus import BroadcastSyncFabric, SyncFabric
from ..sim.validate import mix
from .base import (_CLEAR_TAG, InstrumentedLoop, SyncScheme,
                   compile_statement, execute_statement)


def at_least(threshold: int):
    """Monotone predicate: counter value >= ``threshold``."""
    predicate = _AT_LEAST.get(threshold)
    if predicate is None:
        def predicate(value: int, _threshold: int = threshold) -> bool:
            return value >= _threshold
        _AT_LEAST[threshold] = predicate
    return predicate


#: threshold -> predicate memo; thresholds are small ints, and reusing
#: the closure keeps compiled op streams allocation-free
_AT_LEAST: Dict[int, Any] = {}

_FENCE = Fence()


class StatementOrientedLoop(InstrumentedLoop):
    """A loop synchronized with per-statement counters."""

    def __init__(self, loop: Loop, graph: DependenceGraph,
                 arcs: List[SyncArc], charge_init: bool) -> None:
        super().__init__(loop, graph)
        self.arcs = arcs
        self.charge_init = charge_init
        self.source_sids: List[str] = [
            stmt.sid for stmt in loop.body
            if any(arc.src == stmt.sid for arc in arcs)]
        #: statement counters are allocated first on a fresh fabric, so
        #: their variable ids are known at instrument time (asserted in
        #: build_fabric); that lets the whole clean-run op stream be
        #: compiled here, once, instead of per run.
        self._sc_vars: Dict[str, int] = {
            sid: var for var, sid in enumerate(self.source_sids)}
        self._first_pid = 1
        self._programs: Dict[int, list] = {}
        self.recompile()

    def recompile(self) -> None:
        """Rebuild the per-iteration op streams (after arc mutation)."""
        self._programs = {pid: self._compile(pid)
                          for pid in self.iterations}

    def build_fabric(self, memory: SharedMemory) -> SyncFabric:
        fabric = BroadcastSyncFabric()
        initial = self._first_pid - 1  # "sc is set to k-1 if the first
        for sid in self.source_sids:   # iteration is k"
            var = fabric.alloc(1, init=initial)[0]
            assert var == self._sc_vars[sid], "fabric allocation drifted"
        return fabric

    def prologue(self) -> List[Generator]:
        if not self.charge_init or not self.source_sids:
            return []

        def init() -> Generator:
            for sid in self.source_sids:
                yield SyncWrite(self._sc_vars[sid], self._first_pid - 1)

        return [init()]

    @property
    def sync_vars(self) -> int:
        return len(self.source_sids)

    # ------------------------------------------------------------------

    def _advance(self, sid: str, pid: int,
                 checkpoint: Optional[dict] = None) -> Generator:
        """wait until SC[sid] = pid-1; set SC[sid] to pid."""
        var = self._sc_vars[sid]
        yield WaitUntil(var, at_least(pid - 1),
                        reason=f"Advance({sid}) by p{pid}")
        yield SyncWrite(var, pid, coverable=False, checkpoint=checkpoint)

    def _await(self, sid: str, dist: int, pid: int) -> Generator:
        """wait until SC[sid] >= pid - dist (skip past loop boundary)."""
        if pid - dist < self._first_pid:
            return
        yield WaitUntil(self._sc_vars[sid], at_least(pid - dist),
                        reason=f"Await({dist},{sid}) by p{pid}")

    def _compile(self, pid: int) -> list:
        """Compile ``pid``'s clean-run op stream (see ``_sc_vars`` note).

        One entry per body statement: ``(awaits, compiled, advance)``
        where ``awaits`` is the tuple of Await ops, ``compiled`` the
        statement instance's compiled stream (None when the guard skips
        it) and ``advance`` the ``(wait, write)`` Advance pair (None for
        non-sources).  Exactly the stream :meth:`_body` emits with no
        replay skip and checkpoints off.
        """
        index = self.loop.index_of_lpid(pid)
        program = []
        for stmt in self.loop.body:
            awaits = tuple(
                WaitUntil(self._sc_vars[arc.src],
                          at_least(pid - arc.distance),
                          reason=f"Await({arc.distance},{arc.src}) "
                                 f"by p{pid}")
                for arc in self.arcs
                if arc.dst == stmt.sid
                and pid - arc.distance >= self._first_pid)
            compiled = (compile_statement(self.loop, stmt, index, pid)
                        if stmt.executes_at(index) else None)
            advance = None
            if stmt.sid in self._sc_vars:
                var = self._sc_vars[stmt.sid]
                advance = (
                    WaitUntil(var, at_least(pid - 1),
                              reason=f"Advance({stmt.sid}) by p{pid}"),
                    SyncWrite(var, pid, coverable=False))
            program.append((awaits, compiled, advance))
        return program

    def _fast_body(self, pid: int) -> Generator:
        """Replay the precompiled stream (clean runs, no checkpoints).

        The statement body inlines ``CompiledStatement.stream`` (same op
        sequence) to spare the ``yield from`` frame hop per op.
        """
        for awaits, compiled, advance in self._programs[pid]:
            for op in awaits:
                yield op
            if compiled is not None:
                yield compiled.tag_op
                values: List[Any] = []
                for read_op in compiled.read_ops:
                    value = yield read_op
                    values.append(value)
                yield compiled.compute_op
                result = mix(compiled.sid, compiled.lpid, values)
                for addr in compiled.write_addrs:
                    yield MemWrite(addr, result)
                yield _CLEAR_TAG
            if advance is not None:
                yield _FENCE
                yield advance[0]
                yield advance[1]

    def make_process(self, pid: int) -> Generator:
        if self.checkpoints_enabled:
            return self._body(pid)
        return self._fast_body(pid)

    def make_replay_process(self, iteration: int,
                            checkpoint: Optional[dict] = None) -> Generator:
        """Resume an iteration past its already-Advanced statements.

        An Advance is the scheme's non-idempotent signal (it transfers
        the counter from ``pid-1`` to ``pid`` exactly once in the
        chain), so each carries a checkpoint naming the next body
        position.  Positions before it are skipped entirely on replay;
        the rest re-execute, which is safe because an un-Advanced
        statement's successors are still blocked on the counter.
        """
        skip = 0 if checkpoint is None else checkpoint["stmt"]
        return self._body(iteration, skip_stmt=skip)

    def _ckpt(self, pid: int, stmt_pos: int) -> Optional[dict]:
        if not self.checkpoints_enabled:
            return None
        return {"iter": pid, "stmt": stmt_pos}

    def _body(self, pid: int, skip_stmt: int = 0) -> Generator:
        index = self.loop.index_of_lpid(pid)
        for stmt_pos, stmt in enumerate(self.loop.body):
            if stmt_pos < skip_stmt:
                continue  # Advance already landed for this position
            # sink first: Await every incoming arc
            for arc in self.arcs:
                if arc.dst == stmt.sid:
                    yield from self._await(arc.src, arc.distance, pid)
            executed = stmt.executes_at(index)
            if executed:
                yield from execute_statement(self.loop, stmt, index, pid)
            if stmt.sid in self._sc_vars:
                # Fence even when the guard skipped the statement: arc
                # pruning treats Advance as proof that everything
                # program-order-before it in this process is complete
                # AND visible, so earlier statements' posted writes must
                # drain before the counter moves.  (A fence with no
                # outstanding writes is free.)
                yield Fence()
                # Advance runs on every path (Example 3's rule), or sinks
                # of skipped sources would deadlock the Advance chain.
                yield from self._advance(stmt.sid, pid,
                                         self._ckpt(pid, stmt_pos + 1))


class StatementOrientedScheme(SyncScheme):
    """Factory for statement-counter synchronization.

    ``prune`` defaults to ``"monotonic"``, which is sound for this scheme
    (see module docstring); pass ``"exact"`` or ``"none"`` for ablations.
    """

    name = "statement-oriented"
    supports_variable_index = False

    def __init__(self, prune: str = "monotonic",
                 charge_init: bool = True) -> None:
        self.prune = prune
        self.charge_init = charge_init

    def instrument(self, loop: Loop,
                   graph: Optional[DependenceGraph] = None,
                   arcs: Optional[List[SyncArc]] = None
                   ) -> StatementOrientedLoop:
        graph = graph or DependenceGraph(loop)
        if arcs is None:
            if self.prune == "none":
                arcs = graph.sync_arcs()
            else:
                arcs = graph.pruned_sync_arcs(mode=self.prune)
        return StatementOrientedLoop(loop, graph, arcs,
                                     charge_init=self.charge_init)
