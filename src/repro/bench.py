"""Engine microbenchmark harness: ``python -m repro bench-engine``.

Every sweep cell bottoms out in the :mod:`repro.sim.engine` event loop,
so its per-event cost multiplies across the whole lab stack.  This
module measures that cost directly: it expands the named preset grids
(the same ``repro.lab`` specs the sweeps run), simulates every cell
serially, and reports **events per second** -- engine events processed
divided by wall-clock time spent inside ``Machine.run`` -- per preset
and metrics mode.

Results append to a JSON *trajectory* (``BENCH_engine.json`` by
convention): one schema-versioned entry per invocation, so the file
accumulates a performance history across PRs.  Because raw events/sec
is hardware-bound, every entry also records a ``calibration`` score (a
fixed pure-Python workload timed on the same host); the regression
check compares calibration-normalized throughput, so a slower CI
machine does not masquerade as a code regression.

Two metrics modes are measured:

``full``
    ``record_trace=True`` -- the default everywhere; per-access records
    and the event stream are collected.
``counters``
    the opt-in fast path (``metrics="counters"``): only end-of-run
    counters, no per-event collection.  On engine versions that predate
    the knob this falls back to ``record_trace=False``.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import platform
import sys
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .lab.apps import build_app
from .lab.spec import AUTO_SCHEME, SweepCell, make_spec
from .schemes import make_scheme
from .sim.machine import Machine, MachineConfig

#: bump when the shape of a trajectory entry changes
BENCH_SCHEMA_VERSION = 1

#: presets the default invocation measures (the ISSUE's fig3.x target)
DEFAULT_PRESETS = ("fig3.1", "fig3.2")

DEFAULT_MODES = ("full", "counters")


def _machine_supports_metrics() -> bool:
    """Does this engine version expose the ``metrics`` knob?"""
    return any(f.name == "metrics"
               for f in dataclasses.fields(MachineConfig))


class _CountingHeap:
    """A ``heapq`` stand-in that counts pops.

    Fallback event counter for engine versions that predate
    ``Machine.last_run_info``: swapped into the engine module's
    namespace for the duration of one run, it observes every queue pop
    (== every processed event) without touching the global module.
    """

    def __init__(self, real: Any) -> None:
        self._real = real
        self.pops = 0

    def heappop(self, heap: list) -> Any:
        self.pops += 1
        return self._real.heappop(heap)

    def __getattr__(self, name: str) -> Any:
        return getattr(self._real, name)


def _run_cell(cell: SweepCell, mode: str) -> Tuple[float, int, int]:
    """Simulate one grid cell; return (wall seconds, events, makespan).

    Only ``Machine.run`` is timed -- instrumentation and graph building
    are front-end cost, not engine cost.  Validation is skipped for the
    same reason (it replays the trace, it does not run the engine).
    """
    loop = build_app(cell.app, dict(cell.app_params))
    scheme = make_scheme(cell.scheme)
    kwargs: Dict[str, Any] = dict(
        processors=cell.processors, schedule=cell.schedule,
        record_trace=(mode == "full"))
    if _machine_supports_metrics():
        kwargs["metrics"] = mode
    machine = Machine(MachineConfig(**kwargs))
    instrumented = scheme.instrument(loop)
    if cell.wait_bound is not None:
        instrumented.bound_waits(cell.wait_bound)

    counter = None
    info = getattr(machine, "last_run_info", None)
    if info is None:
        # Pre-last_run_info engine: count queue pops via a module-local
        # heapq shim (restored in the finally below).
        from .sim import engine as engine_mod
        counter = _CountingHeap(engine_mod.heapq)
        engine_mod.heapq = counter  # type: ignore[assignment]
    try:
        start = time.perf_counter()
        result = machine.run(instrumented)
        wall = time.perf_counter() - start
    finally:
        if counter is not None:
            from .sim import engine as engine_mod
            engine_mod.heapq = counter._real  # type: ignore[assignment]
    if counter is not None:
        events = counter.pops
    else:
        events = int(machine.last_run_info["events_processed"])
    return wall, events, result.makespan


def calibration_score(repeats: int = 3) -> float:
    """Relative speed of this host on a fixed pure-Python workload.

    Returns iterations/second of a deterministic arithmetic loop (best
    of ``repeats``).  Dividing a measured events/sec by this score
    yields a hardware-normalized throughput, comparable across hosts.
    """
    n = 200_000
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        acc = 0
        for i in range(n):
            acc += i * i
        best = min(best, time.perf_counter() - start)
    assert acc  # keep the loop honest
    return n / best


def bench_presets(presets: Sequence[str] = DEFAULT_PRESETS,
                  modes: Sequence[str] = DEFAULT_MODES,
                  repeats: int = 1) -> Dict[str, Dict[str, Dict[str, Any]]]:
    """Measure every preset x mode; return nested result dicts.

    ``results[preset][mode]`` holds ``wall_s`` (best total over
    ``repeats``), ``events``, ``events_per_s``, ``cells`` and
    ``cycles`` (summed simulated makespan).  Event counts are exact and
    deterministic; only the wall clock varies between repeats.
    """
    results: Dict[str, Dict[str, Dict[str, Any]]] = {}
    for preset in presets:
        spec = make_spec(preset)
        cells = [cell for cell in spec.cells()
                 if cell.scheme != AUTO_SCHEME and cell.plan is None]
        results[preset] = {}
        for mode in modes:
            best_wall = float("inf")
            events = cycles = 0
            for _ in range(max(1, repeats)):
                wall = 0.0
                events = cycles = 0
                for cell in cells:
                    cell_wall, cell_events, makespan = _run_cell(cell, mode)
                    wall += cell_wall
                    events += cell_events
                    cycles += makespan
                best_wall = min(best_wall, wall)
            results[preset][mode] = {
                "cells": len(cells),
                "wall_s": round(best_wall, 6),
                "events": events,
                "cycles": cycles,
                "events_per_s": round(events / best_wall, 1),
            }
    return results


def make_entry(presets: Sequence[str] = DEFAULT_PRESETS,
               modes: Sequence[str] = DEFAULT_MODES,
               note: str = "", repeats: int = 1) -> Dict[str, Any]:
    """One schema-versioned trajectory entry for the given grids."""
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "note": note,
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "calibration": round(calibration_score(), 1),
        "presets": bench_presets(presets, modes, repeats=repeats),
    }


def load_trajectory(path: pathlib.Path) -> Dict[str, Any]:
    """Read a trajectory file; an absent file is an empty trajectory."""
    if not path.exists():
        return {"schema_version": BENCH_SCHEMA_VERSION, "entries": []}
    data = json.loads(path.read_text())
    if data.get("schema_version") != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path}: unsupported bench schema "
            f"{data.get('schema_version')!r}")
    return data


def append_entry(path: pathlib.Path, entry: Dict[str, Any]) -> None:
    """Append ``entry`` to the trajectory at ``path`` (atomic rewrite)."""
    data = load_trajectory(path)
    data["entries"].append(entry)
    tmp = path.with_suffix(path.suffix + ".tmp")
    tmp.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    tmp.replace(path)


def check_regression(entry: Dict[str, Any], baseline: Dict[str, Any],
                     min_ratio: float = 0.8) -> List[str]:
    """Compare ``entry`` against the last matching baseline entries.

    For every (preset, mode) the entry measured, find the most recent
    baseline entry that measured the same pair and compare
    *calibration-normalized* events/sec.  Returns a list of regression
    messages (empty: no regression worse than ``min_ratio``).
    """
    problems: List[str] = []
    cal = float(entry["calibration"])
    for preset, by_mode in entry["presets"].items():
        for mode, current in by_mode.items():
            ref = None
            for old in reversed(baseline.get("entries", [])):
                old_modes = old.get("presets", {}).get(preset, {})
                if mode in old_modes:
                    ref = (old_modes[mode], float(old["calibration"]))
                    break
            if ref is None:
                continue
            ref_result, ref_cal = ref
            current_norm = current["events_per_s"] / cal
            ref_norm = ref_result["events_per_s"] / ref_cal
            ratio = current_norm / ref_norm
            if ratio < min_ratio:
                problems.append(
                    f"{preset}/{mode}: normalized events/sec fell to "
                    f"{ratio:.2f}x of baseline "
                    f"({current['events_per_s']:.0f}/s now vs "
                    f"{ref_result['events_per_s']:.0f}/s then; "
                    f"calibration {cal:.0f} vs {ref_cal:.0f})")
    return problems


def format_entry(entry: Dict[str, Any]) -> str:
    """Human-readable table for one trajectory entry."""
    lines = [f"engine bench ({entry['timestamp']}, "
             f"python {entry['python']}, "
             f"calibration {entry['calibration']:.0f})"]
    if entry.get("note"):
        lines[0] += f" -- {entry['note']}"
    lines.append(f"{'preset':<14} {'mode':<9} {'cells':>5} {'events':>9} "
                 f"{'wall s':>8} {'events/s':>10}")
    for preset in sorted(entry["presets"]):
        for mode, r in sorted(entry["presets"][preset].items()):
            lines.append(
                f"{preset:<14} {mode:<9} {r['cells']:>5} {r['events']:>9} "
                f"{r['wall_s']:>8.3f} {r['events_per_s']:>10.0f}")
    return "\n".join(lines)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for ``python -m repro bench-engine``."""
    from .cli import make_parser, add_common_options

    parser = make_parser(
        "repro bench-engine",
        "Measure engine throughput (events/sec) over the preset grids "
        "and append the numbers to a benchmark trajectory.")
    add_common_options(parser)
    parser.add_argument(
        "--preset", action="append", default=None, metavar="NAME",
        help="preset grid to measure (repeatable; default fig3.1 + "
             "fig3.2)")
    parser.add_argument(
        "--mode", action="append", default=None,
        choices=["full", "counters"],
        help="metrics mode to measure (repeatable; default both)")
    parser.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="time each preset N times and keep the best wall clock")
    parser.add_argument(
        "--note", default="", metavar="TEXT",
        help="free-form label stored in the trajectory entry")
    parser.add_argument(
        "--check", type=pathlib.Path, default=None, metavar="PATH",
        help="compare against the trajectory at PATH and exit non-zero "
             "on a calibration-normalized regression")
    parser.add_argument(
        "--min-ratio", type=float, default=0.8, metavar="R",
        help="regression threshold for --check: fail when normalized "
             "events/sec drops below R x baseline (default 0.8)")
    args = parser.parse_args(argv)

    presets = tuple(args.preset or DEFAULT_PRESETS)
    modes = tuple(args.mode or DEFAULT_MODES)
    entry = make_entry(presets, modes, note=args.note,
                       repeats=args.repeat)
    print(format_entry(entry))

    status = 0
    if args.check is not None:
        baseline = load_trajectory(args.check)
        problems = check_regression(entry, baseline,
                                    min_ratio=args.min_ratio)
        for problem in problems:
            print(f"REGRESSION: {problem}", file=sys.stderr)
        if problems:
            status = 1
        else:
            print("regression check: ok "
                  f"(threshold {args.min_ratio:.2f}x, "
                  f"baseline {args.check})")
    if args.json is not None:
        append_entry(args.json, entry)
        print(f"appended entry to {args.json}")
    return status


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
