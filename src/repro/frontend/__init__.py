"""Mini-Fortran front-end: write kernels the way the paper prints them."""

from .parser import ParseError, parse_affine, parse_loop, parse_program
from .render import render_affine, render_loop, render_ref, render_statement

__all__ = ["ParseError", "parse_affine", "parse_loop", "parse_program",
           "render_affine",
           "render_loop", "render_ref", "render_statement"]
