"""Render a :class:`~repro.depend.model.Loop` back to mini-Fortran.

The inverse of :func:`repro.frontend.parser.parse_loop` for loops in the
parseable subset (affine refs, no guards): used for round-trip property
tests and for printing kernels the way the paper prints them.
"""

from __future__ import annotations

from typing import List

from ..depend.model import AffineExpr, ArrayRef, Loop, Statement

_INDEX_NAMES = "IJKLMN"


def render_affine(expr: AffineExpr) -> str:
    """``AffineExpr`` -> ``2*I-J+3`` style text."""
    parts: List[str] = []
    for position, coefficient in enumerate(expr.coefs):
        if coefficient == 0:
            continue
        name = _INDEX_NAMES[position]
        if coefficient == 1:
            term = name
        elif coefficient == -1:
            term = f"-{name}"
        else:
            term = f"{coefficient}*{name}"
        if parts and not term.startswith("-"):
            parts.append("+")
        parts.append(term)
    if expr.const or not parts:
        if parts and expr.const >= 0:
            parts.append("+")
        parts.append(str(expr.const))
    return "".join(parts)


def render_ref(ref: ArrayRef) -> str:
    """``ArrayRef`` -> ``A(I+3)`` / ``B(I-1,J)`` style text."""
    inner = ",".join(render_affine(expr) for expr in ref.subscripts)
    return f"{ref.array}({inner})"


def render_statement(stmt: Statement) -> str:
    """One labelled assignment line; ``...`` stands for non-array work."""
    lhs = " , ".join(render_ref(ref) for ref in stmt.writes) or "..."
    rhs = " + ".join(render_ref(ref) for ref in stmt.reads) or "..."
    return f"{stmt.sid}: {lhs} = {rhs}"


def render_loop(loop: Loop) -> str:
    """Loop IR -> the DO-nest text the parser accepts.

    Raises for loops outside the parseable subset (guarded statements
    have no surface syntax).
    """
    for stmt in loop.body:
        if stmt.guard is not None:
            raise ValueError(
                f"statement {stmt.sid!r} is guarded; guards have no "
                f"mini-Fortran syntax")
    lines: List[str] = []
    for depth, (lo, hi) in enumerate(loop.bounds):
        indent = "  " * depth
        lines.append(f"{indent}DO {_INDEX_NAMES[depth]} = {lo}, {hi}")
    body_indent = "  " * loop.depth
    for stmt in loop.body:
        lines.append(body_indent + render_statement(stmt))
    for depth in reversed(range(loop.depth)):
        lines.append("  " * depth + "END DO")
    return "\n".join(lines)
