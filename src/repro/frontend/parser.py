"""A miniature Fortran-style front-end for the loop IR.

The paper writes its kernels as Fortran ``DO`` loops (Figs. 2.1, 5.1,
5.2).  This module parses that surface syntax into
:class:`repro.depend.model.Loop` so kernels can be written the way the
paper prints them::

    DO I = 1, N
      S1: A(I+3) = ...
      S2: ...    = A(I+1)
    END DO

Grammar (case-insensitive keywords, one statement per line):

* ``DO <index> = <lo>, <hi>`` opens a loop level; levels nest.  Bounds
  are integers or previously bound symbols (``N = 100`` style bindings
  are passed to :func:`parse_loop` as keyword arguments).
* A statement line is ``[label:] <lhs> = <rhs>`` where each side is a
  comma/``+`` separated mixture of array references ``NAME(expr, ...)``
  and don't-care ``...`` tokens.  References on the left are writes,
  references on the right are reads.
* Subscript expressions are affine in the loop indices:
  ``I``, ``I+3``, ``2*I-1``, ``J`` etc.
* ``END DO`` closes the innermost level.

Statements get ids from their labels (``S1:``) or ``S<n>`` by position.
The parser is intentionally small: it covers the paper's loop shapes,
not Fortran.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Sequence, Tuple

from ..depend.model import AffineExpr, ArrayRef, Loop, Statement


class ParseError(ValueError):
    """The source text is not in the supported mini-Fortran subset."""

    def __init__(self, message: str, line_number: int, line: str) -> None:
        super().__init__(f"line {line_number}: {message}: {line.strip()!r}")
        self.line_number = line_number
        self.line = line


_DO_RE = re.compile(
    r"^\s*DO\s+([A-Za-z_]\w*)\s*=\s*([^,]+)\s*,\s*(.+?)\s*$",
    re.IGNORECASE)
_END_RE = re.compile(r"^\s*END\s*DO\s*$", re.IGNORECASE)
_LABEL_RE = re.compile(r"^\s*([A-Za-z_]\w*)\s*:\s*(.*)$")
_REF_RE = re.compile(r"([A-Za-z_]\w*)\s*\(([^()]*)\)")
_TERM_RE = re.compile(r"^\s*(?:(\d+)\s*\*\s*)?([A-Za-z_]\w*)\s*$")


def _parse_bound(text: str, bindings: Dict[str, int],
                 line_number: int, line: str) -> int:
    token = text.strip()
    if re.fullmatch(r"-?\d+", token):
        return int(token)
    upper = token.upper()
    for name, value in bindings.items():
        if name.upper() == upper:
            return value
    raise ParseError(f"unbound loop bound {token!r}", line_number, line)


def parse_affine(text: str, index_names: Sequence[str],
                 line_number: int = 0, line: str = "") -> AffineExpr:
    """Parse one affine subscript like ``I``, ``I+3``, ``2*I-J+1``."""
    coefs = [0] * len(index_names)
    const = 0
    upper_names = [name.upper() for name in index_names]
    # split into signed terms
    normalized = text.replace("-", "+-").replace(" ", "")
    if normalized.startswith("+"):
        normalized = normalized[1:]
    if not normalized:
        raise ParseError("empty subscript", line_number, line)
    for term in normalized.split("+"):
        if not term:
            raise ParseError("malformed subscript", line_number, line)
        sign = 1
        if term.startswith("-"):
            sign = -1
            term = term[1:]
        if re.fullmatch(r"\d+", term):
            const += sign * int(term)
            continue
        match = _TERM_RE.match(term)
        if not match:
            raise ParseError(f"unsupported subscript term {term!r}",
                             line_number, line)
        coefficient = int(match.group(1)) if match.group(1) else 1
        name = match.group(2).upper()
        if name not in upper_names:
            raise ParseError(f"unknown index variable {match.group(2)!r}",
                             line_number, line)
        coefs[upper_names.index(name)] += sign * coefficient
    return AffineExpr(tuple(coefs), const)


def _parse_refs(text: str, index_names: Sequence[str],
                line_number: int, line: str) -> List[ArrayRef]:
    refs = []
    for match in _REF_RE.finditer(text):
        array = match.group(1)
        subscripts = tuple(
            parse_affine(part, index_names, line_number, line)
            for part in match.group(2).split(","))
        refs.append(ArrayRef(array, subscripts))
    return refs


def parse_loop(source: str, name: str = "parsed", cost: int = 10,
               array_shapes: Optional[Dict[str, Tuple[int, ...]]] = None,
               **bindings: int) -> Loop:
    """Parse a mini-Fortran ``DO`` nest into a :class:`Loop`.

    ``bindings`` supplies symbolic bounds, e.g.
    ``parse_loop(text, N=100)``.  ``cost`` is the per-statement compute
    cost.  When ``array_shapes`` is omitted, shapes for multi-dimensional
    arrays are inferred from the loop bounds (each dimension sized to the
    maximum subscript value plus a margin for constant offsets).
    """
    index_names: List[str] = []
    bounds: List[Tuple[int, int]] = []
    body: List[Statement] = []
    depth_open = 0
    closed = False
    statement_count = 0

    for line_number, raw in enumerate(source.splitlines(), start=1):
        line = raw.split("!")[0]  # Fortran comment
        if not line.strip():
            continue
        if closed:
            raise ParseError("text after the outermost END DO",
                             line_number, line)

        do_match = _DO_RE.match(line)
        if do_match:
            if body:
                raise ParseError("DO after statements (only perfect "
                                 "nests are supported)", line_number, line)
            index_names.append(do_match.group(1))
            lo = _parse_bound(do_match.group(2), bindings, line_number,
                              line)
            hi = _parse_bound(do_match.group(3), bindings, line_number,
                              line)
            bounds.append((lo, hi))
            depth_open += 1
            continue

        if _END_RE.match(line):
            if depth_open == 0:
                raise ParseError("END DO without DO", line_number, line)
            depth_open -= 1
            if depth_open == 0:
                closed = True
            continue

        if depth_open == 0:
            raise ParseError("statement outside any DO loop",
                             line_number, line)

        label_match = _LABEL_RE.match(line)
        if label_match:
            sid = label_match.group(1)
            text = label_match.group(2)
            statement_count += 1
        else:
            statement_count += 1
            sid = f"S{statement_count}"
            text = line
        if "=" not in text:
            raise ParseError("statement has no assignment", line_number,
                             line)
        lhs, rhs = text.split("=", 1)
        writes = _parse_refs(lhs, index_names, line_number, line)
        reads = _parse_refs(rhs, index_names, line_number, line)
        if not writes and not reads:
            raise ParseError("statement references no arrays",
                             line_number, line)
        body.append(Statement(sid, writes=tuple(writes),
                              reads=tuple(reads), cost=cost))

    if depth_open != 0:
        raise ParseError("unclosed DO loop", len(source.splitlines()),
                         source.splitlines()[-1] if source.strip() else "")
    if not body:
        raise ParseError("loop has no statements", 0, source[:40])

    shapes = dict(array_shapes or {})
    if not shapes:
        shapes = _infer_shapes(body, bounds)
    return Loop(name, bounds=tuple(bounds), body=body,
                array_shapes=shapes)


def parse_program(source: str, cost: int = 10,
                  array_shapes: Optional[Dict[str, Tuple[int, ...]]] = None,
                  **bindings: int) -> List[Loop]:
    """Parse several top-level DO nests from one source text.

    Nests are delimited by their own (balanced) ``END DO``s; text between
    nests must be blank or comments.  Loops are named ``L1, L2, ...``
    unless a ``! name: <label>`` comment precedes the nest.
    """
    chunks: List[Tuple[str, List[str]]] = []
    current: List[str] = []
    pending_name: Optional[str] = None
    depth = 0
    for raw in source.splitlines():
        line = raw.split("!")[0]
        comment = raw.split("!", 1)[1].strip() if "!" in raw else ""
        if not line.strip():
            if comment.lower().startswith("name:"):
                pending_name = comment[5:].strip()
            continue
        current.append(raw)
        if _DO_RE.match(line):
            depth += 1
        elif _END_RE.match(line):
            depth -= 1
            if depth == 0:
                chunks.append((pending_name or f"L{len(chunks) + 1}",
                               current))
                current = []
                pending_name = None
    if current:
        raise ParseError("unterminated DO nest at end of program",
                         len(source.splitlines()), current[0])
    if not chunks:
        raise ParseError("program contains no DO nests", 0, source[:40])
    return [parse_loop("\n".join(lines), name=name, cost=cost,
                       array_shapes=array_shapes, **bindings)
            for name, lines in chunks]


def _infer_shapes(body: Sequence[Statement],
                  bounds: Sequence[Tuple[int, int]]
                  ) -> Dict[str, Tuple[int, ...]]:
    """Size each multi-dimensional array to cover every possible access."""
    shapes: Dict[str, Tuple[int, ...]] = {}
    import itertools
    corner_indices = list(itertools.product(*[(lo, hi)
                                              for lo, hi in bounds]))
    for stmt in body:
        for _kind, ref in stmt.refs():
            if len(ref.subscripts) < 2:
                continue  # 1-D arrays need no declared shape
            maxima = [0] * len(ref.subscripts)
            for corner in corner_indices:
                element = ref.element(corner)
                for dim, coordinate in enumerate(element):
                    maxima[dim] = max(maxima[dim], coordinate)
            current = shapes.get(ref.array,
                                 tuple(0 for _ in ref.subscripts))
            shapes[ref.array] = tuple(
                max(existing, coordinate + 1)
                for existing, coordinate in zip(current, maxima))
    return shapes
