"""Synchronization planning: loop + dependence graph -> Fig. 4.2(b).

Given a DOACROSS loop and its (pruned) synchronization arcs, this module
computes *where* the process-oriented primitives go:

* source statements are numbered 1..K in textual order; completing source
  ``k`` publishes step ``k`` (``set_PC(k)`` / ``mark_PC(k)``),
* the *last* source publishes by releasing the counter instead
  (``release_PC`` / ``transfer_PC``), whose value ``<pid+X, 0>`` exceeds
  every ``<pid, step>``,
* before each sink statement, one ``wait_PC(dist, step_of(source))`` per
  incoming arc,
* a statement that is both source and sink behaves as a sink first.

The plan is pure data; :mod:`repro.schemes.process_oriented` turns it
into executable instrumented processes.  For the paper's running example
the plan reproduces Fig. 4.2(b) exactly (see the unit tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..depend.graph import DependenceGraph, SyncArc
from ..depend.model import Loop


@dataclass(frozen=True)
class PlannedWait:
    """One ``wait_PC(dist, step)`` to execute before a sink statement."""

    dist: int
    step: int
    #: source statement, for readable plans and traces
    src: str

    def __str__(self) -> str:
        return f"wait_PC({self.dist},{self.step})  /* {self.src} */"


@dataclass(frozen=True)
class StatementPlan:
    """Synchronization actions wrapped around one statement."""

    sid: str
    waits: Tuple[PlannedWait, ...]
    #: step to publish after this statement (None: not a source)
    source_step: Optional[int]
    #: True when publication is by releasing/transferring the counter
    is_last_source: bool


@dataclass
class SyncPlan:
    """Complete synchronization plan for one DOACROSS loop."""

    loop: Loop
    arcs: List[SyncArc]
    statements: List[StatementPlan]
    step_of: Dict[str, int]
    n_sources: int

    @property
    def last_source(self) -> Optional[str]:
        for plan in self.statements:
            if plan.is_last_source:
                return plan.sid
        return None

    @property
    def max_wait_distance(self) -> int:
        """The farthest-back process any sink waits on (bounds X)."""
        return max((w.dist for plan in self.statements for w in plan.waits),
                   default=0)

    def pseudocode(self) -> str:
        """Render the plan the way Fig. 4.2(b) prints the loop body."""
        lines = [f"doacross i = {self.loop.bounds[0][0]}, "
                 f"{self.loop.bounds[0][1]}"]
        for plan in self.statements:
            for wait in plan.waits:
                lines.append(f"  wait_PC({wait.dist}, {wait.step});"
                             f"  /* until i-{wait.dist} completes "
                             f"{wait.src} */")
            lines.append(f"  {plan.sid}(i);")
            if plan.source_step is not None:
                if plan.is_last_source:
                    lines.append("  release_PC();  /* last source */")
                else:
                    lines.append(f"  set_PC({plan.source_step});")
        lines.append("end doacross")
        return "\n".join(lines)


def build_sync_plan(loop: Loop,
                    graph: Optional[DependenceGraph] = None,
                    prune: str = "exact",
                    arcs: Optional[List[SyncArc]] = None) -> SyncPlan:
    """Compute the process-oriented synchronization plan for ``loop``.

    ``prune`` selects the coverage-pruning mode (see
    :meth:`repro.depend.graph.DependenceGraph.pruned_sync_arcs`); pass
    ``prune="none"`` to enforce every arc (used by ablation benches).
    An explicit ``arcs`` list overrides pruning entirely -- the
    redundant-sync eliminator uses it to plan from a reduced arc set.
    """
    graph = graph or DependenceGraph(loop)
    if arcs is None:
        if prune == "none":
            arcs = graph.sync_arcs()
        else:
            arcs = graph.pruned_sync_arcs(mode=prune)

    source_sids = [stmt.sid for stmt in loop.body
                   if any(arc.src == stmt.sid for arc in arcs)]
    step_of = {sid: number for number, sid in enumerate(source_sids, start=1)}
    n_sources = len(source_sids)
    last_source = source_sids[-1] if source_sids else None

    statements: List[StatementPlan] = []
    for stmt in loop.body:
        incoming = [arc for arc in arcs if arc.dst == stmt.sid]
        waits = tuple(sorted(
            (PlannedWait(dist=arc.distance, step=step_of[arc.src],
                         src=arc.src)
             for arc in incoming),
            key=lambda w: (w.step, w.dist)))
        statements.append(StatementPlan(
            sid=stmt.sid,
            waits=waits,
            source_step=step_of.get(stmt.sid),
            is_last_source=(stmt.sid == last_source)))
    return SyncPlan(loop=loop, arcs=list(arcs), statements=statements,
                    step_of=step_of, n_sources=n_sources)
