"""The improved process-oriented primitives of Fig. 4.3.

The basic scheme makes every process ``get_PC`` before its first source
statement, even when the counter is still owned by process ``pid - X``.
The improved primitives defer that wait:

``load_index(pid)``
    remember ``myPC`` and clear the local ``owned`` flag (free: both live
    in per-processor registers, section 6).
``mark_pc(step)``
    if the counter has not been transferred to us yet, *skip* the update
    and keep going; otherwise publish the step and set ``owned``.
``transfer_pc()``
    acquire the counter if still not owned (this is the only place the
    improved scheme can block on ownership), then release it to
    ``pid + X``.  Every sink of this process eventually proceeds because
    the released value ``<pid+X, 0>`` exceeds ``<pid, step>`` for all
    steps.

Skipped marks are the improvement: they remove broadcast writes and
ownership waits from the critical path; correctness is preserved because
``transfer_pc`` always signs off for the whole process.
"""

from __future__ import annotations

from typing import Generator, Optional

from ..sim.ops import SyncRead, WaitUntil
from .process_counter import ProcessCounterFile, pc_at_least


class ImprovedPrimitives:
    """Per-process state (``myPC``, ``owned``) plus the three primitives.

    One instance per process instance; create it where the paper calls
    ``load_index`` ("in fact, load_index can be the first statement of
    the loop body").
    """

    def __init__(self, counters: ProcessCounterFile, pid: int) -> None:
        self.counters = counters
        self.pid = pid
        self.owned = False
        self.last_step = 0
        #: statistics: marks skipped because ownership had not arrived
        self.skipped_marks = 0

    def mark_pc(self, step: int,
                checkpoint: Optional[dict] = None) -> Generator:
        """Publish source-statement completion, if we own the counter.

        A *skipped* mark publishes nothing and therefore journals
        nothing: on crash replay the statement re-executes in full,
        which is safe precisely because no signal escaped.
        """
        if step < 1:
            raise ValueError(f"steps are numbered from 1, got {step}")
        if not self.owned:
            owner, _step = yield SyncRead(self.counters.var_of(self.pid))
            if owner < self.pid:
                # Not previously owned and not yet transferred to us:
                # proceed without waiting for the counter.
                self.skipped_marks += 1
                return
        yield from self.counters.write_step(self.pid, step,
                                            checkpoint=checkpoint)
        self.owned = True
        self.last_step = step

    def transfer_pc(self,
                    checkpoint: Optional[dict] = None) -> Generator:
        """Complete the last source; hand the counter to ``pid + X``."""
        if not self.owned:
            yield WaitUntil(self.counters.var_of(self.pid),
                            pc_at_least((self.pid, 0)),
                            reason=f"transfer_PC get by p{self.pid}")
            self.owned = True
        yield from self.counters.write_release(self.pid, self.last_step,
                                               checkpoint=checkpoint)
