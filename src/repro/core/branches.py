"""Dependence sources inside branches (Example 3 / Fig. 5.3).

When a source statement sits in a conditional, some iterations never
execute it -- yet other processes' sinks wait on its step.  The paper's
rule: "if a synchronization primitive changes a synchronization variable
in one path, the synchronization variable must also be changed in all
other paths to allow the effect to be the same no matter which branch was
taken."

Concretely, with sources numbered 1..K in textual order, an iteration
walks the body keeping a step cursor; every source *position* advances
the cursor whether or not the statement executed, and the process
publishes the cursor value.  The paper's refinement ("P1 should inform
the sinks to proceed as soon as possible ... after Sd in branch C,
mark_PC(3) is executed instead of mark_PC(2)") corresponds to eagerly
publishing the cursor when skipped source positions are passed; with lazy
publication the skipped steps are signed off only by the final
``transfer_PC``.

:class:`StepCursor` implements both policies; the scheme emitter drives
it, and a bench compares eager vs. lazy signalling latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple


@dataclass
class StepCursor:
    """Tracks which source step to publish as an iteration proceeds.

    ``eager`` publishes the cursor whenever it moved -- including moves
    caused by *skipped* source positions -- so sinks waiting on a skipped
    source proceed as soon as the branch resolves.  Lazy mode publishes
    only after *executed* sources; skipped steps ride on the next
    executed source's publication or on the final transfer.
    """

    n_sources: int
    eager: bool = True
    _cursor: int = 0
    _published: int = 0

    def advance(self, executed: bool) -> Optional[int]:
        """Pass one source position; return a step to publish, or None.

        Call once per source position, in textual order, with whether the
        statement actually executed this iteration.  The returned step
        (when not None) is what ``mark_PC``/``set_PC`` should publish.
        Never returns a publication for the last source position --
        that one is signalled by ``release_PC``/``transfer_PC``.
        """
        if self._cursor >= self.n_sources:
            raise RuntimeError("advance() called past the last source")
        self._cursor += 1
        is_last = self._cursor == self.n_sources
        if is_last:
            return None
        if executed or self.eager:
            if self._cursor > self._published:
                self._published = self._cursor
                return self._cursor
        return None

    @property
    def finished(self) -> bool:
        """All source positions passed (time for the transfer)."""
        return self._cursor == self.n_sources

    @property
    def published(self) -> int:
        """Highest step published so far."""
        return self._published


def publication_schedule(execution_mask: Tuple[bool, ...],
                         eager: bool = True) -> List[Optional[int]]:
    """Steps published at each source position for a given branch outcome.

    Pure helper for tests and benches: ``execution_mask[k]`` says whether
    source position ``k`` (0-based) executed.  Returns one entry per
    position: the published step or None.  The last position is always
    None (released, not marked).
    """
    cursor = StepCursor(n_sources=len(execution_mask), eager=eager)
    return [cursor.advance(executed) for executed in execution_mask]
