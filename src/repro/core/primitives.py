"""The basic process-oriented primitives of Fig. 4.2(a).

Four operations, all expressed as simulator-op generators so they compose
with instrumented loop bodies by ``yield from``:

``set_pc(pid, step)``
    "update PC to current step" -- publish ``<pid, step>`` after the
    completion of a source statement (except the last one).
``release_pc(pid)``
    "release PC for process pid+X to use" -- publish ``<pid+X, 0>`` after
    the last source statement.
``wait_pc(pid, dist, step)``
    spin until ``PC[(pid-dist) mod X] >= <pid-dist, step>``; executed
    before a sink statement.
``get_pc(pid)``
    ``wait_pc(pid, 0, 0)`` -- block until this process owns its counter.

None of these needs to be atomic: each PC is monotonically increased by
exactly one processor at any time, and waits test for the counter to
*exceed* a value (section 6).
"""

from __future__ import annotations

from typing import Generator, Optional

from ..sim.ops import WaitUntil
from .process_counter import PCValue, ProcessCounterFile, pc_at_least


def set_pc(counters: ProcessCounterFile, pid: int, step: int,
           checkpoint: Optional[dict] = None) -> Generator:
    """Publish completion of source statement number ``step``."""
    if step < 1:
        raise ValueError(f"steps are numbered from 1, got {step}")
    yield from counters.write_step(pid, step, checkpoint=checkpoint)


def release_pc(counters: ProcessCounterFile, pid: int,
               current_step: int = 0,
               checkpoint: Optional[dict] = None) -> Generator:
    """Publish completion of the *last* source and hand the PC onward."""
    yield from counters.write_release(pid, current_step,
                                      checkpoint=checkpoint)


def wait_pc(counters: ProcessCounterFile, pid: int, dist: int,
            step: int) -> Generator:
    """Spin until process ``pid - dist`` has completed source ``step``.

    The wait also passes once the source process has *released* the
    counter (owner moved past it), covering the last-source case of
    Fig. 4.2(b) where ``wait_PC(1, 4)`` is satisfied by ``release_PC``.
    """
    source = pid - dist
    if source < counters.first_pid:
        # Loop-boundary sink: the source iteration does not exist, so the
        # dependence instance does not either.  A compiler emits no wait
        # (one compare at run time); we emit nothing.
        return
    target: PCValue = (source, step)
    yield WaitUntil(counters.var_of(source), pc_at_least(target),
                    reason=f"wait_PC({dist},{step}) by p{pid}")


def get_pc(counters: ProcessCounterFile, pid: int) -> Generator:
    """Wait for ownership of this process's counter (``wait_PC(0, 0)``)."""
    yield WaitUntil(counters.var_of(pid), pc_at_least((pid, 0)),
                    reason=f"get_PC() by p{pid}")
