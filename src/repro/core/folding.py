"""Folding: sharing X process counters among N >> X iterations.

"The proposed scheme works best if the number of PC's (i.e., X) equals a
power of 2 and is a small multiple of the number of processors.  The
modulus operation needed in computing the index of a PC can then be done
easily by taking the lower bits of a process id."  (section 6)

Folding is *correct for any X >= 1*: the values a slot takes form an
increasing chain ``<s,0> < <s,steps...> < <s+X,0> < ...`` (ownership only
moves forward, steps only grow), so a wait for ``<pid-d, step>``

* cannot pass early -- the slot reaches ``<pid-d, step>`` only once
  process ``pid-d`` has published that step, or a *successor owner*
  appears, which requires ``pid-d`` to have released (completed all its
  sources, which covers every step), and
* cannot block forever -- ownership eventually reaches and passes
  ``pid-d``.

What X buys is *performance*: process ``pid`` can publish only after
``pid-X`` releases, so small X throttles the pipeline ("the delay due to
waiting for ownership ... occurs less frequently ... if X is large
enough").  The helpers here implement the paper's sizing rule and
quantify that throttle for the benches.
"""

from __future__ import annotations


def is_power_of_two(value: int) -> bool:
    """True for 1, 2, 4, 8, ..."""
    return value >= 1 and (value & (value - 1)) == 0


def next_power_of_two(value: int) -> int:
    """Smallest power of two >= ``value`` (>= 1)."""
    if value <= 1:
        return 1
    return 1 << (value - 1).bit_length()


def choose_counters(n_processors: int, multiple: int = 2) -> int:
    """Pick X per the paper's rule: a power of two, a small multiple of P.

    With ``X >= multiple * P`` and dynamic self-scheduling, at most P
    processes run at once, so the owner a running process waits on
    (``pid - X``) has nearly always finished already: ownership waits
    leave the critical path.
    """
    if n_processors < 1:
        raise ValueError("need at least one processor")
    if multiple < 1:
        raise ValueError("multiple must be >= 1")
    return next_power_of_two(multiple * n_processors)


def slot_mask(n_counters: int) -> int:
    """Bit-mask that implements ``pid mod X`` for power-of-two X.

    Raises for non-power-of-two sizes, where hardware would need a real
    modulus (the paper's reason for the power-of-two rule).
    """
    if not is_power_of_two(n_counters):
        raise ValueError(
            f"{n_counters} is not a power of two; the PC index cannot be "
            f"computed by masking low bits of the process id")
    return n_counters - 1


def ownership_throttle(n_counters: int, n_processors: int) -> float:
    """How hard folding throttles the pipeline, as a ratio in (0, inf).

    At any instant at most ``n_processors`` processes are active; a
    process must wait for the release from ``n_counters`` processes
    before it.  Values >= 1 mean ownership almost never blocks (X >= P);
    values < 1 mean roughly ``1/value`` processes queue per counter.
    """
    if n_counters < 1 or n_processors < 1:
        raise ValueError("counters and processors must be >= 1")
    return n_counters / n_processors
