"""Process counters: the paper's synchronization variable.

A *process counter* (PC) is the state of one process (loop iteration):
a pair ``<owner, step>`` where ``owner`` is the process id currently
holding the counter and ``step`` counts how many of its source statements
that process has completed.  Values are ordered lexicographically::

    <w, x> >= <y, z>   iff   w > y, or w = y and x >= z

so a counter released to the *next* owner (``<i+X, 0>``) compares above
every step of the previous owner -- that is how ``release_PC`` signals
"process i finished all its sources".

Only ``X`` counters exist; iterations fold onto them so that processes
``i, X+i, 2X+i, ...`` share slot ``i`` and ownership is handed forward by
``release_PC`` / ``transfer_PC``.  The paper recommends X be a power of
two ("a small multiple of the number of processors") so the modulus is a
bit-mask; :func:`repro.core.folding.choose_counters` implements that
sizing rule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional, Tuple

from ..sim.ops import SyncWrite
from ..sim.sync_bus import SyncFabric

#: a PC value: (owner pid, step)
PCValue = Tuple[int, int]


def pc_at_least(target: PCValue):
    """Predicate factory: committed PC value >= ``target``.

    Python tuple comparison is exactly the paper's ordering on
    ``<owner, step>`` pairs.  The predicate is monotone because a PC is
    only ever increased (step bumps, then ownership moves forward).
    """
    def predicate(value: PCValue) -> bool:
        return value >= target
    return predicate


@dataclass
class ProcessCounterFile:
    """``X`` folded process counters backed by a synchronization fabric.

    ``first_pid`` is the id of the first process of the loop (the paper
    numbers iterations from 1).  Slot ``s`` initially belongs to process
    ``first_pid + s``; process ``pid`` uses slot ``(pid - first_pid) mod X``.

    ``split_fields`` models the narrow-bus option of section 6: the two
    fields of a PC "need not be updated simultaneously", so an ownership
    transfer is broadcast as two writes.  ``split_order`` chooses which
    field goes first; the paper's argument shows ``"step_first"`` is safe
    (transition ``<i,j1> -> <i,0> -> <i+X,0>``) while owner-first exposes
    the dangerous intermediate ``<i+X, j1>`` -- a test demonstrates the
    difference.
    """

    n_counters: int
    first_pid: int = 1
    split_fields: bool = False
    split_order: str = "step_first"

    def __post_init__(self) -> None:
        if self.n_counters < 1:
            raise ValueError("need at least one process counter")
        if self.split_order not in ("step_first", "owner_first"):
            raise ValueError(f"unknown split_order {self.split_order!r}")
        self._vars: Optional[range] = None
        self._fabric: Optional[SyncFabric] = None

    # ------------------------------------------------------------------
    # layout
    # ------------------------------------------------------------------

    def slot(self, pid: int) -> int:
        """Counter slot used by process ``pid`` (the folding modulus)."""
        return (pid - self.first_pid) % self.n_counters

    def initial_owner(self, slot: int) -> int:
        """Process that owns ``slot`` before any release."""
        return self.first_pid + slot

    def allocate(self, fabric: SyncFabric) -> None:
        """Allocate and initialize the counters on ``fabric``.

        Initialization is free (register reset at loop setup), matching
        the paper's point that the PC scheme avoids the per-key
        initialization overhead of data-oriented schemes.
        """
        self._fabric = fabric
        words = 2 if self.split_fields else 1
        start = fabric.alloc(1, init=(self.initial_owner(0), 0),
                             words_per_var=words)[0]
        for s in range(1, self.n_counters):
            fabric.alloc(1, init=(self.initial_owner(s), 0),
                         words_per_var=words)
        self._vars = range(start, start + self.n_counters)

    def var_of(self, pid: int) -> int:
        """Fabric variable id of the counter ``pid`` folds onto."""
        if self._vars is None:
            raise RuntimeError("counter file not allocated on a fabric yet")
        return self._vars[self.slot(pid)]

    def value_of(self, pid: int) -> PCValue:
        """Committed value of ``pid``'s counter (for inspection/tests)."""
        if self._fabric is None:
            raise RuntimeError("counter file not allocated on a fabric yet")
        return self._fabric.value(self.var_of(pid))

    # ------------------------------------------------------------------
    # write helpers (yield simulator ops)
    # ------------------------------------------------------------------

    def write_step(self, pid: int, step: int,
                   checkpoint: Optional[dict] = None) -> Generator:
        """Publish ``<pid, step>`` on ``pid``'s counter (one broadcast).

        Marked coverable: a later write to the same PC may overwrite it
        while queued (section 6's bus-traffic reduction).
        ``checkpoint`` rides on the write so the recovery layer journals
        it atomically with the signal's issue.
        """
        yield SyncWrite(self.var_of(pid), (pid, step), coverable=True,
                        checkpoint=checkpoint)

    def write_release(self, pid: int, current_step: int = 0,
                      checkpoint: Optional[dict] = None) -> Generator:
        """Hand the counter to process ``pid + X`` (``<pid+X, 0>``).

        ``current_step`` is the last step this process published; it only
        matters in split-field owner-first mode, where the transient value
        ``<pid+X, current_step>`` becomes visible.  In split-field mode
        the transfer is two broadcasts; it is never coverable -- it must
        reach every processor.  ``checkpoint`` attaches to the *final*
        write: only the completed ownership transfer is journalled, so a
        crash between the two split writes replays the whole (idempotent)
        transfer."""
        var = self.var_of(pid)
        next_owner = pid + self.n_counters
        if not self.split_fields:
            yield SyncWrite(var, (next_owner, 0), coverable=False,
                            checkpoint=checkpoint)
            return
        if self.split_order == "step_first":
            yield SyncWrite(var, (pid, 0), coverable=False)
            yield SyncWrite(var, (next_owner, 0), coverable=False,
                            checkpoint=checkpoint)
        else:  # owner-first: exposes <next_owner, old step> transiently
            yield SyncWrite(var, (next_owner, current_step), coverable=False)
            yield SyncWrite(var, (next_owner, 0), coverable=False,
                            checkpoint=checkpoint)


def split_owner_first_intermediate(current: PCValue,
                                   next_owner: int) -> PCValue:
    """The transient value an owner-first split update exposes.

    Used by tests to show why the paper prescribes updating ``step``
    first: ``<i+X, j1>`` with ``j1 > 0`` satisfies waits for early steps
    of process ``i+X`` before that process has run at all.
    """
    _owner, step = current
    return (next_owner, step)
