"""The paper's contribution: process-oriented data synchronization.

One synchronization variable -- a *process counter* ``<owner, step>`` --
per loop iteration, folded onto a small fixed set of X hardware counters.
This package provides the counter file, the basic primitives of
Fig. 4.2(a), the improved primitives of Fig. 4.3, the synchronization
planner that transforms a DOACROSS loop as in Fig. 4.2(b), loop
coalescing (Example 2), branch-path equalization (Example 3), and the
folding/sizing rules of section 6.
"""

from .branches import StepCursor, publication_schedule
from .codegen import PlannedWait, StatementPlan, SyncPlan, build_sync_plan
from .folding import (choose_counters, is_power_of_two, next_power_of_two,
                      ownership_throttle, slot_mask)
from .improved import ImprovedPrimitives
from .linearize import (CoalescingReport, boundary_check_cost,
                        coalesced_iterations, extra_dependences)
from .primitives import get_pc, release_pc, set_pc, wait_pc
from .process_counter import (PCValue, ProcessCounterFile, pc_at_least,
                              split_owner_first_intermediate)

__all__ = [
    "CoalescingReport", "ImprovedPrimitives", "PCValue", "PlannedWait",
    "ProcessCounterFile", "StatementPlan", "StepCursor", "SyncPlan",
    "boundary_check_cost", "build_sync_plan", "choose_counters",
    "coalesced_iterations", "extra_dependences", "get_pc", "is_power_of_two",
    "next_power_of_two", "ownership_throttle", "pc_at_least",
    "publication_schedule", "release_pc", "set_pc", "slot_mask",
    "split_owner_first_intermediate", "wait_pc",
]
