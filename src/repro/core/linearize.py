"""Loop coalescing for multiply-nested DOACROSS loops (Example 2).

A nest with index set ``(i, j)`` and inner extent M coalesces to a single
process sequence with linearized ids ``lpid = (i-1)*M + j``; a distance
vector ``(di, dj)`` becomes the scalar distance ``di*M + dj``.  After
coalescing, the loop "can be executed as a singly-nested loop without
worrying about loop boundaries".

The price is *extra dependences*: at inner-loop boundaries the linearized
wait targets a process that is not a true source (the dashed arcs of
Fig. 5.2(c)), so "some parallelism may be lost from these extra
dependences, but the complexity of detecting boundaries is avoided".
This module quantifies both sides:

* :func:`extra_dependences` counts the spurious instances coalescing
  enforces, and
* :func:`boundary_check_cost` models the per-iteration overhead a
  data-oriented scheme pays instead -- the paper cites O(r*d) per
  iteration (r = occurrences of an array variable, d = nest depth).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..depend.graph import DependenceGraph, linear_distance
from ..depend.model import Loop


@dataclass(frozen=True)
class CoalescingReport:
    """Effect of coalescing one nest for one dependence."""

    dependence: str
    vector_distance: Tuple[int, ...]
    linear_distance: int
    #: instances where the linearized wait has a true source
    true_instances: int
    #: instances where the wait targets a non-source process (boundary)
    extra_instances: int


def extra_dependences(loop: Loop,
                      graph: DependenceGraph) -> List[CoalescingReport]:
    """Count true vs. spurious enforced instances per dependence.

    A sink at linear id ``p`` waits on ``p - D`` (D = linearized
    distance).  The wait is *true* when the vector-space source
    ``index - delta`` is inside the iteration space; otherwise the target
    process exists (``p - D >= 1``) but is not a real source -- an extra
    dependence introduced by implicit coalescing.
    """
    reports: List[CoalescingReport] = []
    for dep in graph.dependences:
        if dep.distance is None or not any(dep.distance):
            continue
        scalar = linear_distance(loop, dep.distance)
        true_count = 0
        extra_count = 0
        for index in loop.iteration_space():
            lpid = loop.lpid(index)
            if lpid - scalar < 1:
                continue  # no process to wait on: wait skipped
            source_index = tuple(i - d for i, d in zip(index, dep.distance))
            if loop.in_bounds(source_index):
                true_count += 1
            else:
                extra_count += 1
        reports.append(CoalescingReport(
            dependence=str(dep),
            vector_distance=dep.distance,
            linear_distance=scalar,
            true_instances=true_count,
            extra_instances=extra_count))
    return reports


def boundary_check_cost(loop: Loop, per_check: int = 2) -> int:
    """Per-iteration boundary-test overhead of a data-oriented scheme.

    Data-oriented schemes synchronize on each data element; elements
    referenced at loop boundaries are accessed a different number of
    times, so every iteration must test whether each reference sits on a
    boundary: O(r * d) checks, r = total array-reference occurrences in
    the body, d = nest depth.  ``per_check`` is the cost of one test in
    cycles.
    """
    occurrences = sum(len(stmt.reads) + len(stmt.writes)
                      for stmt in loop.body)
    return per_check * occurrences * loop.depth


def coalesced_iterations(loop: Loop) -> List[int]:
    """The process-id sequence of the coalesced loop: 1..N (all lpids)."""
    return [loop.lpid(index) for index in loop.iteration_space()]
