"""Command-line interface: compile and simulate a DO loop.

Usage::

    python -m repro LOOP.f [options]
    python -m repro --demo
    python -m repro chaos [chaos options]
    python -m repro sweep --spec NAME --procs 8 --json BENCH_sweeps.json
    python -m repro serve --procs 8 --json BENCH_sweeps.json
    python -m repro submit --spec fig3.1 --watch
    python -m repro status | watch [JOB] | cancel JOB
    python -m repro analyze --app fig2.1 --scheme statement-oriented
    python -m repro analyze --gate
    python -m repro doctor [--repair] [--json PATH]
    python -m repro bench-engine --json BENCH_engine.json

Reads a mini-Fortran ``DO`` nest (see :mod:`repro.frontend`), runs the
full pipeline -- dependence analysis, classification, doacross-delay
analysis, scheme selection, simulation, validation -- and prints the
compilation report, the run metrics, and a processor timeline.

Options::

    --processors P      machine size (default 8)
    --scheme NAME       force a scheme instead of letting the compiler pick
    --objective OBJ     selection objective: time | storage | traffic
    --schedule POLICY   self | chunk | guided | cyclic | block
    --bind NAME=VALUE   bind a symbolic loop bound (repeatable)
    --timeline-width W  timeline width in characters (default 72)
    --demo              run the built-in Fig 2.1 demo instead of a file

All modes share the ``--json`` / ``--seed`` / ``--procs`` trio (see
:mod:`repro.cli`).

``chaos`` mode sweeps seeded fault plans (lost broadcasts, stalls,
crashes, flaky RMW commits, latency jitter) across every
synchronization scheme and checks the degradation contract: each run
either validates against sequential semantics or dies with a diagnosed
structured error -- never a hang, never silent corruption.  See
``python -m repro chaos --help``.

``sweep`` mode runs the declarative benchmark grids of
:mod:`repro.lab`: preset (or JSON-file) sweep specs expand into cells,
warm cells come from the content-addressed cache, cold cells fan out
over ``--procs`` *supervised* workers (per-cell ``--cell-timeout``,
bounded ``--max-retries`` with backoff, crash detection + respawn,
quarantine of budget-exhausted cells with exit code 3), and versioned
records merge into the ``--json`` store as they land.  An interrupted
sweep (Ctrl-C / SIGTERM) re-enters with ``--resume`` recomputing zero
completed cells.  N sweeps may share one ``--cache-dir`` concurrently:
per-cell claim files give single-flight semantics (an in-flight cell is
waited for, not recomputed; a crashed claimant's cell is taken over),
every entry is checksummed, and the merged store is lock-serialized.
See ``python -m repro sweep --help``.

``serve`` mode keeps a sweep service resident: many clients submit
jobs over a local unix socket to one shared supervised worker pool
with in-flight dedup (two clients racing overlapping grids pay for
the union exactly once), watch typed event streams, and cancel jobs;
SIGTERM drains -- unfinished jobs are journaled and a restarted
server resumes them recomputing zero completed cells.  ``submit`` /
``status`` / ``watch`` / ``cancel`` are the matching client verbs.
See ``python -m repro serve --help``.

``doctor`` mode is the fsck for that shared store: it verifies entry
checksums and schema versions, reaps orphaned tmp files and stale
claims, and reports a typed summary; ``--repair`` quarantines corrupt
entries and deletes stale ones so the next sweep re-simulates exactly
the damaged cells.  See ``python -m repro doctor --help``.

``bench-engine`` mode measures raw engine throughput (events per
second) over the preset grids and appends a schema-versioned entry to
a benchmark trajectory file; ``--check`` compares the fresh numbers
against a committed trajectory and fails on a calibration-normalized
regression.  See :mod:`repro.bench` and ``python -m repro
bench-engine --help``.

``analyze`` mode is the static side of :mod:`repro.analyze`: it proves
a compiled sync placement enforces every dependence arc (races and
unsatisfiable waits come back as typed findings with witness
iterations), optionally drops provably redundant sync arcs
(``--eliminate``), and cross-checks the verdict with a dynamic
vector-clock sanitizer.  ``--gate`` verifies every shipped
app x scheme pair, which is what CI runs.  See
``python -m repro analyze --help``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from .cli import (add_cache_options, add_common_options,
                  add_executor_options, add_service_options,
                  graceful_sigterm, make_parser)
from .compiler import compile_loop, run_program
from .frontend import parse_loop, parse_program
from .report import render_timeline
from .sim import Machine, MachineConfig

DEMO_SOURCE = """
DO I = 1, N
  S1: A(I+3) = ...
  S2: ...    = A(I+1)
  S3: ...    = A(I+2)
  S4: A(I)   = ...
  S5: ...    = A(I-1)
END DO
"""


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = make_parser(
        "python -m repro",
        "Compile and simulate a DOACROSS loop "
        "(Su & Yew, ISCA 1989 reproduction).")
    add_common_options(parser)
    parser.add_argument("source", nargs="?", type=pathlib.Path,
                        help="mini-Fortran file containing one DO nest")
    parser.add_argument("--demo", action="store_true",
                        help="use the built-in Fig 2.1 loop (N=64)")
    parser.add_argument("--processors", type=int, default=8)
    parser.add_argument("--scheme", default=None,
                        help="force a scheme (reference-based, "
                             "instance-based, statement-oriented, "
                             "process-oriented)")
    parser.add_argument("--objective", default="time",
                        choices=["time", "storage", "traffic"])
    parser.add_argument("--schedule", default="self",
                        choices=["self", "chunk", "guided", "cyclic",
                                 "block"])
    parser.add_argument("--bind", action="append", default=[],
                        metavar="NAME=VALUE",
                        help="bind a symbolic loop bound (repeatable)")
    parser.add_argument("--program", action="store_true",
                        help="treat the source as several DO nests run "
                             "in sequence with shared arrays")
    parser.add_argument("--timeline-width", type=int, default=72)
    return parser


def build_chaos_parser() -> argparse.ArgumentParser:
    """Argument parser for ``python -m repro chaos``."""
    parser = make_parser(
        "python -m repro chaos",
        "Fault-injection sweep: run every synchronization "
        "scheme under seeded fault plans and verify each "
        "run either validates or fails with a diagnosed "
        "structured error.")
    add_common_options(parser)
    parser.add_argument("--seeds", type=int, default=3,
                        help="seeds per (scheme, plan) cell (default 3), "
                             "starting at --seed")
    # pre-unification spelling of --seed; kept as a hidden alias
    parser.add_argument("--seed-base", dest="seed", type=int,
                        default=argparse.SUPPRESS, help=argparse.SUPPRESS)
    parser.add_argument("--schemes", default="all",
                        help="comma-separated scheme names, or 'all'")
    parser.add_argument("--plans", default="all",
                        help="comma-separated fault plan presets, or 'all'")
    parser.add_argument("--processors", type=int, default=4)
    parser.add_argument("--n", type=int, default=16,
                        help="trip count of the swept loop (default 16)")
    parser.add_argument("--recover", action="store_true",
                        help="enable the recovery layer (retransmission, "
                             "task reincarnation, degraded fallback): "
                             "recoverable plans must then complete "
                             "validated")
    return parser


def build_sweep_parser() -> argparse.ArgumentParser:
    """Argument parser for ``python -m repro sweep``."""
    parser = make_parser(
        "python -m repro sweep",
        "Declarative benchmark sweeps: expand preset or JSON sweep "
        "specs into (app x scheme x machine x seed) cells, serve warm "
        "cells from the content-addressed cache, fan cold cells over "
        "a worker pool, and merge versioned records into the --json "
        "store.")
    add_common_options(parser)
    parser.add_argument("--spec", action="append", default=[],
                        metavar="NAME_OR_PATH",
                        help="sweep spec: a preset name or a JSON spec "
                             "file (repeatable)")
    parser.add_argument("--list", action="store_true",
                        help="list the preset sweep specs and exit")
    add_cache_options(parser, no_cache=True)
    parser.add_argument("--assert-cached", action="store_true",
                        help="fail (exit 1) unless every cell was a "
                             "cache hit -- CI uses this to pin "
                             "incremental re-runs")
    parser.add_argument("--preflight", action="store_true",
                        help="statically verify every (app, scheme) "
                             "placement in the grid before simulating "
                             "(see 'python -m repro analyze')")
    add_executor_options(parser)
    parser.add_argument("--no-single-flight", action="store_true",
                        help="do not coordinate with other sweeps "
                             "sharing this cache via per-cell claim "
                             "files (may duplicate in-flight work)")
    parser.add_argument("--chaos", default=None, metavar="SPEC",
                        help="inject seeded orchestration faults into "
                             "the executor (testing/CI), e.g. "
                             "'crash=0.2,hang=0.1,flaky=0.3'; the "
                             "merged store must still match a "
                             "fault-free run byte for byte")
    parser.add_argument("--chaos-seed", type=int, default=0, metavar="N",
                        help="seed for --chaos draws (default 0)")
    parser.add_argument("--failures-json", type=pathlib.Path,
                        default=None, metavar="PATH",
                        help="write quarantined-cell failures (retry "
                             "budget exhausted) as JSON to PATH")
    return parser


def build_doctor_parser() -> argparse.ArgumentParser:
    """Argument parser for ``python -m repro doctor``."""
    parser = make_parser(
        "python -m repro doctor",
        "fsck for the shared experiment store: verify every cache "
        "entry's checksum and schema versions, reap orphaned in-flight "
        "tmp files and stale single-flight claims, count torn journal "
        "lines, and report a typed summary (ok / stale / corrupt / "
        "orphaned / quarantined).  With --repair, corrupt entries are "
        "quarantined and stale ones deleted, so the next sweep "
        "re-simulates exactly the damaged cells.")
    add_common_options(parser)
    add_cache_options(parser)
    parser.add_argument("--repair", action="store_true",
                        help="act on entry damage: quarantine corrupt "
                             "entries, delete stale ones, rewrite torn "
                             "journals (orphans and stale claims are "
                             "always reaped)")
    parser.add_argument("--inject", default=None, metavar="SPEC",
                        help="testing/CI: first damage the store with "
                             "seeded faults, e.g. 'bit-flips=3,"
                             "truncations=2,torn-tmps=2,dead-claims=1' "
                             "(seeded by --seed), then diagnose")
    return parser


def _doctor_mode(argv) -> int:
    """Diagnose (and optionally repair) the shared experiment store."""
    from .lab import DEFAULT_CACHE_DIR, ResultCache, StoreChaos, diagnose

    parser = build_doctor_parser()
    args = parser.parse_args(argv)
    root = args.cache_dir or DEFAULT_CACHE_DIR
    if not root.is_dir():
        print(f"no cache directory at {root}: nothing to diagnose")
        return 0

    if args.inject is not None:
        try:
            chaos = StoreChaos.parse(args.inject, seed=args.seed)
        except ValueError as err:
            parser.error(f"bad --inject spec: {err}")
        touched = chaos.inject(root)
        for kind, names in sorted(touched.items()):
            if names:
                print(f"injected {kind}: {len(names)} file(s)")

    # key_fn lets the doctor flag entries the current source tree can
    # never look up again (superseded content addresses)
    cache = ResultCache(root)
    report = diagnose(root, repair=args.repair,
                      key_fn=cache.key_for)
    for finding in report.findings:
        action = f" [{finding.action}]" if finding.action else ""
        print(f"  {finding.status:12s} {finding.path}: "
              f"{finding.detail}{action}")
    print(report.summary())
    if args.json is not None:
        args.json.write_text(json.dumps(report.to_json(), sort_keys=True,
                                        indent=1) + "\n")
        print(f"wrote doctor report to {args.json}")
    return 0 if (report.healthy or args.repair) else 1


def build_analyze_parser() -> argparse.ArgumentParser:
    """Argument parser for ``python -m repro analyze``."""
    parser = make_parser(
        "python -m repro analyze",
        "Static happens-before analysis of a compiled sync placement: "
        "prove every dependence arc enforced (or report races with "
        "witness iterations), detect unsatisfiable waits, drop "
        "provably redundant sync arcs (or run the cost-model-guided "
        "placement optimizer), and cross-check the static verdict "
        "with a dynamic race sanitizer (order-maintenance or "
        "vector-clock oracle).")
    add_common_options(parser)
    parser.add_argument("--app", default=None,
                        help="registered application name "
                             "(see repro.lab.apps)")
    parser.add_argument("--scheme", default=None,
                        help="scheme name (reference-based, "
                             "instance-based, statement-oriented, "
                             "process-oriented)")
    parser.add_argument("--gate", action="store_true",
                        help="verify every shipped app x scheme pair "
                             "(restricted by --app/--scheme when "
                             "given) and exit 1 on any finding")
    parser.add_argument("--eliminate", action="store_true",
                        help="drop provably redundant sync arcs and "
                             "replay both placements for identical "
                             "final state")
    parser.add_argument("--optimize", action="store_true",
                        help="cost-model-guided search over (scheme "
                             "config, fold factor, arc subset); prints "
                             "the audit trail and validates the winner "
                             "by byte-identical replay")
    parser.add_argument("--oracle", default="om", choices=["om", "vc"],
                        help="dynamic race oracle: DePa order "
                             "maintenance (om, default) or the "
                             "reference vector clocks (vc)")
    parser.add_argument("--om", action="store_true",
                        help="with --gate: also run every statically "
                             "clean pair through a sanitized dynamic "
                             "execution under the chosen --oracle")
    parser.add_argument("--window", type=int, default=None,
                        help="override the unrolled iteration window")
    parser.add_argument("--processors", type=int, default=8,
                        help="machine size for the dynamic cross-check "
                             "and elimination replay (default 8)")
    parser.add_argument("--schedule", default="self",
                        choices=["self", "chunk", "guided", "cyclic",
                                 "block"])
    parser.add_argument("--param", action="append", default=[],
                        metavar="NAME=VALUE",
                        help="override an app build parameter "
                             "(repeatable; defaults come from the "
                             "analysis gate sizes)")
    parser.add_argument("--static-only", action="store_true",
                        help="skip the dynamic vector-clock "
                             "cross-check")
    return parser


def _analyze_mode(argv) -> int:
    """Statically verify placements; optionally eliminate + cross-check."""
    from .analyze import (ANALYZE_SCHEMA_VERSION, dynamic_check, eliminate,
                          gate, optimize, validate_elimination,
                          validate_optimization, verify)
    from .analyze.gate import GATE_PARAMS
    from .depend.graph import DependenceGraph
    from .lab.apps import build_app
    from .schemes import make_scheme

    parser = build_analyze_parser()
    args = parser.parse_args(argv)

    if args.gate:
        result = gate(apps=[args.app] if args.app else None,
                      schemes=[args.scheme] if args.scheme else None,
                      dynamic_oracle=args.oracle if args.om else None)
        for line in result.summary_lines():
            print(line)
        print(f"\nanalysis gate: {len(result.reports)} pair(s), "
              f"{len(result.failing)} failing, "
              f"{len(result.skipped)} skipped"
              + (f", {len(result.dynamic)} dynamically cross-checked "
                 f"({args.oracle})" if args.om else ""))
        if args.json is not None:
            args.json.write_text(json.dumps({
                "schema_version": ANALYZE_SCHEMA_VERSION,
                "reports": {key: report.to_json() for key, report
                            in sorted(result.reports.items())},
                "skipped": dict(sorted(result.skipped.items())),
                "dynamic": dict(sorted(result.dynamic.items())),
            }, sort_keys=True, indent=1) + "\n")
            print(f"wrote {len(result.reports)} report(s) to {args.json}")
        return 0 if result.ok else 1

    if not args.app or not args.scheme:
        parser.error("need --app and --scheme (or --gate)")
    params = dict(GATE_PARAMS.get(args.app, {}))
    for override in args.param:
        name, _, value = override.partition("=")
        if not name or not value:
            parser.error(f"bad --param {override!r}: expected NAME=VALUE")
        params[name] = int(value)

    loop = build_app(args.app, params)
    graph = DependenceGraph(loop)
    scheme = make_scheme(args.scheme)
    report = verify(loop, scheme, graph=graph, window=args.window,
                    app=args.app)
    print(report.summary())
    for finding in report.races + report.deadlocks:
        print(f"  {finding.describe()}")

    failed = not report.clean and not report.requires_serial

    if args.eliminate and not report.requires_serial:
        result = eliminate(loop, scheme, graph=graph, app=args.app,
                           window=args.window)
        report.redundant = list(result.dropped)
        summary = result.summary()
        print(f"\nelimination: {summary['sync_arcs']} arc(s) -> "
              f"{summary['sync_arcs_after']}, estimated sync ops "
              f"{summary['sync_ops_before']} -> "
              f"{summary['sync_ops_after']}")
        for arc in result.dropped:
            print(f"  {arc.describe()}")
        if result.dropped:
            replay = validate_elimination(loop, scheme, result,
                                          processors=args.processors,
                                          schedule=args.schedule)
            print(f"  replayed both placements: identical final state, "
                  f"measured sync ops {replay['sync_ops_before']} -> "
                  f"{replay['sync_ops_after']}, makespan "
                  f"{replay['makespan_before']} -> "
                  f"{replay['makespan_after']}")

    if args.optimize and not report.requires_serial:
        opt = optimize(loop, scheme, graph=graph, app=args.app,
                       window=args.window, processors=args.processors,
                       oracle=args.oracle)
        print(f"\noptimizer: {opt.summary()}")
        for trial in opt.audit:
            label = trial.arc or trial.action
            fold = f" X={trial.fold}" if trial.fold is not None else ""
            print(f"  [{trial.scheme}{fold}] {label}: "
                  f"ops={trial.sync_ops} "
                  f"cycles={trial.predicted_cycles:.0f} "
                  f"-> {trial.verdict}")
        print(f"  farthest-first baseline: sync ops "
              f"{opt.baseline['sync_ops_after']}, predicted cycles "
              f"{opt.baseline['predicted_cycles_after']:.0f}"
              + (" (optimizer wins)" if opt.beats_baseline else ""))
        replay = validate_optimization(loop, scheme, opt,
                                       processors=args.processors,
                                       schedule=args.schedule)
        print(f"  replayed both placements: identical final state, "
              f"measured sync ops {replay['sync_ops_before']} -> "
              f"{replay['sync_ops_after']}, makespan "
              f"{replay['makespan_before']} -> "
              f"{replay['makespan_after']}")
        if args.json is not None:
            opt.write_json(args.json)
            print(f"wrote optimization report to {args.json}")
            return 1 if failed else 0

    if not args.static_only and not report.requires_serial:
        verdict = dynamic_check(scheme.instrument(loop, graph),
                                processors=args.processors,
                                schedule=args.schedule,
                                oracle=args.oracle)
        if failed:
            # a single schedule staying clean does not contradict a
            # static finding; a dynamic kill corroborates it
            note = ("corroborates the static finding" if verdict.killed
                    else "one clean schedule (static finding stands)")
        else:
            note = ("agrees with the static verdict" if not verdict.killed
                    else "DISAGREES with the static all-clear")
            failed = failed or verdict.killed
        print(f"\ndynamic cross-check ({args.processors} processors, "
              f"{args.schedule} scheduling): {verdict.verdict} -- {note}")

    if args.json is not None:
        report.write_json(args.json)
        print(f"wrote findings to {args.json}")
    return 1 if failed else 0


def _sweep_mode(argv) -> int:
    """Run declarative sweeps and print per-cell rows + cache stats."""
    from .lab import (DEFAULT_CACHE_DIR, DEFAULT_MAX_RETRIES, ExecutorChaos,
                      ResultCache, SweepOptions, SweepSpec, make_spec,
                      merge_records, run_sweep, sweep_presets)
    from .report import print_table

    parser = build_sweep_parser()
    args = parser.parse_args(argv)
    if args.list:
        for name in sweep_presets():
            print(name)
        return 0
    if not args.spec:
        parser.error(f"need at least one --spec; presets: "
                     f"{', '.join(sweep_presets())}")
    if args.resume and args.no_cache:
        parser.error("--resume recovers completed cells from the cache; "
                     "it cannot be combined with --no-cache")
    chaos = None
    if args.chaos is not None:
        try:
            chaos = ExecutorChaos.parse(args.chaos, seed=args.chaos_seed)
        except ValueError as err:
            parser.error(f"bad --chaos spec: {err}")
    max_retries = (args.max_retries if args.max_retries is not None
                   else DEFAULT_MAX_RETRIES)
    specs = []
    for token in args.spec:
        path = pathlib.Path(token)
        spec = (SweepSpec.from_json(path) if path.suffix == ".json"
                else make_spec(token))
        specs.append(spec.with_seed_base(args.seed))

    cache = None
    if not args.no_cache:
        cache = ResultCache(args.cache_dir or DEFAULT_CACHE_DIR)

    rows, records, failures = [], [], []
    hits = misses = shared = resumed = retries = respawns = 0
    start = time.perf_counter()
    try:
        with graceful_sigterm():
            # cache_dir=None so --no-cache truly disables caching:
            # the sweep would otherwise fall back to the default cache
            # directory when handed cache=None
            options = SweepOptions(
                procs=args.procs, cache=cache, cache_dir=None,
                preflight=args.preflight,
                cell_timeout=args.cell_timeout,
                max_retries=max_retries, chaos=chaos,
                resume=args.resume,
                single_flight=not args.no_single_flight)
            for spec in specs:
                report = run_sweep(spec, options=options)
                hits += report.hits
                misses += report.misses
                shared += report.notes.get("shared", 0)
                retries += report.notes.get("retries", 0)
                respawns += report.notes.get("respawns", 0)
                resumed += report.hits if args.resume else 0
                records.extend(report.records)
                failures.extend(report.failed)
                for record in report.records:
                    config = record["config"]
                    metrics = record["metrics"] or {}
                    params = ",".join(f"{k}={v}" for k, v in
                                      sorted(config["app_params"].items()))
                    rows.append([spec.name, f"{config['app']}({params})",
                                 config["scheme"], config["processors"],
                                 config["seed"], record["outcome"],
                                 metrics.get("makespan", "-"),
                                 metrics.get("speedup", "-")])
    except KeyboardInterrupt:
        # children are already torn down and every landed record is in
        # the cache + journal; nothing to merge, everything to resume
        print("\nsweep interrupted: completed cells are journaled; "
              "re-run with --resume to pick up where it stopped "
              "(zero recomputation)")
        return 130
    elapsed = time.perf_counter() - start

    supervision = ""
    if retries or respawns:
        supervision = (f" [{retries} retrie(s), {respawns} worker "
                       f"respawn(s)]")
    print_table(
        ["spec", "app", "scheme", "P", "seed", "outcome", "makespan",
         "speedup"],
        rows,
        title=f"sweep: {len(records)} cell(s) from {len(specs)} spec(s) "
              f"on {args.procs} worker(s) in {elapsed:.2f}s"
              + supervision)
    if args.resume:
        print(f"resume: {resumed} completed cell(s) recovered from "
              f"cache/journal, {misses} simulated")
    if cache is not None:
        sharing = (f", {shared} served by concurrent sweep(s)"
                   if shared else "")
        print(f"cache: {hits} hit(s), {misses} miss(es){sharing} "
              f"[fingerprint {cache.fingerprint[:12]}, {cache.root}]")
    else:
        print(f"cache: disabled, {misses} cell(s) simulated")
    if args.json is not None:
        merge_records(args.json, records)
        print(f"merged {len(records)} record(s) into {args.json}")
    if args.failures_json is not None:
        args.failures_json.write_text(json.dumps({
            "schema_version": 1,
            "failures": [failure.to_json() for failure in failures],
        }, sort_keys=True, indent=1) + "\n")
        print(f"wrote {len(failures)} failure(s) to {args.failures_json}")
    if failures:
        print(f"\nDEGRADED: {len(failures)} cell(s) exhausted their "
              f"retry budget ({max_retries} retrie(s)) and were "
              "quarantined:")
        for failure in failures:
            print(f"  {failure.describe()}")
        return 3
    if args.assert_cached and misses:
        print(f"--assert-cached: FAILED, {misses} cell(s) re-simulated")
        return 1
    return 0


def _chaos_mode(argv) -> int:
    """Run the chaos sweep and print the outcome table."""
    from .faults.chaos import (ACCEPTABLE_OUTCOMES, run_chaos_sweep,
                               summarize)
    from .faults.plan import plan_names
    from .report import print_table
    from .schemes import scheme_names

    parser = build_chaos_parser()
    args = parser.parse_args(argv)
    if args.seeds < 1:
        # a 0-seed sweep would vacuously report the contract as holding
        parser.error("--seeds must be at least 1")
    schemes = (scheme_names() if args.schemes == "all"
               else args.schemes.split(","))
    plans = plan_names() if args.plans == "all" else args.plans.split(",")
    seeds = range(args.seed, args.seed + args.seeds)

    outcomes = run_chaos_sweep(schemes=schemes, plans=plans, seeds=seeds,
                               procs=args.procs,
                               n=args.n, processors=args.processors,
                               recover=args.recover)
    rows = []
    for o in outcomes:
        note = o.detail
        if o.cycle:
            note = f"cycle: {' -> '.join(o.cycle)}"
        rows.append([o.scheme, o.plan, o.seed, o.outcome, note[:48]])
    print_table(
        ["scheme", "plan", "seed", "outcome", "detail"], rows,
        title=f"chaos sweep: {len(schemes)} scheme(s) x {len(plans)} "
              f"plan(s) x {args.seeds} seed(s) on {args.processors} "
              f"processors" + (" [recovery on]" if args.recover else ""))
    histogram = summarize(outcomes)
    print("\noutcomes: " + ", ".join(
        f"{name}={count}" for name, count in sorted(histogram.items())))
    if args.recover:
        totals: dict = {}
        for o in outcomes:
            for key, count in o.recovery.items():
                totals[key] = totals.get(key, 0) + count
        active = {key: count for key, count in sorted(totals.items())
                  if count}
        print("recovery totals: " + (", ".join(
            f"{name}={count}" for name, count in active.items())
            if active else "none"))
    if args.json is not None:
        args.json.write_text(json.dumps(
            [o.to_json() for o in outcomes], indent=2) + "\n")
        print(f"wrote {len(outcomes)} per-run records to {args.json}")
    bad = [o for o in outcomes if not o.acceptable]
    if bad:
        print(f"\nDEGRADATION CONTRACT VIOLATED by {len(bad)} run(s) "
              f"(allowed: {', '.join(ACCEPTABLE_OUTCOMES)}):")
        for o in bad:
            print(f"  {o.scheme} / {o.plan} / seed {o.seed}: "
                  f"{o.outcome} -- {o.detail}")
        return 1
    print("degradation contract holds: every run validated or died "
          "with a diagnosed structured error")
    return 0


def build_serve_parser() -> argparse.ArgumentParser:
    """Argument parser for ``python -m repro serve``."""
    parser = make_parser(
        "python -m repro serve",
        "Run the resident sweep service: accept job submissions from "
        "many concurrent clients over a local unix socket, shard their "
        "cells across one shared supervised worker pool with fair "
        "per-job interleaving and in-flight dedup, stream typed "
        "events, and merge versioned records into the --json store.  "
        "SIGTERM drains: unfinished jobs are journaled and a restarted "
        "server resumes them recomputing zero completed cells.")
    add_common_options(parser, procs_default=2)
    add_cache_options(parser)
    add_executor_options(parser)
    add_service_options(parser)
    return parser


def build_submit_parser() -> argparse.ArgumentParser:
    """Argument parser for ``python -m repro submit``."""
    parser = make_parser(
        "python -m repro submit",
        "Submit sweep specs to a running service; prints one job id "
        "per spec.  Identical cells across jobs (or already in the "
        "cache) are paid for once, service-wide.")
    parser.add_argument("--spec", action="append", default=[],
                        metavar="NAME_OR_PATH",
                        help="sweep spec: a preset name or a JSON spec "
                             "file (repeatable; one job each)")
    parser.add_argument("--seed", type=int, default=0, metavar="N",
                        help="base seed added to every spec's seed grid")
    parser.add_argument("--watch", action="store_true",
                        help="stay attached and stream each job's "
                             "events until it finishes (exit codes "
                             "match 'python -m repro sweep': 3 "
                             "degraded, 4 cancelled/interrupted)")
    add_service_options(parser)
    return parser


def build_status_parser() -> argparse.ArgumentParser:
    """Argument parser for ``python -m repro status``."""
    parser = make_parser(
        "python -m repro status",
        "Show the running service's job table (or one job's row).")
    parser.add_argument("job", nargs="?", default=None,
                        help="job id (default: every job)")
    add_service_options(parser)
    return parser


def build_watch_parser() -> argparse.ArgumentParser:
    """Argument parser for ``python -m repro watch``."""
    parser = make_parser(
        "python -m repro watch",
        "Stream a job's typed events from the running service (or the "
        "global feed of every job when no JOB is given).")
    parser.add_argument("job", nargs="?", default=None,
                        help="job id (default: global event feed)")
    parser.add_argument("--no-replay", action="store_true",
                        help="live events only; do not replay the "
                             "job's history first")
    parser.add_argument("--json-lines", action="store_true",
                        help="print raw schema-versioned event JSON, "
                             "one object per line, instead of the "
                             "human-readable form")
    add_service_options(parser)
    return parser


def build_cancel_parser() -> argparse.ArgumentParser:
    """Argument parser for ``python -m repro cancel``."""
    parser = make_parser(
        "python -m repro cancel",
        "Cancel running service jobs.  Landed cells stay cached and "
        "journaled; only unfinished cells are abandoned.")
    parser.add_argument("jobs", nargs="+", metavar="JOB",
                        help="job id(s) to cancel")
    add_service_options(parser)
    return parser


def _describe_event(event) -> str:
    """One human-readable line per sweep event (watch/submit --watch)."""
    from .lab import (CellDone, CellFailed, CellShared, CellStarted,
                      JobDone, JobSubmitted)

    tag = f"[{event.job}]"
    if isinstance(event, JobSubmitted):
        return f"{tag} submitted {event.spec}: {event.cells} cell(s)"
    if isinstance(event, CellStarted):
        attempt = (f" (attempt {event.attempt})" if event.attempt > 1
                   else "")
        return f"{tag} start   {event.key}{attempt}"
    if isinstance(event, CellDone):
        return f"{tag} done    {event.key} [{event.outcome}]"
    if isinstance(event, CellShared):
        return f"{tag} shared  {event.key} [via {event.via}]"
    if isinstance(event, CellFailed):
        return (f"{tag} FAILED  {event.key}: {event.reason} after "
                f"{event.attempts} attempt(s) -- {event.detail}")
    if isinstance(event, JobDone):
        detail = (f" -- {event.error}" if event.error else
                  f": {event.hits} hit(s), {event.misses} simulated, "
                  f"{event.failed} failed")
        return f"{tag} {event.status}{detail}"
    return f"{tag} {event.kind}"


def _job_exit_code(event) -> int:
    """Map a terminal job-done event onto the sweep-mode exit codes."""
    if event.status == "done":
        return 3 if event.failed else 0
    if event.status in ("cancelled", "interrupted"):
        return 4
    return 1


def _serve_mode(argv) -> int:
    """Run the resident sweep service until SIGTERM/SIGINT drains it."""
    import os
    import signal
    import threading

    from .lab import (DEFAULT_CACHE_DIR, DEFAULT_MAX_RETRIES, ServiceServer,
                      SweepOptions, SweepService)

    parser = build_serve_parser()
    args = parser.parse_args(argv)
    max_retries = (args.max_retries if args.max_retries is not None
                   else DEFAULT_MAX_RETRIES)
    options = SweepOptions(
        procs=args.procs, cache_dir=args.cache_dir or DEFAULT_CACHE_DIR,
        json_path=args.json, cell_timeout=args.cell_timeout,
        max_retries=max_retries)
    service = SweepService(options).start()
    resumed = [row["job"] for row in service.status()]
    server = ServiceServer(service, args.socket).start()
    print(f"sweep service listening on {args.socket} "
          f"(pid {os.getpid()}, {args.procs} worker(s), "
          f"cache {options.cache_dir})")
    if resumed:
        print(f"resumed {len(resumed)} journaled job(s): "
              f"{', '.join(resumed)}")
    print("SIGTERM drains: unfinished jobs are journaled and resume "
          "on restart", flush=True)

    stop = threading.Event()

    def request_stop(_signum, _frame):
        stop.set()

    previous = (signal.signal(signal.SIGTERM, request_stop),
                signal.signal(signal.SIGINT, request_stop))
    try:
        while not stop.wait(0.2):
            pass
    finally:
        signal.signal(signal.SIGTERM, previous[0])
        signal.signal(signal.SIGINT, previous[1])
        server.close()
        interrupted = service.drain()
        service.close()
        if interrupted:
            print(f"drained: {len(interrupted)} unfinished job(s) "
                  f"journaled for restart ({', '.join(interrupted)})",
                  flush=True)
        else:
            print("drained: no unfinished jobs", flush=True)
    return 0


def _submit_mode(argv) -> int:
    """Submit specs to a running service; optionally stream them."""
    from .lab import ServiceClient, ServiceError, SweepSpec, make_spec

    parser = build_submit_parser()
    args = parser.parse_args(argv)
    if not args.spec:
        parser.error("need at least one --spec (a preset name or a "
                     "JSON spec file)")
    client = ServiceClient(args.socket)
    try:
        jobs = []
        for token in args.spec:
            path = pathlib.Path(token)
            spec = (SweepSpec.from_json(path) if path.suffix == ".json"
                    else make_spec(token))
            spec = spec.with_seed_base(args.seed)
            job = client.submit(spec)
            print(f"{job}  {spec.name}  ({len(spec.cells())} cell(s))")
            jobs.append(job)
        if not args.watch:
            return 0
        code = 0
        for job in jobs:
            for event in client.watch(job):
                print(_describe_event(event))
                if event.kind == "job-done":
                    code = max(code, _job_exit_code(event))
        return code
    except ServiceError as err:
        print(f"service error: {err}", file=sys.stderr)
        return 2


def _status_mode(argv) -> int:
    """Print the running service's job table."""
    from .lab import ServiceError
    from .lab.client import ServiceClient
    from .report import print_table

    parser = build_status_parser()
    args = parser.parse_args(argv)
    client = ServiceClient(args.socket)
    try:
        ping = client.ping()
        rows = client.status(args.job)
    except ServiceError as err:
        print(f"service error: {err}", file=sys.stderr)
        return 2
    print_table(
        ["job", "spec", "state", "cells", "completed", "failed"],
        [[row["job"], row["spec"], row["state"], row["cells"],
          row["completed"], row["failed"]] for row in rows],
        title=f"sweep service at {args.socket}: {ping['jobs']} job(s)"
              + (" [draining]" if ping.get("draining") else ""))
    return 0


def _watch_mode(argv) -> int:
    """Stream events from the running service."""
    from .lab import ServiceClient, ServiceError

    parser = build_watch_parser()
    args = parser.parse_args(argv)
    client = ServiceClient(args.socket)
    code = 0
    try:
        for event in client.watch(args.job, replay=not args.no_replay):
            if args.json_lines:
                print(event.to_line(), flush=True)
            else:
                print(_describe_event(event), flush=True)
            if args.job is not None and event.kind == "job-done":
                code = _job_exit_code(event)
    except ServiceError as err:
        print(f"service error: {err}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        return 130
    return code


def _cancel_mode(argv) -> int:
    """Cancel running service jobs."""
    from .lab import ServiceClient, ServiceError

    parser = build_cancel_parser()
    args = parser.parse_args(argv)
    client = ServiceClient(args.socket)
    code = 0
    for job in args.jobs:
        try:
            cancelled = client.cancel(job)
        except ServiceError as err:
            print(f"{job}: service error: {err}", file=sys.stderr)
            code = 2
            continue
        print(f"{job}: {'cancelled' if cancelled else 'already finished'}")
    return code


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "chaos":
        return _chaos_mode(argv[1:])
    if argv and argv[0] == "sweep":
        return _sweep_mode(argv[1:])
    if argv and argv[0] == "serve":
        return _serve_mode(argv[1:])
    if argv and argv[0] == "submit":
        return _submit_mode(argv[1:])
    if argv and argv[0] == "status":
        return _status_mode(argv[1:])
    if argv and argv[0] == "watch":
        return _watch_mode(argv[1:])
    if argv and argv[0] == "cancel":
        return _cancel_mode(argv[1:])
    if argv and argv[0] == "analyze":
        return _analyze_mode(argv[1:])
    if argv and argv[0] == "doctor":
        return _doctor_mode(argv[1:])
    if argv and argv[0] == "bench-engine":
        from .bench import main as bench_main
        return bench_main(argv[1:])
    if argv and argv[0] == "bench-analyze":
        from .bench_analyze import main as bench_analyze_main
        return bench_analyze_main(argv[1:])
    args = build_parser().parse_args(argv)

    bindings = {}
    for binding in args.bind:
        name, _, value = binding.partition("=")
        if not name or not value:
            print(f"bad --bind {binding!r}: expected NAME=VALUE",
                  file=sys.stderr)
            return 2
        bindings[name] = int(value)

    if args.demo:
        source = DEMO_SOURCE
        bindings.setdefault("N", 64)
        name = "fig2.1-demo"
    elif args.source is not None:
        source = args.source.read_text()
        name = args.source.stem
    else:
        print("need a source file or --demo", file=sys.stderr)
        return 2

    if args.program:
        return _run_program_mode(source, bindings, args)

    loop = parse_loop(source, name=name, **bindings)
    decision = compile_loop(loop, processors=args.processors,
                            objective=args.objective,
                            force_scheme=args.scheme)
    print(decision.explain())

    if not decision.runs_parallel:
        print("\nloop runs serially; nothing to simulate in parallel")
        return 0

    machine = Machine(MachineConfig(processors=args.processors,
                                    schedule=args.schedule))
    result = machine.run(decision.instrumented)
    decision.instrumented.validate(result)

    print(f"\nsimulated on {args.processors} processors "
          f"({args.schedule} scheduling); validated against sequential "
          f"semantics")
    for key, value in result.summary().items():
        print(f"  {key:22s} {value}")
    print()
    print(render_timeline(result, width=args.timeline_width))
    if args.json is not None:
        args.json.write_text(json.dumps({
            "loop": name,
            "classification": decision.classification.label,
            "scheme": decision.chosen_scheme,
            "processors": args.processors,
            "schedule": args.schedule,
            "summary": result.summary(),
        }, sort_keys=True, indent=1) + "\n")
        print(f"wrote run summary to {args.json}")
    return 0


def _run_program_mode(source: str, bindings, args) -> int:
    """Compile and run a multi-loop program, printing per-loop rows."""
    from .report import print_table

    loops = parse_program(source, **bindings)
    program = run_program(loops, processors=args.processors,
                          objective=args.objective,
                          force_scheme=args.scheme,
                          schedule=args.schedule)
    print_table(
        ["loop", "scheme", "makespan", "sync vars"],
        [[row["loop"], row["scheme"], row["makespan"], row["sync_vars"]]
         for row in program.summary()],
        title=f"{len(loops)}-loop program on {args.processors} "
              f"processors: {program.total_cycles} total cycles "
              "(validated)")
    if args.json is not None:
        args.json.write_text(json.dumps({
            "loops": program.summary(),
            "total_cycles": program.total_cycles,
            "processors": args.processors,
        }, sort_keys=True, indent=1) + "\n")
        print(f"wrote program summary to {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
