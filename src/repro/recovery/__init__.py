"""Fault tolerance & recovery for the simulated multiprocessor.

Turns PR 1's detect-and-die fault layer into detect-and-recover: lost
synchronization broadcasts are retransmitted (sequence numbers, NACK,
capped exponential backoff, idempotent dedup), crashed tasks are
reincarnated from per-iteration checkpoints journalled atomically with
their signal ops, and sustained broadcast loss triggers a hysteretic
fallback from free local-register-image waits to charged shared-memory
polling of the authoritative home copy.

See :mod:`repro.recovery.manager` for the mechanisms; recovery is
enabled per run via ``MachineConfig(recovery=RecoveryPolicy())`` and is
only constructed when a non-empty fault plan is also present.
"""

from .manager import RecoveryManager, RecoveryPolicy, ReplayJob

__all__ = ["RecoveryManager", "RecoveryPolicy", "ReplayJob"]
