"""Recovery layer: convert recoverable hazards into completed runs.

Sits between the fault injector and the engine.  The injector decides
*what goes wrong* (drawing from its own seeded stream, exactly as
without recovery); this layer decides *how the machine fights back*,
drawing every recovery decision from a **separate** seeded stream so
that enabling recovery never perturbs fault-replay determinism.

Three mechanisms, mirroring what real synchronization hardware does when
its lossy fast path misbehaves:

**Broadcast retransmission**
    Every sync-bus broadcast carries a per-variable sequence number.
    When a broadcast is lost, the receivers' gap detection NACKs it and
    the sender retransmits with capped exponential backoff; stale or
    duplicated deliveries are deduplicated by the sequence guard
    (install only if newer than the installed sequence).  A lost
    release therefore arrives late instead of never.

**Task reincarnation**
    Schemes journal per-iteration sync progress (PC/SC positions, key
    counters, operand values) via checkpoints attached to their signal
    ops; the engine records each checkpoint atomically with the signal's
    issue.  When a task crashes, its obligations are adopted: a rescue
    task replays the unfinished iteration from the journal --
    idempotently, skipping already-issued non-idempotent signals -- and
    then takes the dead processor's place in the scheduler.

**Degraded-mode fallback**
    Broadcast outcomes feed a sliding window; when observed loss
    crosses ``fallback_enter`` the engine stops trusting the local
    register images and busy-waits by *polling the authoritative home
    copy through shared memory* (charged reads), returning to free
    local-image waits once the loss rate drops below ``fallback_exit``
    (hysteresis).  Liveness is bought with cycles.

The manager is only constructed when a non-empty fault plan *and* a
:class:`RecoveryPolicy` are both configured; clean runs never touch any
of this (the zero-overhead pin extends to recovery-configured no-fault
runs).
"""

from __future__ import annotations

import random
from collections import deque
from dataclasses import dataclass
from typing import Any, Dict, List, Optional


@dataclass(frozen=True)
class RecoveryPolicy:
    """Tunable thresholds of the recovery layer (all deterministic)."""

    #: NACK detection delay before the first retransmission, in cycles
    nack_delay: int = 6
    #: base and cap of the exponential retransmission backoff, in cycles
    backoff_base: int = 4
    backoff_cap: int = 64
    #: retransmission attempts before the delivery is forced through
    #: (models escalating to a reliable, slower path)
    max_retransmits: int = 6
    #: reincarnations allowed per worker lineage before abandonment
    max_reincarnations: int = 3
    #: sliding-window size for the broadcast-loss estimator
    window: int = 16
    #: enter degraded (shared-memory polling) mode at this loss fraction
    fallback_enter: float = 0.25
    #: leave degraded mode again at or below this loss fraction
    fallback_exit: float = 0.05
    #: cost of one shared-memory poll of the home copy, in cycles
    fallback_read_cost: int = 6
    #: cycles between degraded-mode polls
    fallback_poll_interval: int = 8
    #: extra delay before retrying a dropped read-modify-write commit
    rmw_retry_delay: int = 8

    def __post_init__(self) -> None:
        for label in ("nack_delay", "backoff_base", "backoff_cap",
                      "fallback_read_cost", "fallback_poll_interval",
                      "rmw_retry_delay"):
            if getattr(self, label) < 1:
                raise ValueError(f"{label} must be >= 1")
        if self.max_retransmits < 1 or self.max_reincarnations < 0:
            raise ValueError("retry budgets must be positive")
        if self.window < 2:
            raise ValueError("window must be >= 2")
        if not 0.0 < self.fallback_exit <= self.fallback_enter <= 1.0:
            raise ValueError(
                "need 0 < fallback_exit <= fallback_enter <= 1 "
                "(hysteresis)")


@dataclass
class ReplayJob:
    """One unfinished iteration waiting to be reincarnated."""

    iteration: int
    checkpoint: Optional[dict]
    #: worker lineage the job belongs to ("cpu3", "init0", ...)
    lineage: str


#: seed salt separating the recovery stream from the injector's stream
_RECOVERY_STREAM_SALT = 0x5EC0_7E57


class RecoveryManager:
    """Runtime state of the recovery layer for one simulation.

    Duck-types against the engine (no import of :mod:`repro.sim`), like
    the hazard watchdog: ``attach`` hands it the engine, the workload
    and the scheduler.  Counters land in ``RunResult.extra["recovery"]``
    and the ``actions`` log rides on hazard reports when a run dies
    anyway, enumerating what was attempted before death.
    """

    #: keep the actions log bounded; a report does not need more
    MAX_ACTIONS = 256

    def __init__(self, policy: RecoveryPolicy, plan) -> None:
        self.policy = policy
        self.plan = plan
        #: dedicated stream: never shares draws with the fault injector
        self._rng = random.Random((plan.seed << 4) ^ _RECOVERY_STREAM_SALT)
        self._engine = None
        self._workload = None
        self._scheduler = None
        self.counters: Dict[str, int] = {
            "retransmissions": 0,
            "forced_deliveries": 0,
            "deduplicated_broadcasts": 0,
            "rmw_retries": 0,
            "deduplicated_updates": 0,
            "reincarnations": 0,
            "reclaimed_iterations": 0,
            "fallback_epochs": 0,
            "fallback_polls": 0,
            "recovery_overhead_cycles": 0,
        }
        self.actions: List[str] = []
        #: per-iteration journal: latest checkpoint payload
        self._journal: Dict[Any, dict] = {}
        #: task name -> in-flight iteration
        self._in_flight: Dict[str, int] = {}
        #: task name -> worker lineage key ("cpu3" / "init1")
        self._lineage: Dict[str, str] = {}
        #: task name -> scheduling pid (rescues inherit the dead pid)
        self._pid: Dict[str, int] = {}
        #: reincarnations spent per lineage
        self._attempts: Dict[str, int] = {}
        self._jobs: deque = deque()
        #: adopted-but-unfinished obligations (jobs queued or running)
        self._outstanding = 0
        #: iterations currently counted in ``_outstanding`` -- guards
        #: against double counting when a rescue crashes mid-replay and
        #: its job is re-adopted
        self._counted: set = set()
        #: sliding window of recent broadcast outcomes (True = lost)
        self._loss_window: deque = deque(maxlen=policy.window)
        self.degraded = False

    # ------------------------------------------------------------------
    # wiring
    # ------------------------------------------------------------------

    def attach(self, engine, workload, scheduler=None) -> None:
        self._engine = engine
        self._workload = workload
        self._scheduler = scheduler
        engine.recovery = self

    def set_scheduler(self, scheduler) -> None:
        self._scheduler = scheduler

    def register_worker(self, name: str, pid: int, lineage: str) -> None:
        """Declare a worker task (processor or prologue) the layer may
        have to reincarnate."""
        self._lineage[name] = lineage
        self._pid[name] = pid

    def _log(self, message: str) -> None:
        if len(self.actions) < self.MAX_ACTIONS:
            self.actions.append(message)

    # ------------------------------------------------------------------
    # mechanism 1: broadcast retransmission
    # ------------------------------------------------------------------

    def note_broadcast(self, lost: bool) -> None:
        """Feed the loss estimator; flip degraded mode hysteretically."""
        self._loss_window.append(lost)
        window = self._loss_window
        if len(window) < window.maxlen:
            return
        rate = sum(window) / len(window)
        if not self.degraded and rate >= self.policy.fallback_enter:
            self.degraded = True
            self.counters["fallback_epochs"] += 1
            self._log(f"entered degraded mode at t={self._engine.now} "
                      f"(observed loss {rate:.2f})")
        elif self.degraded and rate <= self.policy.fallback_exit:
            self.degraded = False
            self._log(f"left degraded mode at t={self._engine.now} "
                      f"(observed loss {rate:.2f})")

    def backoff(self, attempt: int) -> int:
        """NACK delay + capped exponential backoff for retry ``attempt``."""
        delay = min(self.policy.backoff_cap,
                    self.policy.backoff_base * (2 ** (attempt - 1)))
        return self.policy.nack_delay + delay

    def retransmit_fate(self, attempt: int) -> bool:
        """Is retry ``attempt`` lost too?  Forced through at the cap."""
        if attempt >= self.policy.max_retransmits:
            self.counters["forced_deliveries"] += 1
            return False
        loss = getattr(self.plan, "broadcast_loss", 0.0)
        return loss > 0.0 and self._rng.random() < loss

    def rmw_retry_at(self, now: int) -> int:
        """When to retry a dropped read-modify-write commit."""
        return now + self.policy.rmw_retry_delay

    # ------------------------------------------------------------------
    # mechanism 2: task reincarnation
    # ------------------------------------------------------------------

    def record_checkpoint(self, payload: dict) -> None:
        """Journal a checkpoint (called by the engine at signal issue)."""
        key = payload.get("iter")
        self._journal[key] = payload

    def iteration_started(self, task: str, iteration: int) -> None:
        self._in_flight[task] = iteration

    def iteration_finished(self, task: str) -> None:
        iteration = self._in_flight.pop(task, None)
        if iteration is not None:
            self._journal.pop(iteration, None)

    def claim_replay(self) -> Optional[ReplayJob]:
        return self._jobs.popleft() if self._jobs else None

    def job_done(self, job: ReplayJob) -> None:
        self._journal.pop(job.iteration, None)
        if job.iteration in self._counted:
            self._counted.discard(job.iteration)
            self._outstanding -= 1

    def outstanding(self) -> int:
        """Adopted obligations not yet replayed to completion."""
        return self._outstanding

    def on_crash(self, task: str) -> bool:
        """A task died: adopt its obligations if the budget allows.

        Returns True when the dead task's work was adopted (the engine
        then stops counting the corpse as live); False when the lineage
        is out of reincarnations and the run must die diagnosed.
        """
        lineage = self._lineage.get(task)
        if lineage is None:
            return False  # not a worker we know how to replace
        attempt = self._attempts.get(lineage, 0) + 1
        pid = self._pid[task]
        iteration = self._in_flight.pop(task, None)
        if attempt > self.policy.max_reincarnations:
            lost = []
            if iteration is not None:
                lost.append(iteration)
            if self._scheduler is not None:
                lost.extend(self._scheduler.reclaim(pid))
            abandoned = 0
            for it in lost:
                if it not in self._counted:
                    self._counted.add(it)
                    abandoned += 1
            self._outstanding += abandoned
            self._log(f"abandoned lineage {lineage} at "
                      f"t={self._engine.now}: reincarnation budget "
                      f"({self.policy.max_reincarnations}) exhausted, "
                      f"{len(lost)} iteration(s) lost")
            return False
        self._attempts[lineage] = attempt
        if iteration is not None:
            self._jobs.append(ReplayJob(
                iteration=iteration,
                checkpoint=self._journal.get(iteration),
                lineage=lineage))
            if iteration not in self._counted:
                self._counted.add(iteration)
                self._outstanding += 1
        name = f"{lineage}~r{attempt}"
        self.counters["reincarnations"] += 1
        self._log(f"reincarnated {task} as {name} at "
                  f"t={self._engine.now}"
                  + (f" (replaying iteration {iteration})"
                     if iteration is not None else ""))
        self.register_worker(name, pid, lineage)
        if lineage.startswith("init"):
            gen = self._prologue_replay(int(lineage[4:]))
        else:
            gen = self._rescue(name, pid)
        self._engine.spawn(gen, name=name)
        return True

    def _prologue_replay(self, index: int):
        """Re-run a crashed prologue worker from the start.

        Prologue generators only write constant initial values, so a
        partial first run followed by a full re-run is idempotent.
        """
        yield from self._workload.prologue()[index]

    def _rescue(self, name: str, pid: int):
        """Replay the adopted work, then stand in as processor ``pid``."""
        workload = self._workload
        while True:
            job = self.claim_replay()
            if job is None:
                break
            self.counters["reclaimed_iterations"] += 1
            self.iteration_started(name, job.iteration)
            yield from workload.make_replay_process(job.iteration,
                                                    job.checkpoint)
            self.iteration_finished(name)
            self.job_done(job)
        scheduler = self._scheduler
        if scheduler is None:
            return
        grab = self._grab_op
        while True:
            if grab is not None and scheduler.needs_shared_grab(pid):
                yield grab
            iteration = scheduler.next_for(pid)
            if iteration is None:
                return
            self.iteration_started(name, iteration)
            yield from workload.make_process(iteration)
            self.iteration_finished(name)

    #: the shared-counter grab op rescues issue (set by the machine so
    #: this module needs no import from repro.sim)
    _grab_op = None

    # ------------------------------------------------------------------
    # mechanism 3: degraded-mode accounting
    # ------------------------------------------------------------------

    def charge_fallback_poll(self, cycles: int) -> None:
        self.counters["fallback_polls"] += 1
        self.counters["recovery_overhead_cycles"] += cycles

    def charge_retransmission(self, cycles: int) -> None:
        self.counters["retransmissions"] += 1
        self.counters["recovery_overhead_cycles"] += cycles
