#!/usr/bin/env python3
"""Example 1: four-point relaxation -- wavefront vs async pipelining.

Reproduces Fig. 5.1: the same N x N relaxation grid computed

* serially (baseline),
* by anti-diagonal wavefronts with a barrier between them,
* by the paper's asynchronous pipeline (outer loop DOACROSS, process
  counters), with a column-group sweep showing the G trade-off,
* by the pipeline forced through a limited set of Alliant-style
  statement counters.

Every run's final grid is validated against the sequential solution.

Run:  python examples/relaxation_pipeline.py [N] [P]
"""

import sys

from repro.apps.relaxation import (PipelinedRelaxation, SerialRelaxation,
                                   StatementPipelinedRelaxation,
                                   WavefrontRelaxation, run_relaxation,
                                   serial_cycles)
from repro.barriers import CounterBarrier, PCButterflyBarrier
from repro.report import print_table


def main(n: int = 28, processors: int = 8) -> None:
    serial = run_relaxation(SerialRelaxation(n), processors=1)
    base = serial.makespan

    rows = [["serial", serial.makespan, "1.00", "-", 0, 0]]

    for label, barrier in (("wavefront + counter barrier",
                            CounterBarrier(processors)),
                           ("wavefront + PC butterfly",
                            PCButterflyBarrier(processors))):
        workload = WavefrontRelaxation(n, barrier)
        result = run_relaxation(workload, processors=processors,
                                schedule="block")
        rows.append([label, result.makespan,
                     f"{base / result.makespan:.2f}",
                     f"{result.utilization:.3f}", result.sync_vars,
                     result.sync_transactions])

    for group in (1, 2, 4, 9):
        workload = PipelinedRelaxation(n, group=group)
        result = run_relaxation(workload, processors=processors)
        rows.append([f"async pipeline G={group}", result.makespan,
                     f"{base / result.makespan:.2f}",
                     f"{result.utilization:.3f}", result.sync_vars,
                     result.sync_transactions])

    for counters in (2, 4, n - 1):
        workload = StatementPipelinedRelaxation(n, n_counters=counters)
        result = run_relaxation(workload, processors=processors)
        rows.append([f"statement counters S={counters}", result.makespan,
                     f"{base / result.makespan:.2f}",
                     f"{result.utilization:.3f}", result.sync_vars,
                     result.sync_transactions])

    print_table(
        ["strategy", "makespan", "speedup", "util", "sync vars",
         "sync tx"],
        rows,
        title=f"Fig 5.1: {n}x{n} relaxation on {processors} processors "
              f"(serial compute = {serial_cycles(n, 10)} cycles); all "
              "runs validated")


if __name__ == "__main__":
    arguments = [int(a) for a in sys.argv[1:3]]
    main(*arguments)
