#!/usr/bin/env python3
"""Examples 4 and 5: butterfly barriers and pairwise-synchronized FFT.

Part 1 (Example 4) sweeps the three barrier implementations over P and
prints the per-episode cost: the lock-based counter barrier's O(P)
serialized arrivals against the butterflies' O(log P) stages, and the
PC butterfly's variable/operation savings over Brooks' flags.

Part 2 (Example 5) runs the P-processor FFT exchange network with a
global barrier per stage vs. the paper's pairwise waits, under growing
per-stage imbalance.

Run:  python examples/butterfly_fft.py
"""

from repro.apps.fft import BarrierFFT, PairwiseFFT, run_fft
from repro.barriers import (BrooksButterflyBarrier, CounterBarrier,
                            PCButterflyBarrier, PhasedWorkload,
                            check_barrier_separation)
from repro.report import print_table
from repro.sim import Machine, MachineConfig

PHASES = 8
WORK = 100


def barrier_sweep() -> None:
    rows = []
    for p in (4, 8, 16, 32):
        for label, barrier in (
                ("counter (ticket lock)", CounterBarrier(p)),
                ("counter (hw fetch&add)",
                 CounterBarrier(p, hardware_fetch_add=True)),
                ("Brooks butterfly", BrooksButterflyBarrier(p)),
                ("PC butterfly", PCButterflyBarrier(p))):
            workload = PhasedWorkload(barrier, PHASES,
                                      lambda pid, phase: WORK)
            machine = Machine(MachineConfig(processors=p,
                                            schedule="block"))
            result = machine.run(workload)
            check_barrier_separation(result, p, PHASES)
            per_episode = (result.makespan - PHASES * WORK) / PHASES
            rows.append([label, p, f"{per_episode:.1f}", result.sync_vars,
                         result.total_sync_ops, result.memory_hotspot])
    print_table(
        ["barrier", "P", "cycles/episode", "sync vars", "sync ops",
         "hot spot"],
        rows,
        title="Example 4: barrier episode cost (balanced phases; "
              "separation validated)")


def fft_comparison() -> None:
    p = 16
    rows = []
    for imbalance in (0, 120, 360):
        def cost(pid, stage, extra=imbalance):
            return 60 + extra * ((pid * 7 + stage * 3) % 4 == 0)

        for label, workload in (
                ("pairwise (paper)", PairwiseFFT(p, cost)),
                ("global counter barrier",
                 BarrierFFT(p, cost, CounterBarrier(p))),
                ("global PC-butterfly barrier",
                 BarrierFFT(p, cost, PCButterflyBarrier(p)))):
            result = run_fft(workload)  # validates the exchange network
            rows.append([label, imbalance, result.makespan,
                         result.total_spin])
    print_table(
        ["synchronization", "imbalance", "makespan", "total spin"],
        rows,
        title=f"Example 5: {p}-processor FFT, log2(P) stages "
              "(results validated)")


def main() -> None:
    barrier_sweep()
    print()
    fft_comparison()


if __name__ == "__main__":
    main()
