#!/usr/bin/env python3
"""Quickstart: analyze a loop, plan its synchronization, simulate it.

Walks the paper's pipeline end to end on the running example of
Fig. 2.1:

1. express the loop in the IR,
2. compute its data dependence graph and classify it (DOACROSS),
3. build the process-oriented synchronization plan (Fig. 4.2(b)),
4. simulate it on an 8-processor machine and validate the execution
   against sequential semantics.

Run:  python examples/quickstart.py
"""

from repro.apps.kernels import fig21_loop
from repro.core import build_sync_plan
from repro.depend import DependenceGraph, classify
from repro.schemes import ProcessOrientedScheme
from repro.sim import Machine, MachineConfig


def main() -> None:
    # 1. the loop of Fig. 2.1(a)
    loop = fig21_loop(n=100)
    print(f"loop {loop.name!r}: {loop.n_iterations} iterations, "
          f"{len(loop.body)} statements")

    # 2. dependence analysis
    graph = DependenceGraph(loop)
    print("\ndata dependences (Fig. 2.1(b)):")
    for dep in graph.dependences:
        print(f"  {dep}")
    outcome = classify(loop)
    print(f"classification: {outcome.label} ({outcome.reason})")

    # 3. the synchronization plan the compiler would emit (Fig. 4.2(b))
    plan = build_sync_plan(loop)
    print("\ntransformed DOACROSS loop:")
    print(plan.pseudocode())

    # 4. simulate under the process-oriented scheme
    scheme = ProcessOrientedScheme(processors=8)
    machine = Machine(MachineConfig(processors=8))
    result = scheme.run(loop, machine=machine)  # validates automatically

    print("\nsimulated execution on 8 processors "
          "(validated against sequential semantics):")
    for key, value in result.summary().items():
        print(f"  {key:22s} {value}")
    serial = loop.serial_cycles()
    print(f"  {'speedup vs serial':22s} "
          f"{result.speedup_over(serial):.2f}x "
          f"(serial compute = {serial} cycles)")


if __name__ == "__main__":
    main()
