#!/usr/bin/env python3
"""Run a whole multi-loop program through the compiler.

A miniature scientific program — produce, smooth (a true DOACROSS
recurrence), difference, and a deliberately unanalyzable reduction —
compiled loop by loop: each is classified, delay-analyzed, given a
synchronization scheme (or sent to a single processor), simulated with
the memory the previous loops left behind, and validated against the
chained sequential semantics.

Run:  python examples/whole_program.py
"""

from repro.compiler import run_program
from repro.frontend import parse_loop
from repro.report import print_table

LOOPS = [
    ("initialize", """
DO I = 1, N
  A(I) = ...
END DO
"""),
    ("smooth", """
DO I = 2, N
  B(I) = A(I) + B(I-1)
END DO
"""),
    ("difference", """
DO I = 1, M
  C(I) = B(I+1) + B(I)
END DO
"""),
    ("gather", """
DO I = 1, N
  D(I) = C(2*I)
  E(I) = D(2*I)
END DO
"""),
]


def main() -> None:
    n = 32
    loops = [parse_loop(source, name=name, N=n, M=n - 1)
             for name, source in LOOPS]
    program = run_program(loops, processors=8)

    rows = []
    for run in program.runs:
        delay = ("-" if run.decision is None or run.decision.delay is None
                 else f"{run.decision.delay.delay:.1f}")
        classification = ("serial" if run.decision is None
                          else run.decision.classification.label)
        rows.append([run.loop.name, classification, delay, run.scheme,
                     run.result.makespan, run.result.sync_vars])

    print_table(
        ["loop", "classification", "delay", "scheme", "makespan",
         "sync vars"],
        rows,
        title=f"4-loop program on 8 processors, N={n} "
              f"(total {program.total_cycles} cycles; final state "
              "validated against the chained sequential execution)")

    print("\nvalues flow across loops: e.g. E(4) =",
          program.final_state.get(("E", 4)))


if __name__ == "__main__":
    main()
