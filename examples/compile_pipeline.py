#!/usr/bin/env python3
"""Drive the whole stack the way a parallelizing compiler would.

1. write a loop in the paper's Fortran surface syntax,
2. parse it to the IR, analyze dependences, compute the doacross delay,
3. let the compile pipeline pick a synchronization scheme,
4. simulate the chosen instrumentation, validate it, and
5. draw the processor timeline.

Run:  python examples/compile_pipeline.py
"""

from repro.compiler import compile_loop
from repro.frontend import parse_loop
from repro.report import render_timeline
from repro.sim import Machine, MachineConfig

SOURCE = """
DO I = 1, N
  S1: A(I+3) = ...        ! source of three flow dependences
  S2: ...    = A(I+1)
  S3: ...    = A(I+2)
  S4: A(I)   = B(I-2)
  S5: B(I)   = A(I-1)
END DO
"""


def main() -> None:
    print("source:")
    print(SOURCE)

    loop = parse_loop(SOURCE, name="demo", N=48)
    decision = compile_loop(loop, processors=8, objective="time")
    print(decision.explain())

    machine = Machine(MachineConfig(processors=8))
    result = machine.run(decision.instrumented)
    decision.instrumented.validate(result)

    predicted = decision.delay.predicted_makespan(loop.n_iterations, 8)
    print(f"\nsimulated makespan {result.makespan} cycles "
          f"(analytic lower bound {predicted:.0f}); "
          f"utilization {result.utilization:.2f}; validated OK\n")
    print(render_timeline(result, width=70))


if __name__ == "__main__":
    main()
