#!/usr/bin/env python3
"""Compare all four synchronization schemes on one DOACROSS loop.

Reproduces the paper's section 3 taxonomy as a measurement: the same
loop (Fig. 2.1, plus a variant with one artificially slow iteration)
runs under

* reference-based keys (Cedar),
* instance-based full/empty bits (HEP),
* statement counters (Alliant Advance/Await),
* process counters (the paper's proposal),

and the table shows where each scheme pays: synchronization variables,
initialization, busy-wait traffic, and sensitivity to a delayed
iteration (horizontal vs vertical sharing).

Run:  python examples/compare_schemes.py [N] [P]
"""

import sys

from repro.apps.kernels import fig21_loop, fig21_loop_with_delay
from repro.report import print_table
from repro.schemes import make_scheme, scheme_names
from repro.sim import Machine, MachineConfig


def main(n: int = 120, processors: int = 8) -> None:
    machine = Machine(MachineConfig(processors=processors))
    plain = fig21_loop(n=n)
    delayed = fig21_loop_with_delay(n=n, slow_iteration=n // 3,
                                    slow_cost=800)

    rows = []
    for name in scheme_names():
        scheme = make_scheme(name)
        result = scheme.run(plain, machine=machine)
        slow = scheme.run(delayed, machine=machine)
        rows.append([
            name, result.sync_vars, result.sync_storage_words,
            result.init_cycles, result.sync_transactions,
            result.makespan, round(result.utilization, 3),
            slow.makespan - result.makespan,
        ])

    print_table(
        ["scheme", "sync vars", "storage", "init", "sync tx",
         "makespan", "util", "delay penalty"],
        rows,
        title=f"Fig 2.1 loop, N={n}, P={processors} "
              "(delay penalty: extra cycles when one S1 takes 800)")

    print("\nreading the table:")
    print(" * data-oriented schemes (rows 1-2) pay O(N) variables and")
    print("   initialization, and poll through the memory system;")
    print(" * the statement-oriented scheme is cheap but serializes each")
    print("   statement across iterations -> the delay penalty row;")
    print(" * the process-oriented scheme uses a constant number of")
    print("   counters and confines a delay to the dependent iterations.")


if __name__ == "__main__":
    arguments = [int(a) for a in sys.argv[1:3]]
    main(*arguments)
