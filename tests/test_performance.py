"""Performance smoke tests: the simulator stays usable at real sizes.

Not micro-benchmarks (those live in benchmarks/), just guards that keep
the event engine's complexity honest: a few hundred thousand simulated
events must finish in seconds, and event counts must scale linearly in
the work simulated.
"""

from __future__ import annotations

import time

from repro.apps.kernels import fig21_loop
from repro.apps.relaxation import PipelinedRelaxation, run_relaxation
from repro.schemes import ProcessOrientedScheme
from repro.sim import Machine, MachineConfig


def test_large_doacross_runs_quickly():
    loop = fig21_loop(n=600)
    machine = Machine(MachineConfig(processors=16, record_trace=False))
    start = time.perf_counter()
    result = ProcessOrientedScheme(processors=16).run(
        loop, machine=machine, validate=False)
    elapsed = time.perf_counter() - start
    assert result.makespan > 0
    assert elapsed < 15.0, f"600-iteration simulation took {elapsed:.1f}s"


def test_large_relaxation_runs_quickly():
    start = time.perf_counter()
    result = run_relaxation(PipelinedRelaxation(48, group=2),
                            processors=16, validate=False,
                            record_trace=False)
    elapsed = time.perf_counter() - start
    assert result.makespan > 0
    assert elapsed < 15.0, f"48x48 relaxation took {elapsed:.1f}s"


def test_simulation_cost_scales_linearly():
    """Doubling the loop roughly doubles wall time (no superlinear
    blowup in the event queue)."""
    machine = Machine(MachineConfig(processors=8, record_trace=False))
    scheme = ProcessOrientedScheme(processors=8)

    def wall(n):
        loop = fig21_loop(n=n)
        start = time.perf_counter()
        scheme.run(loop, machine=machine, validate=False)
        return time.perf_counter() - start

    wall(50)                      # warm-up
    small = max(wall(100), 1e-4)
    large = wall(400)
    assert large / small < 12, (small, large)
