"""The engine's lightweight sync tap: the sanitizer's counters-mode feed.

The tap appends ``(kind, where, task)`` at exactly the program points
where the trace recorder allocates ``seq`` numbers, so in a full-trace
run the enumerated tap reproduces the merged trace/sync_trace stream
index for index -- and in counters mode it exists where the trace does
not, which is what lets the race check scale to fig3.x-sized runs.
"""

from __future__ import annotations

import dataclasses

from repro.analyze.sanitizer import check_trace, event_stream
from repro.lab.apps import build_app
from repro.schemes.registry import make_scheme
from repro.sim import Machine, MachineConfig


def _run(metrics, record_trace, sync_tap, n=16):
    loop = build_app("fig2.1", {"n": n})
    instrumented = make_scheme("statement-oriented").instrument(loop)
    machine = Machine(MachineConfig(
        processors=4, metrics=metrics, record_trace=record_trace,
        sync_tap=sync_tap))
    return machine.run(instrumented)


def test_tap_off_by_default():
    result = _run(metrics="full", record_trace=True, sync_tap=False)
    assert result.tap is None


def test_counters_mode_tap_feeds_the_sanitizer():
    """No trace, no sync_trace -- yet the stream exists and checks."""
    result = _run(metrics="counters", record_trace=False, sync_tap=True)
    assert not result.trace and not result.sync_trace
    assert result.tap, "tap must record in counters mode"
    events = event_stream(result)
    assert events, "harness filtering must not empty a real run"
    assert check_trace(result, oracle="om") == []
    assert check_trace(result, oracle="vc") == []


def test_tap_reproduces_the_merged_trace_stream():
    """Full-trace run: enumerate(tap) == merge(trace, sync_trace)."""
    result = _run(metrics="full", record_trace=True, sync_tap=True)
    assert result.trace and result.sync_trace and result.tap
    via_tap = event_stream(result)
    via_trace = event_stream(dataclasses.replace(result, tap=None))
    assert via_tap == via_trace


def test_tap_streams_agree_across_modes():
    """Counters-mode tap == full-mode tap for the same config."""
    full = _run(metrics="full", record_trace=True, sync_tap=True)
    counters = _run(metrics="counters", record_trace=False, sync_tap=True)
    assert full.tap == counters.tap


def test_tap_does_not_perturb_results():
    """Same trace, memory, and sync-op counts with and without the tap."""
    plain = _run(metrics="full", record_trace=True, sync_tap=False)
    tapped = _run(metrics="full", record_trace=True, sync_tap=True)
    assert plain.trace == tapped.trace
    assert plain.final_memory == tapped.final_memory
    assert plain.makespan == tapped.makespan
    assert plain.total_sync_ops == tapped.total_sync_ops
