"""Engine fuzzing: random op soups must respect the core invariants.

Hypothesis generates arbitrary mixes of computes, memory traffic, fabric
writes and (always-satisfiable) waits across several concurrent
processes, then checks the engine's global invariants:

* time is monotone and everything completes (no lost resumes),
* every write is eventually visible (last committed value per address
  matches the last write in commit order),
* per-task busy accounting equals the compute issued,
* determinism: the same soup replays to the identical trace.
"""

from __future__ import annotations

from collections import defaultdict

from hypothesis import given, settings, strategies as st

from repro.sim import (BroadcastSyncFabric, Compute, Engine, Fence,
                       MemRead, MemWrite, MemoryConfig, SharedMemory,
                       SyncUpdate, SyncWrite, WaitUntil)

N_VARS = 4
N_ADDRS = 6


@st.composite
def op_soups(draw):
    """A list of processes, each a list of op descriptors."""
    n_processes = draw(st.integers(min_value=1, max_value=5))
    soups = []
    for _ in range(n_processes):
        n_ops = draw(st.integers(min_value=1, max_value=12))
        ops = []
        for _ in range(n_ops):
            kind = draw(st.sampled_from(
                ["compute", "read", "write", "sync_write", "sync_update",
                 "fence", "wait_nonneg"]))
            if kind == "compute":
                ops.append(("compute", draw(st.integers(0, 20))))
            elif kind == "read":
                ops.append(("read", draw(st.integers(0, N_ADDRS - 1))))
            elif kind == "write":
                ops.append(("write", draw(st.integers(0, N_ADDRS - 1)),
                            draw(st.integers(0, 99))))
            elif kind == "sync_write":
                ops.append(("sync_write", draw(st.integers(0, N_VARS - 1)),
                            draw(st.integers(0, 99))))
            elif kind == "sync_update":
                ops.append(("sync_update",
                            draw(st.integers(0, N_VARS - 1))))
            elif kind == "fence":
                ops.append(("fence",))
            else:
                # waits for value >= 0: always satisfiable, still walks
                # the full park/notify path when issued mid-traffic
                ops.append(("wait_nonneg",
                            draw(st.integers(0, N_VARS - 1))))
        soups.append(ops)
    return soups


def build_and_run(soups):
    memory = SharedMemory(MemoryConfig(latency=3, write_latency=7,
                                       modules=4))
    fabric = BroadcastSyncFabric()
    fabric.alloc(N_VARS, init=0)
    engine = Engine(memory, fabric)

    def process(ops):
        for op in ops:
            if op[0] == "compute":
                yield Compute(op[1])
            elif op[0] == "read":
                yield MemRead(("A", op[1]))
            elif op[0] == "write":
                yield MemWrite(("A", op[1]), op[2])
            elif op[0] == "sync_write":
                yield SyncWrite(op[1], op[2])
            elif op[0] == "sync_update":
                yield SyncUpdate(op[1], lambda v: v + 1)
            elif op[0] == "fence":
                yield Fence()
            else:
                yield WaitUntil(op[1], lambda v: v >= 0)

    stats = [engine.spawn(process(ops), name=f"p{index}")
             for index, ops in enumerate(soups)]
    makespan = engine.run()
    return engine, memory, fabric, stats, makespan


@settings(max_examples=60, deadline=None)
@given(soups=op_soups())
def test_everything_completes_and_accounts(soups):
    engine, memory, fabric, stats, makespan = build_and_run(soups)
    for ops, stat in zip(soups, stats):
        expected_busy = sum(op[1] for op in ops if op[0] == "compute")
        assert stat.busy == expected_busy
        assert stat.done_at <= makespan
        assert stat.accounted <= makespan


@settings(max_examples=60, deadline=None)
@given(soups=op_soups())
def test_last_committed_write_wins(soups):
    engine, memory, fabric, _stats, _makespan = build_and_run(soups)
    last_by_addr = {}
    for record in engine.trace:
        if record.kind == "W":
            last_by_addr[record.addr] = record.value
    for addr, value in last_by_addr.items():
        assert memory.peek(addr) == value


@settings(max_examples=30, deadline=None)
@given(soups=op_soups())
def test_deterministic_replay(soups):
    def fingerprint():
        engine, _memory, fabric, _stats, makespan = build_and_run(soups)
        return (makespan,
                tuple((r.commit, r.kind, r.addr, r.value)
                      for r in engine.trace),
                tuple(fabric.value(v) for v in range(N_VARS)))

    assert fingerprint() == fingerprint()


@settings(max_examples=30, deadline=None)
@given(soups=op_soups())
def test_sync_updates_count_exactly(soups):
    _engine, _memory, fabric, _stats, _makespan = build_and_run(soups)
    counts = defaultdict(int)
    tainted = set()  # vars also plainly written: final value unpredictable
    for ops in soups:
        for op in ops:
            if op[0] == "sync_update":
                counts[op[1]] += 1
            elif op[0] == "sync_write":
                tainted.add(op[1])
    # where only atomic updates touched a var, no increment may be lost
    for var, count in counts.items():
        if var not in tainted:
            assert fabric.value(var) == count
