"""Scheduling policies: self-scheduling and static partitioning."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.sim.scheduler import SelfScheduler, StaticScheduler


def drain(scheduler, n_processors):
    """Pull iterations round-robin until every processor is done."""
    taken = {p: [] for p in range(n_processors)}
    live = set(range(n_processors))
    while live:
        for p in sorted(live):
            value = scheduler.next_for(p)
            if value is None:
                live.discard(p)
            else:
                taken[p].append(value)
    return taken


def test_self_scheduler_hands_out_in_order():
    scheduler = SelfScheduler([10, 20, 30, 40])
    assert [scheduler.next_for(1), scheduler.next_for(0),
            scheduler.next_for(1)] == [10, 20, 30]
    assert scheduler.next_for(2) == 40
    assert scheduler.next_for(0) is None
    assert scheduler.grab_is_shared_access


def test_static_cyclic_round_robins():
    scheduler = StaticScheduler([1, 2, 3, 4, 5], n_processors=2,
                                policy="cyclic")
    taken = drain(scheduler, 2)
    assert taken[0] == [1, 3, 5]
    assert taken[1] == [2, 4]
    assert not scheduler.grab_is_shared_access


def test_static_block_chunks():
    scheduler = StaticScheduler([1, 2, 3, 4, 5, 6], n_processors=3,
                                policy="block")
    taken = drain(scheduler, 3)
    assert taken == {0: [1, 2], 1: [3, 4], 2: [5, 6]}


def test_static_block_uneven():
    scheduler = StaticScheduler([1, 2, 3, 4, 5], n_processors=2,
                                policy="block")
    taken = drain(scheduler, 2)
    assert taken[0] + taken[1] == [1, 2, 3, 4, 5]


def test_unknown_policy_rejected():
    with pytest.raises(ValueError):
        StaticScheduler([1], n_processors=1, policy="banana")


def test_empty_iteration_lists():
    assert SelfScheduler([]).next_for(0) is None
    static = StaticScheduler([], n_processors=2, policy="block")
    assert static.next_for(0) is None and static.next_for(1) is None


@given(st.lists(st.integers(), max_size=50, unique=True),
       st.integers(min_value=1, max_value=8),
       st.sampled_from(["cyclic", "block"]))
def test_static_policies_partition_exactly(items, processors, policy):
    """Every iteration is handed out exactly once, none invented."""
    scheduler = StaticScheduler(items, n_processors=processors,
                                policy=policy)
    taken = drain(scheduler, processors)
    flat = [value for queue in taken.values() for value in queue]
    assert sorted(flat) == sorted(items)


@given(st.lists(st.integers(), max_size=50), st.integers(min_value=1,
                                                         max_value=8))
def test_self_scheduler_exhaustive_in_order(items, processors):
    scheduler = SelfScheduler(items)
    taken = drain(scheduler, processors)
    flat = [value for queue in taken.values() for value in queue]
    # round-robin draining preserves global order per grab sequence
    assert sorted(flat) == sorted(items)
    assert len(flat) == len(items)
