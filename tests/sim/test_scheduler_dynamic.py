"""Chunked and guided self-scheduling (Tang & Yew [23, 24])."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.apps.kernels import doall_loop, fig21_loop_with_delay
from repro.schemes import ProcessOrientedScheme
from repro.sim import Machine, MachineConfig, SCHED_COUNTER
from repro.sim.scheduler import ChunkSelfScheduler, GuidedSelfScheduler


def drain(scheduler, n_processors):
    taken = {p: [] for p in range(n_processors)}
    live = set(range(n_processors))
    while live:
        for p in sorted(live):
            value = scheduler.next_for(p)
            if value is None:
                live.discard(p)
            else:
                taken[p].append(value)
    return taken


def test_chunk_scheduler_contiguous_chunks():
    scheduler = ChunkSelfScheduler(list(range(1, 11)), chunk=3)
    first = [scheduler.next_for(0) for _ in range(3)]
    assert first == [1, 2, 3]
    assert scheduler.next_for(1) == 4  # next chunk to another processor


def test_chunk_scheduler_shared_grab_only_on_refill():
    scheduler = ChunkSelfScheduler(list(range(6)), chunk=3)
    assert scheduler.needs_shared_grab(0)
    scheduler.next_for(0)
    assert not scheduler.needs_shared_grab(0)  # 2 left locally
    scheduler.next_for(0)
    scheduler.next_for(0)
    assert scheduler.needs_shared_grab(0)      # queue empty again


def test_chunk_validation():
    with pytest.raises(ValueError):
        ChunkSelfScheduler([1], chunk=0)
    with pytest.raises(ValueError):
        GuidedSelfScheduler([1], n_processors=0)


def test_guided_chunks_shrink():
    scheduler = GuidedSelfScheduler(list(range(64)), n_processors=4)
    # grab everything on one processor to observe the shrinking sizes
    while True:
        value = scheduler.next_for(0)
        if value is None:
            break
    # reconstruct chunk sizes from the grabs counter
    assert scheduler.grabs > 4          # more than static quarters
    assert scheduler.grabs < 64         # far fewer than per-iteration


@given(st.lists(st.integers(), max_size=60, unique=True),
       st.integers(min_value=1, max_value=6),
       st.integers(min_value=1, max_value=8))
def test_chunked_policies_exhaustive(items, chunk, processors):
    for scheduler in (ChunkSelfScheduler(items, chunk=chunk),
                      GuidedSelfScheduler(items, n_processors=processors)):
        taken = drain(scheduler, processors)
        flat = [value for queue in taken.values() for value in queue]
        assert sorted(flat) == sorted(items)


def grabs_in(result):
    return len([r for r in result.trace if r.addr == SCHED_COUNTER])


def test_chunking_cuts_scheduling_traffic_on_doall():
    """For independent iterations chunking is a pure win on grab
    traffic (the point of [24])."""
    loop = doall_loop(n=120, cost=8)
    scheme = ProcessOrientedScheme()
    plain = scheme.run(loop, machine=Machine(MachineConfig(
        processors=8, schedule="self")))
    chunked = scheme.run(loop, machine=Machine(MachineConfig(
        processors=8, schedule="chunk", chunk_size=8)))
    guided = scheme.run(loop, machine=Machine(MachineConfig(
        processors=8, schedule="guided")))
    assert grabs_in(chunked) < grabs_in(plain) / 4
    assert grabs_in(guided) < grabs_in(plain) / 2
    assert chunked.makespan <= plain.makespan * 1.1


def test_chunking_hurts_doacross_pipelines():
    """For DOACROSS loops, giving one processor consecutive iterations
    serializes the dependence chain -- the scheduling-order effect of
    [23]: fine-grained (self/cyclic) order beats chunked order."""
    loop = fig21_loop_with_delay(n=80, slow_iteration=40, slow_cost=400)
    scheme = ProcessOrientedScheme()
    plain = scheme.run(loop, machine=Machine(MachineConfig(
        processors=8, schedule="self")))
    chunked = scheme.run(loop, machine=Machine(MachineConfig(
        processors=8, schedule="chunk", chunk_size=8)))
    assert chunked.makespan > 1.5 * plain.makespan


def test_all_schedules_still_correct():
    loop = fig21_loop_with_delay(n=40, slow_iteration=20, slow_cost=200)
    scheme = ProcessOrientedScheme()
    for schedule in ("self", "chunk", "guided", "cyclic", "block"):
        machine = Machine(MachineConfig(processors=4, schedule=schedule))
        result = scheme.run(loop, machine=machine)  # validates
        assert result.makespan > 0


def test_machine_config_chunk_validation():
    with pytest.raises(ValueError):
        MachineConfig(chunk_size=0)
