"""Structured hazard errors: deadlock cycles, budgets, bounded waits.

Every failure mode of the engine must surface as a DeadlockError or
SimulationLimitError carrying a HazardReport -- per-task blocking state,
the wait-for graph, and (when one exists) the blocking cycle -- so a
stuck run is debuggable from the exception alone.
"""

from __future__ import annotations

import pytest

import repro
from repro.sim import (BroadcastSyncFabric, Compute, DeadlockError, Engine,
                       HazardError, MemoryConfig, MemorySyncFabric, MemRead,
                       SharedMemory, SimulationLimitError, SyncWrite,
                       WaitUntil)


def make_engine(fabric=None, memory=None, **kwargs):
    memory = memory or SharedMemory(MemoryConfig(latency=2))
    fabric = fabric or BroadcastSyncFabric()
    return Engine(memory, fabric, **kwargs), memory, fabric


def test_cross_wait_deadlock_reports_the_cycle():
    """Two tasks each waiting on a variable the other owns: the report
    must name both tasks, their variables, and the two-task cycle."""
    fabric = BroadcastSyncFabric()
    v0, v1 = fabric.alloc(2, init=0)
    engine, *_ = make_engine(fabric=fabric)

    def a():
        yield SyncWrite(v0, 1)
        yield WaitUntil(v1, lambda v: v >= 2, reason="a needs v1>=2")

    def b():
        yield SyncWrite(v1, 1)
        yield WaitUntil(v0, lambda v: v >= 2, reason="b needs v0>=2")

    engine.spawn(a(), name="a")
    engine.spawn(b(), name="b")
    with pytest.raises(DeadlockError) as excinfo:
        engine.run()
    err = excinfo.value
    report = err.report
    assert report is not None
    assert sorted(err.cycle) == ["a", "b"]
    diag_a = report.by_task()["a"]
    assert diag_a.state == "parked"
    assert diag_a.var == v1
    assert diag_a.waits_on == "b"
    assert diag_a.reason == "a needs v1>=2"
    assert diag_a.value == 1          # the committed-but-insufficient value
    assert diag_a.blocked_for >= 0
    diag_b = report.by_task()["b"]
    assert diag_b.waits_on == "a"
    assert "blocking wait-for cycle" in str(err)
    assert "a -> b" in str(err) or "b -> a" in str(err)


def test_limit_error_carries_diagnosis():
    engine, *_ = make_engine(max_cycles=100)

    def spinner():
        while True:
            yield Compute(10)

    engine.spawn(spinner(), name="loop")
    with pytest.raises(SimulationLimitError) as excinfo:
        engine.run()
    report = excinfo.value.report
    assert report is not None
    assert report.by_task()["loop"].state == "running"
    assert "exceeded 100 cycles" in str(excinfo.value)


def test_limit_error_includes_non_waituntil_blocked_tasks():
    """A task stuck in a plain memory access (not a WaitUntil) must still
    appear in the diagnosis, as 'stalled' with the op description."""
    memory = SharedMemory(MemoryConfig(latency=10_000))
    engine, *_ = make_engine(memory=memory, max_cycles=100)

    def reader():
        yield MemRead(("A", 0))

    engine.spawn(reader(), name="reader")
    with pytest.raises(SimulationLimitError) as excinfo:
        engine.run()
    diag = excinfo.value.report.by_task()["reader"]
    assert diag.state == "stalled"
    assert "memory read round trip" in diag.reason


def test_bounded_park_expires_into_diagnosed_deadlock():
    fabric = BroadcastSyncFabric()
    var = fabric.alloc(1, init=0)[0]
    engine, *_ = make_engine(fabric=fabric)

    def waiter():
        yield WaitUntil(var, lambda v: v >= 1, reason="lost release",
                        max_spin=50)

    engine.spawn(waiter(), name="w")
    with pytest.raises(DeadlockError) as excinfo:
        engine.run()
    assert "bounded wait expired" in str(excinfo.value)
    assert excinfo.value.report.by_task()["w"].state == "parked"


def test_bounded_park_timeout_does_not_stretch_makespan():
    """A satisfied bounded wait must disarm its timeout: the stale event
    is dropped without advancing simulated time."""
    fabric = BroadcastSyncFabric()
    var = fabric.alloc(1, init=0)[0]
    engine, *_ = make_engine(fabric=fabric)

    def waiter():
        yield WaitUntil(var, lambda v: v >= 1, max_spin=100_000)

    def setter():
        yield Compute(10)
        yield SyncWrite(var, 1)

    engine.spawn(waiter(), name="w")
    engine.spawn(setter(), name="s")
    assert engine.run() < 100


def test_bounded_poll_expires_into_diagnosed_deadlock():
    memory = SharedMemory()
    fabric = MemorySyncFabric(memory, poll_interval=3)
    var = fabric.alloc(1, init=0)[0]
    engine = Engine(memory, fabric)

    def waiter():
        yield WaitUntil(var, lambda v: v >= 1, reason="never set",
                        max_spin=60)

    engine.spawn(waiter(), name="w")
    with pytest.raises(DeadlockError) as excinfo:
        engine.run()
    assert "bounded wait expired" in str(excinfo.value)
    assert excinfo.value.report.by_task()["w"].state == "polling"


def test_stagnation_watchdog_catches_poll_livelock():
    """Poll-mode waiters keep the event queue busy forever, so a drained
    queue never happens; the stagnation watchdog must catch it."""
    memory = SharedMemory()
    fabric = MemorySyncFabric(memory, poll_interval=3)
    var = fabric.alloc(1, init=0)[0]
    engine = Engine(memory, fabric, stagnation_limit=200)

    def waiter():
        yield WaitUntil(var, lambda v: v >= 1, reason="stuck poll")

    engine.spawn(waiter(), name="w")
    with pytest.raises(DeadlockError) as excinfo:
        engine.run()
    assert "stagnation" in str(excinfo.value)
    diag = excinfo.value.report.by_task()["w"]
    assert diag.state == "polling"
    assert diag.var == var


def test_stagnation_watchdog_ignores_real_progress():
    memory = SharedMemory()
    fabric = MemorySyncFabric(memory, poll_interval=3)
    var = fabric.alloc(1, init=0)[0]
    engine = Engine(memory, fabric, stagnation_limit=200)

    def waiter():
        yield WaitUntil(var, lambda v: v >= 1)

    def setter():
        for _ in range(100):
            yield Compute(10)
        yield SyncWrite(var, 1)

    engine.spawn(waiter(), name="w")
    engine.spawn(setter(), name="s")
    engine.run()  # completes: polling with eventual release is not a hang


def test_hazard_errors_are_a_family():
    assert issubclass(DeadlockError, HazardError)
    assert issubclass(SimulationLimitError, HazardError)
    err = DeadlockError("bare")  # report-less raise still works
    assert err.report is None
    assert err.tasks == []
    assert err.cycle is None


def test_error_types_reexported_from_top_level_package():
    assert repro.DeadlockError is DeadlockError
    assert repro.SimulationLimitError is SimulationLimitError
    assert repro.HazardError is HazardError
    assert repro.ValidationError is not None
    assert repro.FaultPlan is not None
    assert repro.make_plan("jitter").name == "jitter"
