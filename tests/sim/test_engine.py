"""Engine semantics: timing, visibility, waits, determinism, deadlock."""

from __future__ import annotations

import pytest

from repro.sim import (Annotate, BroadcastSyncFabric, Compute, DeadlockError,
                       Engine, Fence, MemRead, MemWrite, MemoryConfig,
                       MemorySyncFabric, SharedMemory, SimulationLimitError,
                       SyncUpdate, SyncWrite, WaitUntil)


def make_engine(fabric=None, memory=None, **kwargs):
    memory = memory or SharedMemory(MemoryConfig(latency=2))
    fabric = fabric or BroadcastSyncFabric()
    return Engine(memory, fabric, **kwargs), memory, fabric


def run_one(gen, **kwargs):
    engine, memory, fabric = make_engine(**kwargs)
    stats = engine.spawn(gen, name="t")
    makespan = engine.run()
    return engine, stats, makespan


def test_compute_advances_time_and_busy():
    def proc():
        yield Compute(7)
        yield Compute(3)

    _engine, stats, makespan = run_one(proc())
    assert makespan == 10
    assert stats.busy == 10
    assert stats.done_at == 10


def test_compute_rejects_negative():
    with pytest.raises(ValueError):
        Compute(-1)


def test_read_returns_written_value():
    def proc(out):
        yield MemWrite(("A", 0), 99)
        yield Fence()
        value = yield MemRead(("A", 0))
        out.append(value)

    out = []
    run_one(proc(out))
    assert out == [99]


def test_posted_write_not_yet_visible_without_fence():
    """A second process reading immediately may see the old value; after
    the writer's fence completes, reads see the new value."""
    memory = SharedMemory(MemoryConfig(latency=10))
    engine = Engine(memory, BroadcastSyncFabric())
    order = []

    def writer():
        yield MemWrite(("A", 0), 1)
        order.append(("write_issued", engine.now))
        yield Fence()
        order.append(("fence_done", engine.now))

    engine.spawn(writer(), name="w")
    engine.run()
    issued = dict(order)["write_issued"]
    fenced = dict(order)["fence_done"]
    assert issued < fenced  # the fence actually waited for visibility
    assert memory.peek(("A", 0)) == 1


def test_fence_with_no_writes_is_immediate():
    def proc():
        yield Fence()

    _e, _s, makespan = run_one(proc())
    assert makespan == 0


def test_event_wait_wakes_on_commit():
    fabric = BroadcastSyncFabric()
    var = fabric.alloc(1, init=0)[0]
    engine, *_ = make_engine(fabric=fabric)
    log = []

    def waiter():
        yield WaitUntil(var, lambda v: v >= 5, reason="v>=5")
        log.append(("woke", engine.now))

    def setter():
        yield Compute(50)
        yield SyncWrite(var, 5)

    w = engine.spawn(waiter(), name="waiter")
    engine.spawn(setter(), name="setter")
    engine.run()
    assert log and log[0][1] >= 50
    assert w.spin >= 50  # the whole wait is accounted as spin


def test_wait_already_satisfied_counts_as_immediate():
    fabric = BroadcastSyncFabric()
    var = fabric.alloc(1, init=9)[0]
    engine, *_ = make_engine(fabric=fabric)

    def waiter():
        yield WaitUntil(var, lambda v: v >= 5)

    stats = engine.spawn(waiter(), name="w")
    engine.run()
    assert stats.waits_satisfied_immediately == 1
    assert stats.spin == 0


def test_polled_wait_charges_fabric_transactions():
    memory = SharedMemory()
    fabric = MemorySyncFabric(memory, poll_interval=3)
    var = fabric.alloc(1, init=0)[0]
    engine = Engine(memory, fabric)

    def waiter():
        yield WaitUntil(var, lambda v: v >= 1)

    def setter():
        yield Compute(40)
        yield SyncWrite(var, 1)

    engine.spawn(waiter(), name="w")
    engine.spawn(setter(), name="s")
    engine.run()
    # ~40 cycles of polling every 3 cycles, plus the set itself
    assert fabric.transactions >= 5


def test_sync_update_returns_new_value():
    fabric = BroadcastSyncFabric()
    var = fabric.alloc(1, init=10)[0]
    engine, *_ = make_engine(fabric=fabric)
    got = []

    def proc():
        value = yield SyncUpdate(var, lambda v: v + 5)
        got.append(value)

    engine.spawn(proc(), name="p")
    engine.run()
    assert got == [15]
    assert fabric.value(var) == 15


def test_concurrent_sync_updates_are_atomic():
    fabric = BroadcastSyncFabric()
    var = fabric.alloc(1, init=0)[0]
    engine, *_ = make_engine(fabric=fabric)
    seen = []

    def proc():
        value = yield SyncUpdate(var, lambda v: v + 1)
        seen.append(value)

    for i in range(10):
        engine.spawn(proc(), name=f"p{i}")
    engine.run()
    assert sorted(seen) == list(range(1, 11))  # every increment distinct
    assert fabric.value(var) == 10


def test_deadlock_detected_with_reason():
    fabric = BroadcastSyncFabric()
    var = fabric.alloc(1, init=0)[0]
    engine, *_ = make_engine(fabric=fabric)

    def waiter():
        yield WaitUntil(var, lambda v: v >= 1, reason="never-signalled")

    engine.spawn(waiter(), name="stuck")
    with pytest.raises(DeadlockError) as excinfo:
        engine.run()
    assert "never-signalled" in str(excinfo.value)


def test_cycle_budget_enforced():
    engine, *_ = make_engine(max_cycles=100)

    def spinner():
        while True:
            yield Compute(10)

    engine.spawn(spinner(), name="loop")
    with pytest.raises(SimulationLimitError):
        engine.run()


def test_events_in_the_past_rejected():
    engine, *_ = make_engine()
    engine.now = 10
    with pytest.raises(ValueError):
        engine.schedule(5, lambda: None)


def test_annotation_tag_captured_at_issue_time():
    """The trace must attribute a posted write to the tag current at
    issue, not at commit (regression test)."""
    memory = SharedMemory(MemoryConfig(latency=20))
    engine = Engine(memory, BroadcastSyncFabric())

    def proc():
        yield Annotate("tag", {"tag": ("S1", 1)})
        yield MemWrite(("A", 0), 1)
        yield Annotate("tag", {"tag": None})
        yield Compute(100)

    engine.spawn(proc(), name="p")
    engine.run()
    writes = [r for r in engine.trace if r.kind == "W"]
    assert writes[0].tag == ("S1", 1)


def test_annotate_events_recorded():
    engine, *_ = make_engine()

    def proc():
        yield Compute(5)
        yield Annotate("phase_done", {"pid": 0, "phase": 1})

    engine.spawn(proc(), name="p")
    engine.run()
    assert engine.events == [(5, "phase_done", {"pid": 0, "phase": 1})]


def test_unknown_operation_rejected():
    engine, *_ = make_engine()

    def proc():
        yield "not-an-op"

    engine.spawn(proc(), name="p")
    with pytest.raises(TypeError):
        engine.run()


def test_deterministic_replay():
    """Two identical simulations produce identical traces and times."""
    def build():
        memory = SharedMemory()
        fabric = BroadcastSyncFabric()
        var = fabric.alloc(1, init=0)[0]
        engine = Engine(memory, fabric)

        def ping():
            yield Compute(3)
            yield SyncWrite(var, 1)
            yield MemWrite(("A", 0), 1)

        def pong():
            yield WaitUntil(var, lambda v: v >= 1)
            value = yield MemRead(("A", 0))
            yield MemWrite(("A", 1), value)

        engine.spawn(ping(), name="ping")
        engine.spawn(pong(), name="pong")
        makespan = engine.run()
        return makespan, [(r.commit, r.kind, r.addr, r.value)
                          for r in engine.trace]

    assert build() == build()


def test_commit_before_same_cycle_resume():
    """A value committed at time t is visible to a read completing at t."""
    memory = SharedMemory(MemoryConfig(latency=0, service_time=1))
    engine = Engine(memory, BroadcastSyncFabric())
    got = []

    def writer():
        yield MemWrite(("B", 0), 123)

    def reader():
        yield Compute(2)  # read completes after the write's commit
        value = yield MemRead(("B", 0))
        got.append(value)

    engine.spawn(writer(), name="w")
    engine.spawn(reader(), name="r")
    engine.run()
    assert got == [123]


def test_store_to_load_forwarding_same_task():
    """A task reading its own uncommitted posted write gets the buffered
    value immediately (store-to-load forwarding), even when writes take
    far longer to commit than reads."""
    memory = SharedMemory(MemoryConfig(latency=2, write_latency=50))
    engine = Engine(memory, BroadcastSyncFabric())
    seen = []

    def proc():
        yield MemWrite(("A", 0), 123)
        value = yield MemRead(("A", 0))   # before the commit at t~50
        seen.append((value, engine.now))

    engine.spawn(proc(), name="p")
    engine.run()
    assert seen[0][0] == 123
    assert seen[0][1] < 10  # forwarded, not stalled until the commit


def test_forwarding_returns_newest_pending_write():
    memory = SharedMemory(MemoryConfig(latency=2, write_latency=50))
    engine = Engine(memory, BroadcastSyncFabric())
    seen = []

    def proc():
        yield MemWrite(("A", 0), 1)
        yield MemWrite(("A", 0), 2)
        value = yield MemRead(("A", 0))
        seen.append(value)

    engine.spawn(proc(), name="p")
    engine.run()
    assert seen == [2]


def test_forwarding_ends_after_commit():
    """Once every pending write committed, reads go to memory again
    (and still see the committed value)."""
    memory = SharedMemory(MemoryConfig(latency=2, write_latency=10))
    engine = Engine(memory, BroadcastSyncFabric())
    seen = []

    def proc():
        yield MemWrite(("A", 0), 7)
        yield Compute(50)            # commit happens meanwhile
        value = yield MemRead(("A", 0))
        seen.append(value)

    engine.spawn(proc(), name="p")
    engine.run()
    assert seen == [7]
    assert memory.reads == 1  # the late read was a real memory read


def test_no_forwarding_across_tasks():
    """Other processors must NOT see a write before it commits."""
    memory = SharedMemory(MemoryConfig(latency=1, write_latency=40))
    engine = Engine(memory, BroadcastSyncFabric())
    seen = []

    def writer():
        yield MemWrite(("A", 0), 9)

    def reader():
        yield Compute(5)             # well before the commit at ~40
        value = yield MemRead(("A", 0))
        seen.append(value)

    engine.spawn(writer(), name="w")
    engine.spawn(reader(), name="r")
    engine.run()
    assert seen == [None]
