"""Shared-memory model: latency, interleaving, contention, hot spots."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.sim.memory import MemoryConfig, SharedMemory


def test_config_validation():
    with pytest.raises(ValueError):
        MemoryConfig(latency=-1)
    with pytest.raises(ValueError):
        MemoryConfig(service_time=0)
    with pytest.raises(ValueError):
        MemoryConfig(modules=0)


def test_uncontended_access_time_is_service_plus_latency():
    memory = SharedMemory(MemoryConfig(latency=4, service_time=1))
    assert memory.access_time(("A", 0), now=10) == 10 + 1 - 1 + 4


def test_same_module_requests_serialize():
    memory = SharedMemory(MemoryConfig(latency=0, service_time=3, modules=4))
    first = memory.access_time(("A", 0), now=0)
    second = memory.access_time(("A", 0), now=0)  # same address, same module
    assert second == first + 3


def test_different_modules_do_not_serialize():
    memory = SharedMemory(MemoryConfig(latency=0, service_time=3, modules=4))
    first = memory.access_time(("A", 0), now=0)
    second = memory.access_time(("A", 1), now=0)  # neighbour interleaves away
    assert second == first


def test_module_interleaving_spreads_neighbours():
    memory = SharedMemory(MemoryConfig(modules=8))
    modules = {memory.module_of(("A", i)) for i in range(8)}
    assert len(modules) == 8


def test_module_mapping_is_stable_across_interpreter_runs():
    """The array -> module hash must not be salted (Python's hash(str)
    is), or contention-dependent makespans would differ between
    processes and seeded fault replay would not be byte-for-byte."""
    memory = SharedMemory(MemoryConfig(modules=16))
    assert [memory.module_of(("A", i)) for i in range(4)] \
        == [11, 12, 13, 14]
    assert memory.module_of(("B", 0)) == 1


def test_hot_spot_counter_visible_in_module_traffic():
    memory = SharedMemory(MemoryConfig(modules=8))
    for _ in range(50):
        memory.access_time(("hot", 0), now=0)
    for i in range(8):
        memory.access_time(("cold", i), now=0)
    assert memory.max_module_traffic() >= 50


def test_functional_read_write_and_peek():
    memory = SharedMemory()
    assert memory.read(("A", 1)) is None
    memory.write(("A", 1), 42)
    assert memory.read(("A", 1)) == 42
    assert memory.peek(("A", 1)) == 42
    assert memory.transactions == 3  # peek is free
    assert memory.writes == 1 and memory.reads == 2


def test_preload_is_free():
    memory = SharedMemory()
    memory.preload({("A", 0): 7})
    assert memory.transactions == 0
    assert memory.peek(("A", 0)) == 7


def test_snapshot_is_a_copy():
    memory = SharedMemory()
    memory.write(("A", 0), 1)
    snap = memory.snapshot()
    memory.write(("A", 0), 2)
    assert snap[("A", 0)] == 1


@given(st.lists(st.integers(min_value=0, max_value=63), min_size=1,
                max_size=60),
       st.integers(min_value=1, max_value=4))
def test_access_times_never_precede_request(indices, service):
    """Completion is never before now + latency (causality per module)."""
    memory = SharedMemory(MemoryConfig(latency=2, service_time=service,
                                       modules=8))
    now = 0
    for index in indices:
        done = memory.access_time(("A", index), now)
        assert done >= now + 2 + service - 1
        now += 1


@given(st.lists(st.integers(min_value=0, max_value=3), min_size=2,
                max_size=40))
def test_per_module_completions_strictly_ordered(indices):
    """Requests to one module complete in arrival order, spaced by
    service time."""
    memory = SharedMemory(MemoryConfig(latency=1, service_time=2, modules=2))
    last_done = {}
    for position, index in enumerate(indices):
        module = memory.module_of(("A", index))
        done = memory.access_time(("A", index), now=position)
        if module in last_done:
            assert done >= last_done[module] + 2
        last_done[module] = done


def test_shared_data_bus_serializes_across_modules():
    """With bus_service set, requests to *different* modules still
    serialize on the single data bus (the bus-machine organization)."""
    memory = SharedMemory(MemoryConfig(latency=0, service_time=1,
                                       modules=8, bus_service=5))
    first = memory.access_time(("A", 0), now=0)
    second = memory.access_time(("A", 1), now=0)  # different module
    assert second >= first + 5


def test_no_bus_different_modules_parallel():
    memory = SharedMemory(MemoryConfig(latency=0, service_time=1,
                                       modules=8, bus_service=None))
    first = memory.access_time(("A", 0), now=0)
    second = memory.access_time(("A", 1), now=0)
    assert second == first


def test_bus_service_validation():
    with pytest.raises(ValueError):
        MemoryConfig(bus_service=0)
    MemoryConfig(bus_service=None)  # crossbar organization ok


def test_write_latency_asymmetry():
    memory = SharedMemory(MemoryConfig(latency=2, write_latency=30))
    read_done = memory.access_time(("A", 0), now=0, kind="R")
    memory2 = SharedMemory(MemoryConfig(latency=2, write_latency=30))
    write_done = memory2.access_time(("A", 0), now=0, kind="W")
    assert write_done - read_done == 28


def test_write_latency_defaults_to_latency():
    config = MemoryConfig(latency=7)
    assert config.write_latency == 7
    with pytest.raises(ValueError):
        MemoryConfig(write_latency=-1)


def test_data_bus_saturation_end_to_end():
    """A DOALL on a bus machine stops scaling once the bus is the
    bottleneck; the crossbar machine keeps scaling."""
    from repro.apps.kernels import doall_loop
    from repro.schemes import ProcessOrientedScheme
    from repro.sim import Machine, MachineConfig

    loop = doall_loop(n=96, cost=6)

    def makespan(bus, processors):
        machine = Machine(MachineConfig(
            processors=processors, record_trace=False,
            memory=MemoryConfig(bus_service=bus)))
        return ProcessOrientedScheme(processors=processors).run(
            loop, machine=machine, validate=False).makespan

    crossbar_gain = makespan(None, 4) / makespan(None, 16)
    bus_gain = makespan(2, 4) / makespan(2, 16)
    assert crossbar_gain > 1.5     # crossbar still scales 4 -> 16
    assert bus_gain < 1.2          # the bus machine has flatlined
