"""Validators: they must accept correct runs and reject corrupted ones."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.sim.engine import AccessRecord
from repro.sim.validate import (ValidationError, check_dependence_instances,
                                check_final_state,
                                check_reads_match_sequential, mix,
                                statement_reads)


def rec(commit, kind, addr, value, tag, task="t"):
    return AccessRecord(commit=commit, kind=kind, addr=addr, value=value,
                        task=task, tag=tag)


def test_mix_deterministic_and_read_sensitive():
    assert mix("S1", 3, [1, 2]) == mix("S1", 3, [1, 2])
    assert mix("S1", 3, [1, 2]) != mix("S1", 3, [2, 1])
    assert mix("S1", 3, [None]) == mix("S1", 3, [None])
    assert mix("S1", 3, []) != mix("S2", 3, [])
    assert mix("S1", 3, []) != mix("S1", 4, [])


def test_statement_reads_groups_by_tag_in_order():
    trace = [
        rec(5, "R", ("A", 0), 10, ("S1", 1)),
        rec(7, "R", ("A", 1), 11, ("S1", 1)),
        rec(6, "R", ("A", 2), 12, ("S2", 1)),
        rec(8, "W", ("A", 3), 13, ("S1", 1)),  # writes excluded
        rec(9, "R", ("A", 4), 14, None),       # untagged excluded
    ]
    assert statement_reads(trace) == {("S1", 1): [10, 11], ("S2", 1): [12]}


def test_reads_match_sequential_accepts_equal():
    trace = [rec(1, "R", ("A", 0), 10, ("S1", 1))]
    check_reads_match_sequential(trace, {("S1", 1): [10]})


def test_reads_match_sequential_rejects_wrong_value():
    trace = [rec(1, "R", ("A", 0), 999, ("S1", 1))]
    with pytest.raises(ValidationError):
        check_reads_match_sequential(trace, {("S1", 1): [10]})


def test_reads_match_sequential_rejects_missing_instance():
    with pytest.raises(ValidationError):
        check_reads_match_sequential([], {("S1", 1): [10]})


def test_reads_match_strict_mode_rejects_extras():
    trace = [rec(1, "R", ("A", 0), 1, ("ghost", 9))]
    check_reads_match_sequential(trace, {}, ignore_untagged=True)
    with pytest.raises(ValidationError):
        check_reads_match_sequential(trace, {}, ignore_untagged=False)


def test_final_state_scoped_to_arrays():
    final = {("A", 0): 1, ("B", 0): 999}
    expected = {("A", 0): 1, ("B", 0): 2}
    check_final_state(final, expected, arrays=["A"])  # B ignored
    with pytest.raises(ValidationError):
        check_final_state(final, expected, arrays=["A", "B"])


def test_dependence_instances_accepts_ordered():
    trace = [
        rec(5, "W", ("A", 3), 1, ("S1", 1)),
        rec(9, "R", ("A", 3), 1, ("S2", 2)),
    ]
    check_dependence_instances(
        trace, [(("S1", 1), ("S2", 2), ("A", 3), "W", "R")])


def test_dependence_instances_rejects_reversed():
    trace = [
        rec(9, "W", ("A", 3), 1, ("S1", 1), task="cpu0"),
        rec(5, "R", ("A", 3), 1, ("S2", 2), task="cpu1"),
    ]
    with pytest.raises(ValidationError):
        check_dependence_instances(
            trace, [(("S1", 1), ("S2", 2), ("A", 3), "W", "R")])


def test_dependence_instances_same_task_reversal_allowed():
    """A sink commit preceding its source commit is legal when both
    accesses are by the same processor: program order plus
    store-to-load forwarding already delivered the right value."""
    trace = [
        rec(9, "W", ("A", 3), 1, ("S1", 1), task="cpu0"),
        rec(5, "R", ("A", 3), 1, ("S2", 2), task="cpu0"),
    ]
    check_dependence_instances(
        trace, [(("S1", 1), ("S2", 2), ("A", 3), "W", "R")])


def test_dependence_instances_rejects_missing_access():
    with pytest.raises(ValidationError):
        check_dependence_instances(
            [], [(("S1", 1), ("S2", 2), ("A", 3), "W", "R")])


def test_dependence_instances_kind_filter():
    """An instance that both reads and writes one element: the anti arc
    (its own read before its own write) must not be confused by the
    later write commit (regression for a validator false positive)."""
    trace = [
        rec(7, "R", ("A", 1), 1, ("S1", 1), task="cpu0"),
        rec(9, "W", ("A", 1), 2, ("S1", 1), task="cpu1"),
    ]
    check_dependence_instances(
        trace, [(("S1", 1), ("S1", 1), ("A", 1), "R", "W")])
    with pytest.raises(ValidationError):
        check_dependence_instances(
            trace, [(("S1", 1), ("S1", 1), ("A", 1), "W", "R")])


def test_dependence_instances_simultaneous_commit_allowed():
    """Equal commit times are legal: commits at t precede reads at t."""
    trace = [
        rec(5, "W", ("A", 3), 1, ("S1", 1)),
        rec(5, "R", ("A", 3), 1, ("S2", 2)),
    ]
    check_dependence_instances(
        trace, [(("S1", 1), ("S2", 2), ("A", 3), "W", "R")])


@given(st.text(min_size=1, max_size=5),
       st.integers(min_value=0, max_value=1000),
       st.lists(st.one_of(st.none(), st.integers(min_value=0,
                                                 max_value=2**31)),
                max_size=5))
def test_mix_is_stable_and_bounded(sid, iteration, reads):
    value = mix(sid, iteration, reads)
    assert 0 <= value < 2**32
    assert value == mix(sid, iteration, list(reads))
